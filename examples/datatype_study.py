"""Quantization study (the paper's Section 4.2, "Impact of datatypes").

Runs Llama2-70B and Llama2-13B with FP32, FP16, and INT8 weights and
reports GPUs required, latency, and peak power — reproducing Insight 6:
quantization reduces model sizes and total power (fewer GPUs), FP16 is the
fastest and hottest (optimized tensor-core kernels), INT8 is slower
despite smaller weights (bitsandbytes kernel overheads), and none of it
changes the prompt/token phase asymmetry.

Run:  python examples/datatype_study.py
"""

from repro.gpu import A100_80GB, GpuPowerModel
from repro.models import FP16, FP32, INT8, RooflineLatencyModel, get_model
from repro.models.power_profile import PhasePowerProfile


def gpus_required(model, dtype) -> int:
    """Minimum A100-80GB count whose aggregate HBM fits the model.

    The KV cache stays FP16 regardless of the weight datatype —
    bitsandbytes quantizes weights only (the paper's footnote 1).
    """
    n = 1
    while not model.architecture.fits_on(
        dtype, n * A100_80GB.memory_bytes, kv_dtype=FP16
    ):
        n *= 2
    return n


def study(model_name: str) -> None:
    model = get_model(model_name)
    power_model = GpuPowerModel(A100_80GB)
    print(f"== {model_name} ==")
    print(f"{'dtype':>6} {'GPUs':>5} {'latency(s)':>11} "
          f"{'peak W/GPU':>11} {'total peak W':>13}")
    for dtype in (FP32, FP16, INT8):
        n_gpus = gpus_required(model, dtype)
        latency = RooflineLatencyModel(
            model=model, gpu=A100_80GB, dtype=dtype, n_gpus=n_gpus
        )
        profile = PhasePowerProfile(model=model, dtype=dtype)
        request = latency.request_latency(input_tokens=2048, output_tokens=256)
        peak_per_gpu = power_model.power(
            profile.prompt_activity(2048), A100_80GB.max_sm_clock_mhz
        )
        print(f"{dtype.name:>6} {n_gpus:>5} {request.total_seconds:>11.1f} "
              f"{peak_per_gpu:>11.0f} {peak_per_gpu * n_gpus:>13.0f}")


def main() -> None:
    study("Llama2-70B")
    print()
    study("Llama2-13B")
    print("\nInsight 6: quantization frees GPUs (and watts) under a fixed")
    print("power budget, but the prompt/token power asymmetry remains.")


if __name__ == "__main__":
    main()
