"""Mission control: ledger -> regression sentinel -> HTML dashboard.

The cross-run observability loop, end to end, on a deliberately small
threshold sweep:

1. **Journal** — an :class:`~repro.obs.ledger.ExperimentLedger` rides
   along on the sweep engine and appends one schema-versioned JSONL
   entry per run: content digest, policy + seed, wall time, provenance
   flags (cache hit / incremental / retries / quarantine / shards),
   the worker's ``getrusage`` footprint, and the headline result
   metrics. The sweep is run twice, so the second pass journals pure
   cache hits — the savings the ledger makes visible.
2. **Sentinel** — :func:`~repro.obs.regress.check_ledger` diffs the
   fresh journal against a committed baseline under per-metric
   tolerance policies: digests and counters compare exact, wall times
   and rusage get a relative band with a noise floor, host identity is
   ignored. A doctored +10% wall time passes; a doctored energy
   integral flags. (CI runs the same sentinel over the committed
   ``benchmarks/baselines/*.json`` via ``python -m repro.obs.regress``.)
3. **Dashboard** — :class:`~repro.obs.dashboard.Dashboard` renders the
   sweep curves, the cache-savings tiles, and the per-configuration
   run history (with wall-time sparklines) into one dependency-free
   static HTML page whose bytes are identical across repeated renders.

Everything lands in a temporary directory; the console shows the
ledger rows, the sentinel verdicts, and the dashboard byte count.

Run:  python examples/mission_control.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.obs import (
    Dashboard,
    ExperimentLedger,
    check_ledger,
    read_ledger,
)
from repro.units import hours

COMBOS = (
    ("75-85", PolcaThresholds(t1=0.75, t2=0.85)),
    ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
)
FRACTIONS = (0.2, 0.3)


def run_sweep(ledger):
    """The demo grid (4 POLCA points + the shared baseline), twice."""
    harness = EvaluationHarness(
        n_base_servers=10, duration_s=hours(1), seed=1, ledger=ledger,
    )
    points = threshold_search(harness, COMBOS, FRACTIONS)
    threshold_search(harness, COMBOS, FRACTIONS)  # all cache hits
    return points


def show_ledger(entries):
    print(f"ledger: {len(entries)} entries "
          f"({sum(1 for e in entries if e['provenance']['cache_hit'])} "
          f"cache hits)")
    for entry in entries:
        prov = entry["provenance"]
        flag = "cache-hit" if prov["cache_hit"] else "executed "
        thresholds = entry["thresholds"]
        combo = (f"{thresholds['t1']:.2f}/{thresholds['t2']:.2f}"
                 if thresholds else "-")
        print(f"  {flag}  {entry['policy']:<8} t={combo:<9} "
              f"wall={entry['wall_s']:7.3f}s "
              f"energy={entry['metrics']['total_energy_j']:.4g} J "
              f"{entry['digest'][:12]}")


def run_sentinel(entries):
    """Clean pass, tolerated wall drift, flagged metric drift."""
    clean = check_ledger(entries, entries)
    print(f"\nsentinel vs self: checked {clean.checked} metrics -> "
          f"{'ok' if clean.ok else 'REGRESSED'}")
    assert clean.ok

    noisy = json.loads(json.dumps(entries))
    for entry in noisy:
        entry["wall_s"] *= 1.04  # within the 5% band
    tolerated = check_ledger(noisy, entries)
    print(f"sentinel vs +4% wall time -> "
          f"{'ok (tolerated)' if tolerated.ok else 'REGRESSED'}")
    assert tolerated.ok

    drifted = json.loads(json.dumps(entries))
    # The sentinel judges the *latest* entry per configuration, so the
    # doctored value goes on the final (cache-hit) entry.
    drifted[-1]["metrics"]["total_energy_j"] *= 1.001
    flagged = check_ledger(drifted, entries)
    print(f"sentinel vs 0.1% energy drift -> "
          f"{len(flagged.regressions)} regression(s):")
    for diff in flagged.regressions[:3]:
        print(f"  ! {diff.describe()}")
    assert not flagged.ok  # exact metrics tolerate nothing


def render_dashboard(points, entries, out_dir):
    dash = Dashboard(
        title="POLCA mission control (demo)",
        subtitle="2x2 threshold sweep, 10 base servers, 1 h",
    )
    dash.add_sweep_panel(points)
    dash.add_savings_panel(entries)
    dash.add_ledger_panel(entries)
    html = dash.render()
    assert html == dash.render(), "render must be byte-identical"
    path = dash.write(str(Path(out_dir) / "REPORT_demo.html"))
    print(f"\ndashboard: wrote {path} ({len(html)} bytes, "
          f"{html.count('<section>')} panels, byte-identical renders)")


def main():
    with tempfile.TemporaryDirectory() as out_dir:
        ledger_path = Path(out_dir) / "LEDGER_demo.jsonl"
        with ExperimentLedger(str(ledger_path)) as ledger:
            points = run_sweep(ledger)
        entries = read_ledger(str(ledger_path))
        show_ledger(entries)
        run_sentinel(entries)
        render_dashboard(points, entries, out_dir)


if __name__ == "__main__":
    main()
