"""End-to-end POLCA deployment walkthrough (the paper's Section 6).

1. Synthesize a production-style power trace and fit a request trace to
   it (validated with the paper's MAPE<3% criterion).
2. Select the POLCA thresholds from the first part of the trace, the way
   Section 6.3 prescribes (T2 from the maximum 40-second power spike).
3. Run POLCA and every baseline at 30% oversubscription and report
   latency impact, throughput, brake counts, and SLO compliance.

Every simulation goes through the harness's sweep engine: the policy
comparison fans its grid out over worker processes (results are
bit-identical to a serial run), and the memo cache means the baseline
and the POLCA-at-30% run are each simulated exactly once even though
steps 1, 3, and 4 all ask for them.

Run:  python examples/polca_oversubscription.py
"""

from repro import (
    DualThresholdPolicy,
    EvaluationHarness,
    Priority,
    evaluate_slos,
    select_thresholds,
)
from repro.core import compare_policies
from repro.exec import default_workers
from repro.units import hours


def main() -> None:
    harness = EvaluationHarness(
        duration_s=hours(24), seed=0, workers=default_workers()
    )

    # --- 1. Trace replication (Section 6.4). ---------------------------
    print("== Replicating the production trace ==")
    baseline = harness.baseline()
    trace = harness.utilization_trace()
    print(f"target trace: {len(trace)} samples over "
          f"{trace.duration / 3600:.0f} h, smoothed peak {trace.peak():.1%}")
    requests = harness.requests_for(0.0)
    print(f"synthetic request trace: {len(requests)} requests "
          f"(MAPE-validated against the target power)")
    print(f"default cluster: peak utilization {baseline.peak_utilization:.1%}, "
          f"headroom {1 - baseline.peak_utilization:.1%}")

    # --- 2. Threshold selection from history (Section 6.3). ------------
    utilization = baseline.power_series.normalized(
        baseline.provisioned_power_w
    )
    recommendation = select_thresholds(utilization)
    print("\n== Threshold selection from the historical trace ==")
    print(f"max 2 s spike:  {recommendation.max_spike_2s:.1%}")
    print(f"max 40 s spike: {recommendation.max_spike_40s:.1%}  "
          f"(the OOB capping latency)")
    print(f"recommended T1/T2: {recommendation.thresholds.t1:.0%} / "
          f"{recommendation.thresholds.t2:.0%}")

    # --- 3. POLCA at 30% oversubscription (Section 6.6). ---------------
    print("\n== POLCA with 30% more servers ==")
    result = harness.run(DualThresholdPolicy(), added_fraction=0.30)
    report = evaluate_slos(result, baseline)
    print(f"power brake events: {result.power_brake_events}")
    for priority in Priority:
        print(f"{priority.value:>4}: p50 impact "
              f"{report.p50_impact[priority]:+.1%}, p99 impact "
              f"{report.p99_impact[priority]:+.1%}, SLO "
              f"{'MET' if report.meets(priority) else 'VIOLATED'}")
    print(f"all SLOs met: {report.all_met}")

    # --- 4. Policy comparison (Figures 17-18). --------------------------
    print("\n== Policy comparison at 30% oversubscription ==")
    print(f"{'policy':>22} {'LP p99':>8} {'HP p99':>8} {'brakes':>7}")
    for comparison in compare_policies(harness, power_scales=(1.0,)):
        print(f"{comparison.policy_name:>22} "
              f"{comparison.normalized_p99[Priority.LOW]:8.3f} "
              f"{comparison.normalized_p99[Priority.HIGH]:8.3f} "
              f"{comparison.power_brake_events:7d}")
    stats = harness.cache.stats
    print(f"\nengine cache: {stats['entries']} unique runs simulated, "
          f"{stats['hits']} repeat requests served from memory")


if __name__ == "__main__":
    main()
