"""Inference power characterization (the paper's Section 4.2, condensed).

Reproduces, in text form, the inference-side characterization:

* the two-phase power signature of each model (Figure 6);
* power/latency sensitivity to input, batch, and output sizes (Figure 8);
* the frequency-locking trade-off per model (Figure 10a);
* reactive power capping vs proactive frequency locking (Figure 9).

Run:  python examples/characterize_inference.py
"""

from repro.characterization import (
    config_sweep,
    frequency_tradeoff,
    inference_power_series,
    repeated_inference_series,
)
from repro.models import InferenceRequest, get_model
from repro.models.registry import INFERENCE_FIGURE_MODELS
from repro.gpu import A100_80GB


def two_phase_signatures() -> None:
    print("== Figure 6: prompt spike vs token plateau (per-GPU watts) ==")
    for name in INFERENCE_FIGURE_MODELS:
        series = repeated_inference_series(name, n_requests=3)
        print(f"{name:>14}: peak {series.peak():6.0f} W "
              f"(TDP {A100_80GB.tdp_w:.0f} W), trough {series.trough():5.0f} W, "
              f"3 requests in {series.duration:6.1f} s")


def config_sensitivity() -> None:
    print("\n== Figure 8: BLOOM-176B sensitivity to configuration knobs ==")
    for knob in ("input", "batch", "output"):
        points = config_sweep("BLOOM-176B", knob)
        values = [point.value for point in points]
        peaks = [f"{point.peak_power_ratio:.2f}" for point in points]
        latencies = [f"{point.latency_seconds:.1f}" for point in points]
        print(f"{knob:>7} sizes:   {values}")
        print(f"  peak/TDP:      {peaks}")
        print(f"  latency (s):   {latencies}")


def frequency_locking() -> None:
    print("\n== Figure 10a: peak-power vs performance reduction ==")
    for name in INFERENCE_FIGURE_MODELS:
        points = frequency_tradeoff(name)
        deepest = points[-1]
        print(f"{name:>14}: lock at {deepest.sm_clock_mhz:.0f} MHz reclaims "
              f"{deepest.peak_power_reduction:.1%} peak power for "
              f"{deepest.performance_reduction:.1%} performance loss")


def capping_comparison() -> None:
    print("\n== Figure 9: 325 W power cap vs 1.1 GHz frequency lock ==")
    bloom = get_model("BLOOM-176B")
    request = InferenceRequest("BLOOM-176B", input_tokens=8192,
                               output_tokens=128)
    uncapped = inference_power_series(bloom, request)
    capped = inference_power_series(bloom, request, power_cap_w=325.0)
    locked = inference_power_series(bloom, request,
                                    frequency_lock_mhz=1100.0)
    print(f"no cap:       peak {uncapped.peak():5.0f} W, "
          f"duration {uncapped.duration:5.1f} s")
    print(f"325 W cap:    peak {capped.peak():5.0f} W "
          f"(reactive overshoot above the cap), "
          f"duration {capped.duration:5.1f} s")
    print(f"1.1 GHz lock: peak {locked.peak():5.0f} W "
          f"(proactive, no overshoot), duration {locked.duration:5.1f} s")


def main() -> None:
    two_phase_signatures()
    config_sensitivity()
    frequency_locking()
    capping_comparison()


if __name__ == "__main__":
    main()
