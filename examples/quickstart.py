"""Quickstart: the library in five minutes.

Walks the stack bottom-up: a simulated A100, an LLM's phase latencies and
power profile, a DGX server, and finally a short POLCA oversubscription
run on a simulated inference row.

Run:  python examples/quickstart.py
"""

from repro import (
    A100_80GB,
    DgxServer,
    DualThresholdPolicy,
    EvaluationHarness,
    Priority,
    RooflineLatencyModel,
    SimulatedGpu,
    get_model,
)
from repro.models import PhasePowerProfile
from repro.units import hours


def main() -> None:
    # --- 1. A simulated A100 GPU with its power knobs. ----------------
    gpu = SimulatedGpu(A100_80GB)
    print("== GPU ==")
    print(f"TDP {A100_80GB.tdp_w:.0f} W, idle {A100_80GB.idle_w:.0f} W, "
          f"transient peak {A100_80GB.transient_peak_w:.0f} W")
    print(f"uncapped power at full activity: {gpu.power(0.0, 1.0):.0f} W")
    gpu.lock_frequency(1275.0)  # the A100 base clock (POLCA's T1 cap)
    print(f"frequency-locked to 1275 MHz:    {gpu.power(0.0, 1.0):.0f} W")
    gpu.unlock_frequency()

    # --- 2. An LLM: phase latencies and power levels. ------------------
    bloom = get_model("BLOOM-176B")
    latency = RooflineLatencyModel(model=bloom, gpu=A100_80GB)
    profile = PhasePowerProfile(model=bloom)
    phases = latency.request_latency(input_tokens=2048, output_tokens=256)
    print("\n== BLOOM-176B inference (2048 in / 256 out) ==")
    print(f"prompt phase: {phases.prompt_seconds:.2f} s at activity "
          f"{profile.prompt_activity(2048):.2f} (compute-bound spike)")
    print(f"token phase:  {phases.token_seconds:.2f} s at activity "
          f"{profile.token_activity():.2f} (bandwidth-bound plateau)")

    # --- 3. A DGX server's power envelope. -----------------------------
    server = DgxServer()
    print("\n== DGX-A100 server ==")
    print(f"rated {server.rated_power_w:.0f} W, achievable peak "
          f"{server.peak_power_w:.0f} W, derating headroom "
          f"{server.derating_headroom_w():.0f} W")

    # --- 4. POLCA: 30% more servers under the same breaker. ------------
    print("\n== POLCA oversubscription (6 simulated hours) ==")
    harness = EvaluationHarness(duration_s=hours(6), seed=0)
    baseline = harness.baseline()
    result = harness.run(DualThresholdPolicy(), added_fraction=0.30)
    print(f"peak row utilization: {result.peak_utilization:.1%}")
    print(f"power brake events:   {result.power_brake_events}")
    for priority in Priority:
        normalized = result.normalized_latencies(priority, baseline)
        print(f"{priority.value:>4}-priority p50 latency: "
              f"{normalized['p50']:.3f}x baseline")


if __name__ == "__main__":
    main()
