"""Inspect a simulator event trace: timelines, summaries, cross-checks.

Every ``ClusterSimulator`` run can stream its internal decisions — control
ticks, cap/brake command lifecycles, fallback windows, served and dropped
requests, server churn — to a ``TraceRecorder`` (see ``repro.obs``). This
tool renders such a trace for a human:

* ``python examples/trace_inspect.py trace.jsonl`` summarizes a recorded
  JSONL trace and reconstructs its brake and fallback timelines
  (``--kinds control,serve`` restricts the summary to those kinds).
* ``python examples/trace_inspect.py diff a.jsonl b.jsonl`` compares two
  traces event by event and reports the *first* divergent event — tick,
  kind, field, and both values (exit code 1 when they diverge, 0 when
  identical) — the one-command root-cause tool for two runs that should
  have been bit-identical.
* ``python examples/trace_inspect.py`` (no argument) records a fresh demo
  trace from a short faulted run, writes it next to the working
  directory (or ``--out``), renders it, and then *cross-checks* it: every
  counter in the run's ``SimulationResult`` is re-derived from the event
  stream and compared (two independent accounting paths that must agree).

Run:  python examples/trace_inspect.py [diff A B | trace.jsonl] [--out f]
"""

import argparse
import os
import sys
import tempfile

import numpy as np

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.policy import DualThresholdPolicy
from repro.errors import ReproError
from repro.faults import FaultPlan, ReliabilityConfig, TelemetryFaultSpec
from repro.obs import (
    JsonlRecorder,
    brake_timeline,
    cap_timeline,
    cross_check,
    diff_traces,
    fallback_windows,
    format_divergence,
    load_events,
    summarize_trace,
)
from repro.workloads.requests import RequestSampler


def demo_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


def render(events) -> None:
    """Print the human-readable view of an event stream."""
    print("== Trace summary ==")
    for line in summarize_trace(events):
        print(f"  {line}")

    spans = brake_timeline(events)
    if spans:
        print("\n== Brake timeline ==")
        for span in spans:
            engaged = "never landed" if span.engaged_at is None else \
                f"engaged {span.engaged_at:8.1f} s"
            released = "still on" if span.released_at is None else \
                f"released {span.released_at:8.1f} s"
            print(f"  [{span.source:>8}] requested {span.requested_at:8.1f} s"
                  f"  {engaged}  {released}")

    windows = fallback_windows(events)
    if windows:
        print("\n== Fallback windows (stale telemetry) ==")
        for entered, exited in windows:
            until = "end of trace" if exited is None else f"{exited:.1f} s"
            print(f"  dark from {entered:.1f} s until {until}")

    commands = cap_timeline(events)
    if commands:
        lag = [c.landed_at - c.issued_at for c in commands
               if c.landed_at is not None]
        reissued = sum(1 for c in commands if c.reissues)
        print(f"\n== Cap commands: {len(commands)} "
              f"(mean landing lag {np.mean(lag):.1f} s, "
              f"{reissued} needed re-issue) ==")


def demo(out_path: str) -> None:
    """Record, render, and cross-check a fresh demo trace."""
    duration_s = 300.0
    config = ClusterConfig(
        n_base_servers=8,
        seed=3,
        # A telemetry blackout makes the trace worth reading: the
        # controller degrades to safe caps, then engages the brake.
        fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((30.0, 150.0),)
        )),
        reliability=ReliabilityConfig(
            fallback_after_ticks=3, brake_after_stale_s=10.0
        ),
    )
    requests = demo_requests(4.0, duration_s, seed=3)
    print(f"Recording a {duration_s:.0f} s faulted demo run "
          f"({len(requests)} requests, 120 s telemetry blackout) "
          f"to {out_path} ...\n")
    with JsonlRecorder(out_path) as recorder:
        result = ClusterSimulator(
            config, DualThresholdPolicy(), recorder=recorder
        ).run(requests, duration_s)

    render(load_events(out_path))

    print("\n== Cross-check: trace vs SimulationResult ==")
    report = cross_check(out_path, result)
    for line in report.summary_lines():
        print(f"  {line}")
    report.require_ok()
    print("every counter re-derived from the trace matches the result")


def diff_main(argv) -> int:
    """The ``diff`` subcommand: first divergent event of two traces."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py diff",
        description="Localize the first divergent event between two "
                    "JSONL traces (exit 0: identical, 1: divergent).",
    )
    parser.add_argument("trace_a", help="first JSONL trace")
    parser.add_argument("trace_b", help="second JSONL trace")
    args = parser.parse_args(argv)
    divergence = diff_traces(
        load_events(args.trace_a), load_events(args.trace_b)
    )
    for line in format_divergence(
        divergence, label_a=args.trace_a, label_b=args.trace_b
    ):
        print(line)
    return 0 if divergence is None else 1


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    try:
        if argv and argv[0] == "diff":
            return diff_main(argv[1:])

        parser = argparse.ArgumentParser(
            description="Summarize a simulator JSONL trace, or record "
                        "and cross-check a demo trace when no path is "
                        "given. Use the 'diff' subcommand to compare "
                        "two traces."
        )
        parser.add_argument(
            "trace", nargs="?", default=None,
            help="path to a JSONL trace recorded with JsonlRecorder",
        )
        parser.add_argument(
            "--kinds", default=None,
            help="comma-separated event kinds to keep when summarizing",
        )
        parser.add_argument(
            "--out", default=None,
            help="where the demo trace is written (default: a temp file)",
        )
        args = parser.parse_args(argv)

        if args.trace is not None:
            events = load_events(args.trace)
            if args.kinds is not None:
                keep = {k.strip() for k in args.kinds.split(",") if k.strip()}
                events = [e for e in events if e.get("kind") in keep]
            render(events)
            return 0

        if args.out is not None:
            demo(args.out)
            return 0
        handle, path = tempfile.mkstemp(
            suffix=".jsonl", prefix="trace_demo_"
        )
        os.close(handle)
        try:
            demo(path)
        finally:
            os.unlink(path)
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
