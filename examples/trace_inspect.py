"""Inspect a simulator event trace: timelines, summaries, cross-checks.

Every ``ClusterSimulator`` run can stream its internal decisions — control
ticks, cap/brake command lifecycles, fallback windows, served and dropped
requests, server churn — to a ``TraceRecorder`` (see ``repro.obs``). This
tool renders such a trace for a human:

* ``python examples/trace_inspect.py trace.jsonl`` summarizes a recorded
  JSONL trace and reconstructs its brake and fallback timelines
  (``--kinds control,serve`` restricts the summary to those kinds).
* ``python examples/trace_inspect.py diff a.jsonl b.jsonl`` compares two
  traces event by event and reports the *first* divergent event — tick,
  kind, field, and both values (exit code 1 when they diverge, 0 when
  identical) — the one-command root-cause tool for two runs that should
  have been bit-identical.
* ``python examples/trace_inspect.py spans trace.jsonl`` reconstructs
  per-request span trees (arrival → queue-wait → phases, each phase
  annotated with the cap/brake rate intervals that repriced it) —
  ``--request-id N`` prints one request (exit 1 when absent).
* ``python examples/trace_inspect.py attrib trace.jsonl`` attributes
  realized latency to queue-wait / service / cap / brake / fallback and
  prints per-priority, per-workload, and per-action tables plus the
  top victims (exit 1 when the trace carries no span events).
* ``python examples/trace_inspect.py trips trace.jsonl`` renders the
  power-delivery protection timeline — breaker trips (with the affected
  subtree and lost capacity), emergency shed windows, deferrals, and
  staged re-energization (exit 1 when the trace has no protection
  events).
* ``python examples/trace_inspect.py ledger ledger.jsonl`` prints the
  experiment ledger — one row per recorded run with policy, seed, wall
  time, provenance (cache hit / incremental / retries / quarantine),
  and headline metrics (``--policy NAME`` filters; exit 1 when nothing
  matches).
* ``python examples/trace_inspect.py query trace.jsonl`` runs the trace
  query engine: filter by ``--kinds``/``--since``/``--until``/
  ``--server``/``--shard``/``--where field=value``, project with
  ``--fields``, aggregate with ``--group-by`` + ``--agg`` (count,
  sum:f, mean:f, pNN:f). Rows print as sorted-key JSON lines (exit 0:
  results printed, 1: empty result set, 2: invalid query).
* ``python examples/trace_inspect.py report trace.jsonl --out r.html``
  renders a trace into the static mission-control HTML dashboard
  (timeline, summary, attribution victims; ``--ledger`` adds ledger
  panels; exit 1 when the trace is empty).
* ``python examples/trace_inspect.py`` (no argument) records a fresh demo
  trace from a short faulted run, writes it next to the working
  directory (or ``--out``), renders it, and then *cross-checks* it: every
  counter in the run's ``SimulationResult`` is re-derived from the event
  stream and compared (two independent accounting paths that must agree).

Run:  python examples/trace_inspect.py \
          [diff A B | spans T | attrib T | trips T | ledger L |
           query T | report T | trace.jsonl] [--out f]
"""

import argparse
import json
import os
import sys
import tempfile

import numpy as np

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.policy import DualThresholdPolicy
from repro.errors import ReproError
from repro.faults import FaultPlan, ReliabilityConfig, TelemetryFaultSpec
from repro.obs import (
    JsonlRecorder,
    SpanBuilder,
    attribute_run,
    attribution_table,
    brake_timeline,
    cap_timeline,
    cross_check,
    diff_traces,
    fallback_windows,
    format_divergence,
    load_events,
    render_span_tree,
    summarize_trace,
    top_victims,
)
from repro.workloads.requests import RequestSampler


def demo_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


def render(events) -> None:
    """Print the human-readable view of an event stream."""
    print("== Trace summary ==")
    for line in summarize_trace(events):
        print(f"  {line}")

    spans = brake_timeline(events)
    if spans:
        print("\n== Brake timeline ==")
        for span in spans:
            engaged = "never landed" if span.engaged_at is None else \
                f"engaged {span.engaged_at:8.1f} s"
            released = "still on" if span.released_at is None else \
                f"released {span.released_at:8.1f} s"
            print(f"  [{span.source:>8}] requested {span.requested_at:8.1f} s"
                  f"  {engaged}  {released}")

    windows = fallback_windows(events)
    if windows:
        print("\n== Fallback windows (stale telemetry) ==")
        for entered, exited in windows:
            until = "end of trace" if exited is None else f"{exited:.1f} s"
            print(f"  dark from {entered:.1f} s until {until}")

    commands = cap_timeline(events)
    if commands:
        lag = [c.landed_at - c.issued_at for c in commands
               if c.landed_at is not None]
        reissued = sum(1 for c in commands if c.reissues)
        print(f"\n== Cap commands: {len(commands)} "
              f"(mean landing lag {np.mean(lag):.1f} s, "
              f"{reissued} needed re-issue) ==")


def demo(out_path: str) -> None:
    """Record, render, and cross-check a fresh demo trace."""
    duration_s = 300.0
    config = ClusterConfig(
        n_base_servers=8,
        seed=3,
        # A telemetry blackout makes the trace worth reading: the
        # controller degrades to safe caps, then engages the brake.
        fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((30.0, 150.0),)
        )),
        reliability=ReliabilityConfig(
            fallback_after_ticks=3, brake_after_stale_s=10.0
        ),
    )
    requests = demo_requests(4.0, duration_s, seed=3)
    print(f"Recording a {duration_s:.0f} s faulted demo run "
          f"({len(requests)} requests, 120 s telemetry blackout) "
          f"to {out_path} ...\n")
    with JsonlRecorder(out_path) as recorder:
        result = ClusterSimulator(
            config, DualThresholdPolicy(), recorder=recorder
        ).run(requests, duration_s)

    render(load_events(out_path))

    print("\n== Cross-check: trace vs SimulationResult ==")
    report = cross_check(out_path, result)
    for line in report.summary_lines():
        print(f"  {line}")
    report.require_ok()
    print("every counter re-derived from the trace matches the result")


def diff_main(argv) -> int:
    """The ``diff`` subcommand: first divergent event of two traces."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py diff",
        description="Localize the first divergent event between two "
                    "JSONL traces (exit 0: identical, 1: divergent).",
    )
    parser.add_argument("trace_a", help="first JSONL trace")
    parser.add_argument("trace_b", help="second JSONL trace")
    args = parser.parse_args(argv)
    divergence = diff_traces(
        load_events(args.trace_a), load_events(args.trace_b)
    )
    for line in format_divergence(
        divergence, label_a=args.trace_a, label_b=args.trace_b
    ):
        print(line)
    return 0 if divergence is None else 1


def spans_main(argv) -> int:
    """The ``spans`` subcommand: per-request span trees from a trace."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py spans",
        description="Reconstruct per-request span trees (phases and "
                    "cap/brake rate intervals) from a JSONL trace.",
    )
    parser.add_argument("trace", help="JSONL trace with span events")
    parser.add_argument(
        "--request-id", type=int, default=None,
        help="print only this request's span (exit 1 when absent)",
    )
    parser.add_argument(
        "--limit", type=int, default=10,
        help="how many spans to print without --request-id (default 10)",
    )
    args = parser.parse_args(argv)
    builder = SpanBuilder.from_source(args.trace)
    if args.request_id is not None:
        span = builder.get(args.request_id)
        if span is None:
            print(f"no span for request {args.request_id} in {args.trace}",
                  file=sys.stderr)
            return 1
        for line in render_span_tree(span):
            print(line)
        return 0
    spans = builder.build()
    if not spans:
        print(f"no span events in {args.trace} (recorded before the "
              f"span layer, or filtered)", file=sys.stderr)
        return 1
    for span in spans[:max(args.limit, 0)]:
        for line in render_span_tree(span):
            print(line)
        print()
    if len(spans) > args.limit:
        print(f"... {len(spans) - args.limit} more "
              f"(--limit to see them, --request-id for one)")
    return 0


def attrib_main(argv) -> int:
    """The ``attrib`` subcommand: causal latency/energy attribution."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py attrib",
        description="Decompose realized request latency into queue-wait "
                    "/ service / cap / brake / fallback seconds, "
                    "attributed to the responsible action.",
    )
    parser.add_argument("trace", help="JSONL trace with span events")
    parser.add_argument(
        "--top", type=int, default=5,
        help="how many top victims to print (default 5)",
    )
    args = parser.parse_args(argv)
    report = attribute_run(args.trace)
    if not report.requests and not report.dropped:
        print(f"no span events in {args.trace} (recorded before the "
              f"span layer, or filtered)", file=sys.stderr)
        return 1
    totals = report.totals_s()
    print(f"== Attribution: {len(report.requests)} served, "
          f"{report.dropped} dropped, {report.unfinished} unfinished ==")
    for component, seconds in totals.items():
        print(f"  {component:<13} {seconds:12.3f} s")
    print(f"  excess energy {report.total_excess_energy_j:12.1f} J")
    conservation = "exact" if not report.conservation_violations else \
        f"{len(report.conservation_violations)} VIOLATIONS"
    print(f"  conservation  {conservation}")
    for by in ("priority", "workload", "action"):
        print(f"\n== By {by} ==")
        for line in attribution_table(report, by=by):
            print(f"  {line}")
    victims = top_victims(report, max(args.top, 1))
    if victims:
        print(f"\n== Top {len(victims)} victims (excess seconds) ==")
        for victim in victims:
            worst = max(
                victim.by_action_s.items(), key=lambda kv: kv[1]
            )[0] if victim.by_action_s else "-"
            print(f"  r{victim.request_id:<6} "
                  f"[{victim.priority}/{victim.workload}] "
                  f"+{victim.excess_s:8.3f} s  "
                  f"(+{victim.excess_energy_j:9.1f} J)  worst: {worst}")
    return 0


def trips_main(argv) -> int:
    """The ``trips`` subcommand: power-delivery protection timeline."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py trips",
        description="Render breaker trips, emergency shed windows, and "
                    "staged re-energization from a JSONL trace of a "
                    "protected run (exit 1 when the trace carries no "
                    "protection events).",
    )
    parser.add_argument("trace", help="JSONL trace of a protected run")
    args = parser.parse_args(argv)
    events = load_events(args.trace)
    kinds = (
        "trip", "trip_risk", "shed_engage", "shed_release", "shed_defer",
        "reenergize", "reenergize_done",
    )
    timeline = [e for e in events if e.get("kind") in kinds]
    if not timeline:
        print(f"no power-delivery protection events in {args.trace} "
              f"(run had no ClusterConfig.protection, or the recorder "
              f"filtered them)", file=sys.stderr)
        return 1
    trips = [e for e in timeline if e["kind"] == "trip"]
    deferrals = [e for e in timeline if e["kind"] == "shed_defer"]
    shed_drops = sum(
        1 for e in events
        if e.get("kind") == "drop" and e.get("reason") == "shed"
    )
    print(f"== Protection timeline: {len(trips)} trip(s), "
          f"{len(deferrals)} deferral(s), {shed_drops} shed drop(s) ==")
    for event in timeline:
        t = float(event["t"])
        kind = event["kind"]
        if kind == "trip":
            cascade = " CASCADE" if event.get("cascaded") else ""
            print(f"  t={t:9.1f}s TRIP{cascade} {event['device']} "
                  f"({event['device_level']}, "
                  f"{float(event['capacity_w']):.0f} W limit, "
                  f"overload x{float(event['overload']):.2f})")
            print(f"               {event['servers_offline']} server(s) "
                  f"offline, {event['dropped']} request(s) lost, "
                  f"{float(event['offline_capacity_w']):.0f} W "
                  f"({float(event['offline_fraction']):.1%}) of capacity "
                  f"de-energized; restore at "
                  f"t={float(event['restore_at']):.1f}s")
        elif kind == "trip_risk":
            state = "AT RISK" if event.get("at_risk") else "cleared"
            print(f"  t={t:9.1f}s risk {state}: {event['device']} "
                  f"accumulator {float(event['accumulator']):.2f} "
                  f"(overload x{float(event['overload']):.2f})")
        elif kind == "shed_engage":
            print(f"  t={t:9.1f}s emergency shed ENGAGED "
                  f"(low-priority dropped/deferred, safe caps applied)")
        elif kind == "shed_release":
            print(f"  t={t:9.1f}s emergency shed released")
        elif kind == "shed_defer":
            print(f"  t={t:9.1f}s deferred r{event['request_id']} "
                  f"[{event['priority']}/{event['workload']}] "
                  f"by {float(event['delay_s']):.0f}s "
                  f"(deferral #{event['deferrals']})")
        elif kind == "reenergize":
            servers = ", ".join(event.get("servers") or []) or "none"
            print(f"  t={t:9.1f}s re-energize {event['device']} "
                  f"step {event['step']}: {servers}")
        elif kind == "reenergize_done":
            print(f"  t={t:9.1f}s {event['device']} fully re-energized")
    return 0


def ledger_main(argv) -> int:
    """The ``ledger`` subcommand: print the experiment run journal."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py ledger",
        description="Print an experiment ledger (JSONL run journal "
                    "recorded by SweepEngine/EvaluationHarness): one "
                    "row per run with provenance and headline metrics "
                    "(exit 1 when no entries match).",
    )
    parser.add_argument("ledger", help="JSONL experiment ledger")
    parser.add_argument(
        "--policy", default=None,
        help="only entries for this policy name",
    )
    parser.add_argument(
        "--limit", type=int, default=20,
        help="most recent rows to print (default 20)",
    )
    args = parser.parse_args(argv)
    from repro.obs import read_ledger

    entries = [
        e for e in read_ledger(args.ledger)
        if e.get("kind") == "run"
        and (args.policy is None or e.get("policy") == args.policy)
    ]
    if not entries:
        wanted = f" for policy {args.policy!r}" if args.policy else ""
        print(f"no ledger entries{wanted} in {args.ledger}",
              file=sys.stderr)
        return 1
    shown = entries[-max(args.limit, 1):]
    print(f"== Experiment ledger: {len(entries)} run(s), "
          f"showing last {len(shown)} ==")
    print(f"  {'policy':<22}{'seed':>5}{'wall_s':>9}{'prov':>6}"
          f"{'retry':>6}{'brakes':>7}{'energy_J':>13}  digest")
    for entry in shown:
        prov = entry.get("provenance") or {}
        metrics = entry.get("metrics") or {}
        flags = "".join((
            "C" if prov.get("cache_hit") else "",
            "I" if prov.get("incremental_resumed")
            or prov.get("incremental_reused") else "",
            "Q" if prov.get("quarantined") else "",
            "S" if (prov.get("shards") or 1) > 1 else "",
        )) or "-"
        print(f"  {str(entry.get('policy')):<22}"
              f"{entry.get('seed')!s:>5}"
              f"{float(entry.get('wall_s') or 0.0):>9.3f}"
              f"{flags:>6}"
              f"{prov.get('retries', 0):>6}"
              f"{metrics.get('power_brake_events')!s:>7}"
              f"{float(metrics.get('total_energy_j') or 0.0):>13.1f}"
              f"  {str(entry.get('digest'))[:12]}")
    print("  provenance flags: C cache hit, I incremental, "
          "Q quarantined, S sharded")
    return 0


def query_main(argv) -> int:
    """The ``query`` subcommand: the trace query engine on the CLI."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py query",
        description="Filter, project, and aggregate a JSONL trace with "
                    "the trace query engine. Rows print as sorted-key "
                    "JSON lines (exit 0: results printed, 1: empty "
                    "result set, 2: invalid query).",
    )
    parser.add_argument("trace", help="JSONL trace to query")
    parser.add_argument(
        "--kinds", default=None,
        help="comma-separated event kinds to keep",
    )
    parser.add_argument(
        "--since", type=float, default=None,
        help="keep events with t >= SINCE (seconds)",
    )
    parser.add_argument(
        "--until", type=float, default=None,
        help="keep events with t < UNTIL (seconds)",
    )
    parser.add_argument(
        "--server", default=None,
        help="keep events of this server id (e.g. s12)",
    )
    parser.add_argument(
        "--shard", type=int, default=None,
        help="keep events whose server lives on this shard "
             "(requires --n-shards)",
    )
    parser.add_argument(
        "--n-shards", type=int, default=None,
        help="shard count of the recorded run (with --shard)",
    )
    parser.add_argument(
        "--where", action="append", default=[], metavar="FIELD=VALUE",
        help="field equality filter (repeatable; VALUE parses as JSON, "
             "falling back to a bare string)",
    )
    parser.add_argument(
        "--fields", default=None,
        help="comma-separated projection of event fields",
    )
    parser.add_argument(
        "--group-by", default=None,
        help="comma-separated group-by fields (aggregates each group)",
    )
    parser.add_argument(
        "--agg", action="append", default=[],
        help="aggregation per group: count, sum:f, mean:f, min:f, "
             "max:f, pNN:f (repeatable; default count)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many rows",
    )
    args = parser.parse_args(argv)
    from repro.errors import ConfigurationError
    from repro.obs import filter_events, group_aggregate, project

    def split(csv):
        return [part.strip() for part in csv.split(",") if part.strip()]

    where = {}
    for clause in args.where:
        field, sep, value = clause.partition("=")
        if not sep or not field:
            raise ConfigurationError(
                f"--where takes FIELD=VALUE, got {clause!r}"
            )
        try:
            where[field] = json.loads(value)
        except json.JSONDecodeError:
            where[field] = value
    if args.agg and args.group_by is None:
        raise ConfigurationError("--agg requires --group-by")
    rows = filter_events(
        load_events(args.trace),
        kinds=split(args.kinds) if args.kinds is not None else None,
        t_min=args.since,
        t_max=args.until,
        server=args.server,
        shard=args.shard,
        n_shards=args.n_shards,
        where=where or None,
    )
    if args.group_by is not None:
        rows = group_aggregate(
            rows, by=split(args.group_by), aggs=args.agg or ("count",)
        )
    elif args.fields is not None:
        rows = project(rows, split(args.fields))
    if not rows:
        print(f"no matching events in {args.trace}", file=sys.stderr)
        return 1
    if args.limit is not None:
        rows = rows[:max(args.limit, 0)]
    for row in rows:
        print(json.dumps(row, sort_keys=True))
    return 0


def report_main(argv) -> int:
    """The ``report`` subcommand: trace -> mission-control HTML."""
    parser = argparse.ArgumentParser(
        prog="trace_inspect.py report",
        description="Render a JSONL trace (and optionally an "
                    "experiment ledger) into the static mission-"
                    "control HTML dashboard (exit 1 when the trace "
                    "has no events).",
    )
    parser.add_argument("trace", help="JSONL trace to render")
    parser.add_argument(
        "--out", default="REPORT.html",
        help="output HTML path (default REPORT.html)",
    )
    parser.add_argument(
        "--ledger", default=None,
        help="also render this experiment ledger's history panels",
    )
    parser.add_argument(
        "--title", default="Mission control",
        help="page title (default 'Mission control')",
    )
    args = parser.parse_args(argv)
    from repro.obs import Dashboard, read_ledger

    events = load_events(args.trace)
    if not events:
        print(f"no events in {args.trace}", file=sys.stderr)
        return 1
    dash = Dashboard(title=args.title, subtitle=args.trace)
    dash.add_timeline_panel(events=events)
    dash.add_panel(
        "Trace summary",
        "<pre>" + "\n".join(summarize_trace(events)) + "</pre>",
    )
    attribution = attribute_run(events)
    if attribution.requests:
        dash.add_victims_panel(attribution)
    if args.ledger is not None:
        entries = read_ledger(args.ledger)
        dash.add_savings_panel(entries)
        dash.add_ledger_panel(entries)
    dash.write(args.out)
    print(f"wrote {args.out} ({len(dash.render())} bytes, "
          f"{len(events)} events)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    try:
        if argv and argv[0] == "diff":
            return diff_main(argv[1:])
        if argv and argv[0] == "spans":
            return spans_main(argv[1:])
        if argv and argv[0] == "attrib":
            return attrib_main(argv[1:])
        if argv and argv[0] == "trips":
            return trips_main(argv[1:])
        if argv and argv[0] == "ledger":
            return ledger_main(argv[1:])
        if argv and argv[0] == "query":
            return query_main(argv[1:])
        if argv and argv[0] == "report":
            return report_main(argv[1:])

        parser = argparse.ArgumentParser(
            description="Summarize a simulator JSONL trace, or record "
                        "and cross-check a demo trace when no path is "
                        "given. Subcommands: 'diff' compares two "
                        "traces; 'spans' renders per-request span "
                        "trees; 'attrib' attributes latency and energy "
                        "to cap/brake actions; 'trips' renders the "
                        "power-delivery protection timeline; 'ledger' "
                        "prints an experiment run journal; 'query' "
                        "filters, projects, and aggregates a trace; "
                        "'report' renders a trace as a static HTML "
                        "dashboard."
        )
        parser.add_argument(
            "trace", nargs="?", default=None,
            help="path to a JSONL trace recorded with JsonlRecorder",
        )
        parser.add_argument(
            "--kinds", default=None,
            help="comma-separated event kinds to keep when summarizing",
        )
        parser.add_argument(
            "--out", default=None,
            help="where the demo trace is written (default: a temp file)",
        )
        args = parser.parse_args(argv)

        if args.trace is not None:
            events = load_events(args.trace)
            if args.kinds is not None:
                keep = {k.strip() for k in args.kinds.split(",") if k.strip()}
                events = [e for e in events if e.get("kind") in keep]
            render(events)
            return 0

        if args.out is not None:
            demo(args.out)
            return 0
        handle, path = tempfile.mkstemp(
            suffix=".jsonl", prefix="trace_demo_"
        )
        os.close(handle)
        try:
            demo(path)
        finally:
            os.unlink(path)
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
