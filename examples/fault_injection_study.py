"""Fault-injection study: POLCA on an unreliable substrate.

The paper's robustness check (Section 6.6) perturbs the power model by
+5%. This study extends it to the fault surface a real deployment sees
(Section 3.3 notes OOB interfaces "may sometimes fail without signaling
completion or errors"):

1. Run POLCA at 30% oversubscription on a *perfect* substrate.
2. Re-run the identical trace under an adversarial fault plan —
   telemetry dropouts and noise, silent/late actuation failures, a
   server crash — and compare breaker exposure and SLO impact.
3. Sweep the silent-actuation-failure rate to show the verify/re-issue
   layer holding the longest over-budget excursion under the 40 s OOB
   window.
4. Black out the row telemetry entirely for two minutes and watch the
   controller degrade to safe caps, then to the brake.

Run:  python examples/fault_injection_study.py
"""

from repro import DualThresholdPolicy, EvaluationHarness, FaultPlan, Priority
from repro.faults import (
    ActuationFaultSpec,
    ChurnSpec,
    ReliabilityConfig,
    ServerChurnEvent,
    TelemetryFaultSpec,
)
from repro.units import hours


def main() -> None:
    # 24 hours covers one full diurnal peak (~hour 16), where POLCA
    # actually caps — and where faults actually bite.
    harness = EvaluationHarness(duration_s=hours(24), seed=0)
    policy = DualThresholdPolicy()

    # --- 1. The fault-free reference. ----------------------------------
    print("== POLCA at 30% oversubscription, perfect substrate ==")
    clean = harness.run(policy, added_fraction=0.30)
    print(f"brakes: {clean.power_brake_events}, "
          f"caps: {clean.capping_actions}, "
          f"over budget: {clean.robustness.time_at_risk_s:.1f} s")

    # --- 2. The adversarial plan. --------------------------------------
    plan = FaultPlan.adversarial(seed=1)
    print("\n== Same trace under the adversarial fault plan ==")
    print(f"plan: {plan.telemetry.dropouts_per_hour:.0f} dropouts/h "
          f"(~{plan.telemetry.dropout_duration_s:.0f} s each), "
          f"noise {plan.telemetry.noise_std:.0%}, "
          f"{plan.actuation.silent_failure_rate:.0%} silent command "
          f"failures, {len(plan.churn.events)} scheduled server crash")
    faulty = harness.run(policy, added_fraction=0.30, fault_plan=plan)
    report = faulty.robustness
    for line in report.summary_lines():
        print(f"  {line}")
    print(f"time at risk: {report.time_at_risk_fraction():.2%} of the run")
    print(f"longest over-budget excursion: "
          f"{report.longest_overbudget_s:.1f} s "
          f"({'within' if report.longest_overbudget_s <= 40.0 else 'BEYOND'}"
          f" the 40 s OOB window)")
    print(f"all faults accounted: {report.all_faults_accounted}")
    print("SLO impact vs the fault-free run:")
    impact = report.slo_impact(faulty, clean)
    for priority in Priority:
        ratios = impact[priority.value]
        print(f"  {priority.value:>4}: p50 {ratios['p50']:.3f}x, "
              f"p99 {ratios['p99']:.3f}x")

    # --- 3. Silent-failure-rate sweep. ---------------------------------
    print("\n== Verify/re-issue vs silent actuation failures ==")
    print(f"{'fail rate':>9} {'issued':>7} {'detected':>9} "
          f"{'recovered':>9} {'abandoned':>9} {'worst excursion':>15}")
    for rate in (0.1, 0.3):
        swept = harness.run(
            policy, added_fraction=0.30,
            fault_plan=FaultPlan(
                actuation=ActuationFaultSpec(silent_failure_rate=rate),
                seed=2,
            ),
        )
        r = swept.robustness
        print(f"{rate:9.0%} {r.commands_issued:7d} {r.failures_detected:9d} "
              f"{r.commands_recovered:9d} {r.commands_unrecovered:9d} "
              f"{r.longest_overbudget_s:13.1f} s")

    # --- 4. Total telemetry blackout. ----------------------------------
    print("\n== 120 s row-telemetry blackout at the daily peak ==")
    blackout = harness.run(
        policy, added_fraction=0.30,
        fault_plan=FaultPlan(telemetry=TelemetryFaultSpec(
            dropout_windows=((hours(16), hours(16) + 120.0),),
        )),
        reliability=ReliabilityConfig(
            fallback_after_ticks=5, brake_after_stale_s=10.0
        ),
    )
    r = blackout.robustness
    print(f"max consecutive missed ticks: {r.max_missed_ticks}")
    print(f"fallback entries: {r.fallback_entries} "
          f"(safe caps), staleness brakes: {r.fallback_brakes}")
    print(f"over budget while dark: {r.time_at_risk_s:.1f} s "
          f"(longest {r.longest_overbudget_s:.1f} s)")

    # --- 5. Churn only: dropped work is ledgered. ----------------------
    print("\n== One server crash at the hour-16 peak, back an hour later ==")
    churned = harness.run(
        policy, added_fraction=0.30,
        fault_plan=FaultPlan(churn=ChurnSpec(events=(
            ServerChurnEvent(server_index=0, fail_at_s=hours(16),
                             recover_at_s=hours(17)),
        ))),
    )
    r = churned.robustness
    print(f"crashes: {r.server_failures}, recoveries: {r.server_recoveries}, "
          f"requests lost: {r.requests_lost_to_churn}")
    print(f"served vs clean run: {churned.total_served} / "
          f"{clean.total_served}")


if __name__ == "__main__":
    main()
