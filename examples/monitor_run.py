"""Live-monitor a simulated row: streaming aggregates, alerts, export.

POLCA's premise is an operator watching a live power signal and
reacting within an actuation deadline. This example wires the live
observability layer (``repro.obs``'s stream/alerts/export modules) onto
a brake-heavy run — No-cap at +5% power and 30% oversubscription, the
corner of Figure 18 where the emergency brake does all the work — and
renders a terminal dashboard *while the run executes*:

* a ``StreamMonitor`` keeps online EWMA power, sliding-window p95
  utilization, and a rolling brake rate, updated per event;
* an ``AlertEngine`` evaluates the standing rule set (sustained
  over-budget, brake storms, fallback flapping, cap churn, SLO
  violation rate) into deduplicated incidents with open → resolve
  lifecycles;
* a ``TeeRecorder`` composes both with the simulator's single recorder
  slot, exactly as a JSONL sink would also be attached in production;
* the final metrics + incident snapshot is exported as OpenMetrics
  text — the format a Prometheus-style scraper would collect.

The monitors only observe: the run is bit-identical to an unmonitored
one (asserted at the end against a bare rerun).

Run:  python examples/monitor_run.py
"""

import numpy as np

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.obs import (
    AlertEngine,
    StreamMonitor,
    TeeRecorder,
    TraceRecorder,
    incident_table,
    render_openmetrics,
)
from repro.workloads.requests import RequestSampler

DURATION_S = 900.0
REFRESH_S = 60.0


def demo_requests(rate_per_s, duration_s, seed=0):
    rng = np.random.default_rng(seed)
    sampler = RequestSampler(seed=seed)
    t, arrivals = 0.0, []
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        arrivals.append(t)
    return sampler.sample_many(arrivals)


class Dashboard(TraceRecorder):
    """Prints one status line per simulated minute, from live state.

    Placed *after* the monitor and the alert engine in the tee, so by
    the time a control tick reaches it, every aggregate already
    reflects that tick — the dashboard reads, never computes.
    """

    def __init__(self, monitor: StreamMonitor, alerts: AlertEngine) -> None:
        self.monitor = monitor
        self.alerts = alerts
        self._next_refresh = 0.0
        self._seen_incidents = 0

    def emit(self, event) -> None:
        t = event.get("t")
        if t is None or event.get("kind") != "control":
            return
        # Announce newly opened incidents the moment they fire.
        while self._seen_incidents < len(self.alerts.incidents):
            incident = self.alerts.incidents[self._seen_incidents]
            self._seen_incidents += 1
            print(f"  !! t={incident.opened_at:7.1f}s  "
                  f"[{incident.severity.upper():8}] {incident.rule}: "
                  f"{incident.description}")
        if t < self._next_refresh:
            return
        self._next_refresh = t + REFRESH_S
        power = self.monitor.value("power_ewma_w", now=t)
        p95 = self.monitor.value("util_p95", now=t)
        brakes = self.monitor.value("brake_rate", now=t)
        open_count = len(self.alerts.open_incidents)
        print(f"  t={t:7.1f}s  power~{power or 0.0:8.0f} W  "
              f"p95 util={p95 if p95 is not None else float('nan'):.3f}  "
              f"brakes={0.0 if brakes is None else brakes * 600.0:4.1f}/10min"
              f"  open incidents={open_count}")


def main() -> None:
    config = ClusterConfig(
        n_base_servers=8, added_fraction=0.30, power_scale=1.05, seed=3,
    )
    requests = demo_requests(6.0, DURATION_S, seed=3)

    monitor = StreamMonitor()
    monitor.ewma("power_ewma_w", kind="control",
                 field="observed_power_w", halflife_s=60.0)
    monitor.quantile("util_p95", kind="control", field="utilization",
                     window_s=300.0, q=0.95)
    monitor.rate("brake_rate", kind="brake_request", window_s=600.0)
    alerts = AlertEngine()  # the standing default_rules() set
    recorder = TeeRecorder([monitor, alerts, Dashboard(monitor, alerts)])

    print(f"Live-monitoring {DURATION_S:.0f} s of No-cap+5% at 30% "
          f"oversubscription ({len(requests)} requests) ...\n")
    result = ClusterSimulator(
        config, NoCapPolicy(), recorder=recorder
    ).run(requests, DURATION_S)

    print(f"\n== Incidents ({len(result.observability['incidents'])}) ==")
    for line in incident_table(result.observability["incidents"]):
        print(f"  {line}")

    print("\n== OpenMetrics export (head) ==")
    text = render_openmetrics(result.observability,
                              labels={"scenario": "nocap_hot_30"})
    for line in text.splitlines()[:12]:
        print(f"  {line}")
    print(f"  ... ({len(text.splitlines())} lines total)")

    # The monitors observe only: the monitored run must be bit-identical
    # to a bare rerun of the same scenario.
    bare = ClusterSimulator(config, NoCapPolicy()).run(requests, DURATION_S)
    assert result.total_energy_j == bare.total_energy_j
    assert result.power_brake_events == bare.power_brake_events
    assert (result.power_series.values == bare.power_series.values).all()
    print("\nmonitored run verified bit-identical to the bare rerun "
          f"({result.power_brake_events} brake engagements either way)")


if __name__ == "__main__":
    main()
