"""The power-safety study: does POLCA keep the breakers closed?

Section 3 of the paper frames oversubscription as a bet against the
power-delivery hierarchy: host ~30% more servers behind the same row
breaker and rely on the management stack to keep the draw inside the
provisioned envelope. This study makes the stakes concrete by running
the same oversubscribed, power-grown scenario (30% added servers, +5%
per-request power — the Figure 18 stress case) against three stacks:

* **POLCA** (Table 5 thresholds): caps early, never overloads the row —
  the breaker's thermal accumulator stays at exactly zero;
* **Unmanaged, emergency response off**: no caps and no power brake —
  sustained peak-hour overload heats the row breaker until it *trips*,
  taking the whole row offline mid-flight and losing every in-flight
  request behind it;
* **Unmanaged, emergency response on**: the same missing policy, but
  the :mod:`repro.powerfail` emergency layer sheds low-priority load
  and applies safe-mode caps when a breaker reports trip risk —
  degraded service instead of an outage.

The unmanaged trip run records a JSONL trace; every trip/shed counter
in its ``SimulationResult`` is re-derived from the event stream via
``repro.obs.cross_check`` (two independent accounting paths that must
agree), and the protection timeline is printable with::

    python examples/trace_inspect.py trips powerfail_study.jsonl

Run:  python examples/powerfail_study.py [--out trace.jsonl]
"""

import argparse
import os
import sys
import tempfile

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import UnmanagedPolicy
from repro.core.policy import DualThresholdPolicy
from repro.obs import JsonlRecorder, cross_check
from repro.powerfail import EmergencyConfig, ProtectionSpec
from repro.units import hours
from repro.workloads import ProductionTraceModel, SyntheticTraceGenerator

DURATION_S = hours(2)
N_BASE = 40
ADDED = 0.30
POWER_SCALE = 1.05


def build_requests(n_servers):
    """The Figure 18 trace shape: a peak-hour production day slice."""
    utilization = ProductionTraceModel(peak_hour=0.5, seed=1).generate(
        duration_s=DURATION_S
    )
    synthetic = SyntheticTraceGenerator(
        n_servers=n_servers, seed=1
    ).generate(utilization)
    synthetic.validate()
    return synthetic.requests


def protected_config(emergency_enabled):
    return ClusterConfig(
        n_base_servers=N_BASE,
        added_fraction=ADDED,
        power_scale=POWER_SCALE,
        seed=1,
        protection=ProtectionSpec(
            emergency=EmergencyConfig(enabled=emergency_enabled)
        ),
    )


def describe(label, result):
    pf = result.powerfail
    print(f"  {label:<28} trips={pf.trips} "
          f"(cascades={pf.cascade_trips}) "
          f"lost={pf.requests_lost_to_trips} "
          f"shed_drops={pf.requests_dropped_shed} "
          f"deferrals={pf.requests_deferred} "
          f"peak_heat={pf.peak_accumulator:.3f}")
    return pf


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="POLCA vs an unmanaged row under breaker-trip "
                    "modeling (30% oversubscription, +5% power)."
    )
    parser.add_argument(
        "--out", default=None,
        help="where the unmanaged trip run's JSONL trace is written "
             "(default: a temp file, deleted afterwards)",
    )
    args = parser.parse_args(argv)

    requests = build_requests(protected_config(False).n_servers)
    print(f"Scenario: {N_BASE} servers +{ADDED:.0%} oversubscribed, "
          f"power grown {POWER_SCALE - 1:+.0%}, {len(requests)} requests "
          f"over {DURATION_S / 3600:.0f} h (peak hour in the middle).\n")

    print("== Trip census across management stacks ==")
    polca = ClusterSimulator(
        protected_config(True), DualThresholdPolicy()
    ).run(list(requests), DURATION_S)
    pf_polca = describe("POLCA (Table 5)", polca)

    out_path = args.out
    cleanup = False
    if out_path is None:
        handle, out_path = tempfile.mkstemp(
            suffix=".jsonl", prefix="powerfail_study_"
        )
        os.close(handle)
        cleanup = True
    try:
        with JsonlRecorder(out_path) as recorder:
            unmanaged = ClusterSimulator(
                protected_config(False), UnmanagedPolicy(),
                recorder=recorder,
            ).run(list(requests), DURATION_S)
        pf_unmanaged = describe("Unmanaged (no emergency)", unmanaged)

        sheltered = ClusterSimulator(
            protected_config(True), UnmanagedPolicy()
        ).run(list(requests), DURATION_S)
        pf_sheltered = describe("Unmanaged + load shedding", sheltered)

        print("\n== Cross-check: trip trace vs SimulationResult ==")
        report = cross_check(out_path, unmanaged)
        for line in report.summary_lines():
            if "powerfail" in line or "mismatches" in line:
                print(f"  {line}")
        report.require_ok()
        print("  every trip/shed counter re-derived from the trace "
              "matches the result")
        if not cleanup:
            print(f"  trace kept at {out_path} "
                  f"(render: python examples/trace_inspect.py trips "
                  f"{out_path})")
    finally:
        if cleanup:
            os.unlink(out_path)

    print("\n== The paper's bet, quantified ==")
    assert pf_polca.trips == 0, "POLCA must never trip the row"
    assert pf_unmanaged.trips >= 1, "the unmanaged row must trip"
    print(f"  POLCA held the row: 0 trips, breaker heat never left 0 "
          f"(peak {pf_polca.peak_accumulator:.3f}).")
    print(f"  The unmanaged row tripped {pf_unmanaged.trips}x and lost "
          f"{pf_unmanaged.requests_lost_to_trips} in-flight requests.")
    if pf_sheltered.trips < pf_unmanaged.trips:
        saved = pf_unmanaged.trips - pf_sheltered.trips
        print(f"  Emergency shedding averted {saved} trip(s) by "
              f"deferring {pf_sheltered.requests_deferred} and dropping "
              f"{pf_sheltered.requests_dropped_shed} low-priority "
              f"requests.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
