"""Profile the simulator hot path with ``repro.exec.profile``.

Times one uncached cluster run end to end, breaks it down with cProfile
to show where the time goes (event-queue operations, per-server power
refresh, request routing), then re-runs with the simulator's own
per-event-kind kernel timers (``ClusterSimulator(kernel_timers=True)``)
for the event-loop view: how many ticks/arrivals/phase advances ran and
what each kind costs. The kernel counters also land in
``result.observability["sim_core"]``, so hot-path regressions show up
in exported traces. This is the workflow that motivated the vectorized
power batch and the heap-tuple event queue — run it before and after
touching ``repro.cluster`` to see what a change buys.

Run:  python examples/profile_simulator.py
"""

from repro.exec import (
    PolicySpec,
    RunSpec,
    execute_spec,
    profile_call,
    profile_kernels,
    timed,
)
from repro.cluster.simulator import ClusterConfig
from repro.units import hours


def main() -> None:
    config = ClusterConfig(n_base_servers=40, added_fraction=0.30, seed=1)
    spec = RunSpec(
        config=config, policy=PolicySpec("POLCA"), duration_s=hours(6)
    )

    # Warm the trace cache first so the profile isolates the simulator
    # itself (trace synthesis runs once per process and is cached).
    with timed() as elapsed:
        from repro.exec import requests_for

        requests_for(spec.trace_key())
    print(f"trace synthesis (once per process): {elapsed():.2f} s")

    result, report = profile_call(execute_spec, spec, top=10)
    print(f"\nsimulated {result.duration_s / 3600:.0f} h of cluster time "
          f"in {report.wall_s:.2f} s wall-clock")
    print(f"power brake events: {result.power_brake_events}, "
          f"capping actions: {result.capping_actions}")

    print("\nhottest functions (by self time):")
    for spot in report.top:
        print(f"  {spot.tottime_s:7.3f} s  {spot.calls:>9} calls  "
              f"{spot.function}")

    _, kernels = profile_kernels(spec)
    print("\nevent-loop kernels (per event kind, hottest first):")
    for stat in kernels:
        print(f"  {stat.seconds:7.3f} s  {stat.calls:>9} events  "
              f"{stat.mean_us:8.1f} us/event  {stat.kind}")


if __name__ == "__main__":
    main()
