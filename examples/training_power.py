"""Training power characterization (the paper's Section 4.1).

Shows the iteration power shape per model (Figure 4), the knob trade-offs
(Figure 5), and why training clusters cannot be oversubscribed: correlated
swings and ~3% headroom at cluster scale (Table 4, Insight 9).

Run:  python examples/training_power.py
"""

from repro.models import get_model, training_models
from repro.training import (
    TrainingClusterModel,
    TrainingIterationModel,
    frequency_lock_tradeoff,
    power_cap_tradeoff,
)


def iteration_shapes() -> None:
    print("== Figure 4: training iteration power shape (per GPU) ==")
    for spec in training_models():
        model = TrainingIterationModel(spec)
        series = model.power_series(n_iterations=5)
        tdp = model.gpu.tdp_w
        print(f"{spec.name:>14}: iteration "
              f"{spec.training.iteration_seconds:.0f} s, peak "
              f"{series.peak() / tdp:.0%} of TDP, trough "
              f"{series.trough() / tdp:.0%} of TDP")


def knob_tradeoffs() -> None:
    print("\n== Figure 5: knob trade-offs (Flan-T5 fine-tuning) ==")
    model = TrainingIterationModel(get_model("Flan-T5-XXL"))
    print("frequency locking (proactive, lowers troughs too):")
    for point in frequency_lock_tradeoff(model, [1350, 1200, 1100]):
        print(f"  {point.knob_value:6.0f} MHz: peak -"
              f"{point.peak_power_reduction:.1%}, perf -"
              f"{point.performance_reduction:.1%}, trough -"
              f"{point.trough_power_reduction:.1%}")
    print("power capping (reactive, clips peaks only):")
    for point in power_cap_tradeoff(model, [380, 340, 300]):
        print(f"  {point.knob_value:6.0f} W:   peak -"
              f"{point.peak_power_reduction:.1%}, perf -"
              f"{point.performance_reduction:.1%}, trough -"
              f"{point.trough_power_reduction:.1%}")


def cluster_scale() -> None:
    print("\n== Table 4 (training column): cluster-scale patterns ==")
    cluster = TrainingClusterModel()
    stats = cluster.stats()
    print(f"peak utilization:        {stats.peak_utilization:.1%}")
    print(f"max 2 s power swing:     {stats.max_swing_2s:.1%} of provisioned")
    print(f"oversubscription headroom: {stats.headroom:.1%}  "
          f"(vs ~21% for inference clusters)")


def main() -> None:
    iteration_shapes()
    knob_tradeoffs()
    cluster_scale()


if __name__ == "__main__":
    main()
