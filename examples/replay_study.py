"""The Figure 13 threshold search under replayed production traces.

Figure 13 picks POLCA's (t1, t2) thresholds by sweeping threshold
combos against oversubscription levels on the *synthetic* trace fitted
to the paper's production power series. This study asks how robust that
choice is to the traffic actually hitting the cluster, by re-running
the same mini threshold grid under three trace sources:

* **synthetic** — the paper's pipeline (the baseline answer);
* **replayed** — an Azure-Public-Dataset-format CSV replayed through
  ``repro.workloads.replay`` (by default a CSV this script exports
  from the synthetic pipeline, so it runs offline; point ``--csv`` at
  a real trace, e.g. ``AzureLLMInferenceTrace_conv.csv`` from
  https://github.com/Azure/AzurePublicDataset, to replay production);
* **flash-crowd** — the same CSV with a burst overlay (3x ambient load
  for half an hour), the adversarial case for oversubscription.

For each source the script reports the paper's SLO check per grid
point (normalized p99 within Table 6's bounds, zero power brakes) and
the resulting maximum safe oversubscription per threshold combo — the
"threshold shift" a production trace induces versus the synthetic fit.

Run:  python examples/replay_study.py [--csv trace.csv] [--hours 1]
"""

import argparse
import os
import sys
import tempfile

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.exec import TraceKey, requests_for
from repro.units import hours
from repro.workloads.replay import (
    BurstWindow,
    CsvReplaySpec,
    FlashCrowdSpec,
    TraceSource,
    write_azure_csv,
)
from repro.workloads.spec import Priority

N_BASE = 4
SEED = 5

COMBOS = (
    ("75-85", PolcaThresholds(t1=0.75, t2=0.85)),
    ("80-90", PolcaThresholds(t1=0.80, t2=0.90)),
    ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
)
FRACTIONS = (0.10, 0.25, 0.40)

#: Table 6 SLO bounds on *normalized* p99 latency, plus zero brakes.
P99_BOUNDS = {Priority.HIGH: 1.05, Priority.LOW: 1.50}


def export_synthetic_csv(path, duration_s):
    """Write a synthetic-pipeline trace in the Azure CSV format.

    Stands in for the real dataset (which needs a download); the CSV
    round-trip itself is exact, so replaying it isolates what the
    *replay path* (classification, priorities) changes.
    """
    key = TraceKey(seed=SEED, n_servers=N_BASE, duration_s=duration_s)
    write_azure_csv(path, requests_for(key))


def slo_ok(point):
    return (
        point.power_brake_events == 0
        and all(point.normalized_p99[p] <= bound
                for p, bound in P99_BOUNDS.items())
    )


def run_variant(label, trace_source, duration_s):
    harness = EvaluationHarness(
        n_base_servers=N_BASE, duration_s=duration_s, seed=SEED,
        trace_source=trace_source,
    )
    points = threshold_search(harness, COMBOS, FRACTIONS)
    print(f"\n--- {label} ---")
    print(f"{'combo':>7} {'added':>7} {'p99 hi':>8} {'p99 lo':>8} "
          f"{'brakes':>7} {'SLO':>5}")
    best = {}
    for combo_label, _ in COMBOS:
        for fraction in FRACTIONS:
            point = points[(combo_label, fraction)]
            ok = slo_ok(point)
            if ok:
                best[combo_label] = max(
                    best.get(combo_label, 0.0), fraction
                )
            print(f"{combo_label:>7} {fraction:>6.0%} "
                  f"{point.normalized_p99[Priority.HIGH]:>8.3f} "
                  f"{point.normalized_p99[Priority.LOW]:>8.3f} "
                  f"{point.power_brake_events:>7d} "
                  f"{'ok' if ok else 'VIOL':>5}")
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--csv", default=None,
        help="Azure-format trace CSV to replay (header "
             "TIMESTAMP,ContextTokens,GeneratedTokens); default: "
             "export one from the synthetic pipeline",
    )
    parser.add_argument("--hours", type=float, default=1.0,
                        help="simulated window per run (default 1)")
    args = parser.parse_args(argv)
    duration_s = hours(args.hours)

    temp_csv = None
    csv_path = args.csv
    if csv_path is None:
        fd, temp_csv = tempfile.mkstemp(suffix=".csv",
                                        prefix="replay_study_")
        os.close(fd)
        export_synthetic_csv(temp_csv, duration_s)
        csv_path = temp_csv
        print(f"exported synthetic-pipeline trace to {csv_path}")

    try:
        replay = TraceSource(csv=CsvReplaySpec.from_file(csv_path))
        crowd = TraceSource(
            csv=CsvReplaySpec.from_file(csv_path),
            burst=FlashCrowdSpec(
                windows=(BurstWindow(
                    start_s=0.25 * duration_s,
                    duration_s=0.5 * duration_s,
                    magnitude=3.0,
                ),),
                seed=1,
            ),
        )
        outcomes = {
            label: run_variant(label, source, duration_s)
            for label, source in (
                ("synthetic pipeline", None),
                (f"replayed CSV ({replay.label})", replay),
                (f"flash crowd ({crowd.label})", crowd),
            )
        }
    finally:
        if temp_csv is not None:
            os.unlink(temp_csv)

    print("\n=== Max safe oversubscription per threshold combo ===")
    print(f"{'combo':>7} " + " ".join(f"{label[:18]:>20}"
                                      for label in outcomes))
    for combo_label, _ in COMBOS:
        cells = [
            f"{outcome[combo_label]:.0%}" if combo_label in outcome
            else "none"
            for outcome in outcomes.values()
        ]
        print(f"{combo_label:>7} " + " ".join(f"{c:>20}" for c in cells))
    print("\nA combo whose safe level drops under the flash crowd is a "
          "threshold pair\nthat was tuned to the diurnal shape, not to "
          "adversarial load.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
