"""Phase-aware serving study (the paper's Section 5.2 proposal).

An application owner who controls their own VMs keeps in-band access to
the GPU (Section 3.3), where frequency changes land in milliseconds —
fast enough to run prompts at full clock and decode at a lower one. This
walkthrough quantifies what that buys across the model zoo and contrasts
it with the whole-request locking available to the cloud provider's
out-of-band path.

Run:  python examples/phase_aware_serving.py
"""

from repro.core.phase_aware import compare_with_full_lock, phase_aware_outcome
from repro.models.registry import INFERENCE_FIGURE_MODELS


def per_model_study() -> None:
    print("== Token-phase-only lock to 1110 MHz (prompt stays at 1410) ==")
    print(f"{'model':>14} {'energy':>8} {'mean power':>11} {'latency':>9} "
          f"{'saving per % latency':>21}")
    for name in INFERENCE_FIGURE_MODELS:
        outcome = phase_aware_outcome(name, 1110.0)
        print(f"{name:>14} {-outcome.energy_saving:>+8.1%} "
              f"{-outcome.mean_power_saving:>+11.1%} "
              f"{outcome.latency_increase:>+9.1%} "
              f"{outcome.efficiency_gain:>20.1f}x")


def provider_vs_owner() -> None:
    print("\n== BLOOM-176B: application-owner (phase-aware, in-band) vs "
          "provider (whole-request, OOB) ==")
    comparison = compare_with_full_lock("BLOOM-176B", 1110.0)
    print(f"latency increase:     phase-aware "
          f"{comparison['phase_aware_latency_increase']:+.1%}  vs  "
          f"full lock {comparison['full_lock_latency_increase']:+.1%}")
    print(f"peak power reduction: phase-aware "
          f"{comparison['phase_aware_peak_reduction']:+.1%}  vs  "
          f"full lock {comparison['full_lock_peak_reduction']:+.1%}")
    print(f"energy saving (phase-aware): "
          f"{comparison['phase_aware_energy_saving']:+.1%}")
    print("\nTakeaway: phase-aware capping is an *energy* optimization —")
    print("it cannot reduce provisioned peak power (the prompt spike still")
    print("runs at full clock), so POLCA-style oversubscription still needs")
    print("whole-request capping as its enforcement lever.")


def main() -> None:
    per_model_study()
    provider_vs_owner()


if __name__ == "__main__":
    main()
