"""Extension (Section 6.7): the next GPU generation (DGX-H100, FP8).

The paper notes DGX-H100 (8U, 10.2 kW) is even more power-dense and that
"custom hardware support for datatypes in newer GPUs, like the FP8 engine
in NVIDIA H100, could further impact these trade-offs". This benchmark
ports the characterization to H100: serving latency and power for
BLOOM-176B at FP16 vs FP8, and the H100 DVFS trade-off curve.
"""

from conftest import print_table

from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, H100_80GB
from repro.models.datatypes import FP8, FP16
from repro.models.performance import RooflineLatencyModel
from repro.models.registry import get_model


def reproduce_h100():
    bloom = get_model("BLOOM-176B")
    configs = {
        ("A100", "fp16"): RooflineLatencyModel(
            model=bloom, gpu=A100_80GB, dtype=FP16),
        ("H100", "fp16"): RooflineLatencyModel(
            model=bloom, gpu=H100_80GB, dtype=FP16),
        ("H100", "fp8"): RooflineLatencyModel(
            model=bloom, gpu=H100_80GB, dtype=FP8, n_gpus=4),
    }
    latencies = {
        key: model.request_latency(2048, 256)
        for key, model in configs.items()
    }
    power_model = GpuPowerModel(H100_80GB)
    dvfs = [
        (clock, power_model.peak_power_reduction(1.0, clock))
        for clock in (1980.0, 1800.0, 1600.0, 1400.0)
    ]
    return latencies, dvfs


def test_ext_h100(benchmark):
    latencies, dvfs = benchmark.pedantic(reproduce_h100, rounds=1,
                                         iterations=1)
    rows = [
        (f"{gpu} {dtype}", f"{phases.prompt_seconds:.2f}",
         f"{phases.token_seconds:.2f}", f"{phases.total_seconds:.2f}")
        for (gpu, dtype), phases in latencies.items()
    ]
    print_table("Extension — BLOOM-176B serving on H100",
                ["config", "prompt s", "token s", "total s"], rows)
    print_table("Extension — H100 DVFS peak-power reduction",
                ["SM MHz", "reduction"],
                [(f"{clock:.0f}", f"{reduction:.1%}")
                 for clock, reduction in dvfs])
    # H100 is faster than A100 at the same datatype (more FLOPs + HBM3).
    assert latencies[("H100", "fp16")].total_seconds < \
        latencies[("A100", "fp16")].total_seconds
    # FP8 squeezes the model onto half the GPUs and stays competitive.
    assert latencies[("H100", "fp8")].total_seconds < \
        1.8 * latencies[("H100", "fp16")].total_seconds
    # The DVFS lever exists on H100 too.
    assert dvfs[-1][1] > 0.15
    benchmark.extra_info["h100_fp16_total_s"] = \
        latencies[("H100", "fp16")].total_seconds
