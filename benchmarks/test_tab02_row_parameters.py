"""Table 2: row-level parameters of the POLCA evaluation cluster."""

from conftest import print_table

from repro.datacenter import DEFAULT_ROW, Row


def reproduce_table2():
    row = Row.build("row0")
    rows = [
        ("Number of servers", DEFAULT_ROW.n_servers),
        ("Server type", DEFAULT_ROW.server_type),
        ("Power telemetry delay", f"{DEFAULT_ROW.telemetry_interval_s:.0f}s"),
        ("Power brake latency", f"{DEFAULT_ROW.brake_latency_s:.0f}s"),
        ("OOB control latency", f"{DEFAULT_ROW.oob_latency_s:.0f}s"),
    ]
    return row, rows


def test_tab02_row_parameters(benchmark):
    row, rows = benchmark.pedantic(reproduce_table2, rounds=1, iterations=1)
    print_table("Table 2 — row-level parameters",
                ["parameter", "value"], rows)
    assert DEFAULT_ROW.n_servers == 40
    assert DEFAULT_ROW.server_type == "DGX-A100"
    assert DEFAULT_ROW.telemetry_interval_s == 2.0
    assert DEFAULT_ROW.brake_latency_s == 5.0
    assert DEFAULT_ROW.oob_latency_s == 40.0
    assert row.n_servers == 40
    benchmark.extra_info["provisioned_kw"] = row.provisioned_power_w / 1000
