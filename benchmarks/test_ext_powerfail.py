"""Extension: the power-safety study under breaker-trip modeling.

The paper's premise is that POLCA makes 30% oversubscription *safe* —
the row breaker never sees a sustained overload. This extension closes
the loop by simulating the breaker itself (:mod:`repro.powerfail`):
inverse-time trip curves on a server → rack → row hierarchy, emergency
load shedding, and staged re-energization. The Figure 18 stress
scenario (2 h peak window, +5% power, 30% oversubscription) runs
against three stacks:

* POLCA at the Table 5 thresholds — must finish with **zero trips**
  and thermal accumulators that stay essentially cold;
* an ``Unmanaged`` row (no caps, no brake, emergency response off) —
  must **trip at least once**, losing its in-flight requests;
* the same unmanaged row with the emergency layer on — shedding must
  engage and reduce trips versus the unprotected run.

The unmanaged trip run streams to ``TRACE_powerfail.jsonl`` at the repo
root (a CI artifact); the trace is accepted only if
``repro.obs.cross_check`` re-derives every trip/shed/re-energization
counter from it and the causal attribution conserves latency exactly.
The trip census and energy-conservation summary land in
``BENCH_powerfail.json`` next to it.
"""

import json
from pathlib import Path

from conftest import print_table

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import UnmanagedPolicy
from repro.core.policy import DualThresholdPolicy
from repro.obs import JsonlRecorder, attribute_run, cross_check
from repro.powerfail import EmergencyConfig, ProtectionSpec
from repro.units import hours
from repro.workloads.tracegen import (
    ProductionTraceModel,
    SyntheticTraceGenerator,
)

TRACE_PATH = Path(__file__).resolve().parent.parent / "TRACE_powerfail.jsonl"
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_powerfail.json"
TRACE_HOURS = 2.0
N_BASE, ADDED, POWER_SCALE = 40, 0.30, 1.05


def build_requests(n_servers):
    utilization = ProductionTraceModel(peak_hour=0.5, seed=1).generate(
        duration_s=hours(TRACE_HOURS)
    )
    synthetic = SyntheticTraceGenerator(
        n_servers=n_servers, seed=1
    ).generate(utilization)
    synthetic.validate()
    return synthetic.requests


def protected_config(emergency_enabled):
    return ClusterConfig(
        n_base_servers=N_BASE, added_fraction=ADDED,
        power_scale=POWER_SCALE, seed=1,
        protection=ProtectionSpec(
            emergency=EmergencyConfig(enabled=emergency_enabled)
        ),
    )


def run_study():
    requests = build_requests(protected_config(False).n_servers)
    polca = ClusterSimulator(
        protected_config(True), DualThresholdPolicy()
    ).run(list(requests), hours(TRACE_HOURS))
    with JsonlRecorder(str(TRACE_PATH)) as recorder:
        unmanaged = ClusterSimulator(
            protected_config(False), UnmanagedPolicy(), recorder=recorder
        ).run(list(requests), hours(TRACE_HOURS))
    sheltered = ClusterSimulator(
        protected_config(True), UnmanagedPolicy()
    ).run(list(requests), hours(TRACE_HOURS))
    return polca, unmanaged, sheltered


def test_ext_powerfail(benchmark):
    polca, unmanaged, sheltered = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    census = {
        "POLCA": polca.powerfail,
        "Unmanaged": unmanaged.powerfail,
        "Unmanaged+shed": sheltered.powerfail,
    }
    rows = [
        (label, pf.trips, pf.requests_lost_to_trips,
         pf.requests_dropped_shed, pf.requests_deferred,
         f"{pf.peak_accumulator:.3f}")
        for label, pf in census.items()
    ]
    print_table(
        "Power-safety study — breaker trips "
        "(2 h peak, +5% power, 30% oversubscription)",
        ["stack", "trips", "lost", "shed", "deferred", "peak heat"],
        rows,
    )
    # The census artifact is written before the claim asserts so CI
    # uploads it (and the regression sentinel can diff it) even when a
    # claim regresses.
    report = attribute_run(str(TRACE_PATH))
    summary = {
        "scenario": {
            "n_base_servers": N_BASE,
            "added_fraction": ADDED,
            "power_scale": POWER_SCALE,
            "trace_hours": TRACE_HOURS,
        },
        "census": {
            label: {
                "trips": pf.trips,
                "cascade_trips": pf.cascade_trips,
                "reenergizations": pf.reenergizations,
                "requests_lost_to_trips": pf.requests_lost_to_trips,
                "requests_dropped_shed": pf.requests_dropped_shed,
                "requests_deferred": pf.requests_deferred,
                "shed_engagements": pf.shed_engagements,
                "peak_accumulator": pf.peak_accumulator,
                "energy_conserved_exactly": pf.energy_conserved_exactly,
            }
            for label, pf in census.items()
        },
        "trace_artifact": TRACE_PATH.name,
        "trip_drops_attributed": report.drops_by_cause.get("trip", 0),
    }
    REPORT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\ntrip trace: {TRACE_PATH.name}; census: {REPORT_PATH.name}")
    benchmark.extra_info.update(summary["census"])

    # POLCA keeps the breakers cold: zero trips, and no accumulator
    # (row, rack, or server fuse) ever gets meaningfully warm — well
    # under 5% of its trip point (the unmanaged stack, by contrast,
    # trips outright at 100%).
    assert census["POLCA"].trips == 0
    assert census["POLCA"].peak_accumulator < 0.05
    # The unmanaged row trips; emergency shedding reduces trips.
    assert census["Unmanaged"].trips >= 1
    assert census["Unmanaged+shed"].trips < census["Unmanaged"].trips
    assert census["Unmanaged+shed"].shed_engagements >= 1
    # Every ledger's exact (rational-arithmetic) energy mirror must
    # balance: row == sum(racks) == sum(server fuses), across trips.
    for label, pf in census.items():
        assert pf.energy_conserved_exactly, f"{label} leaked energy"
    # Every trip/shed/re-energization event in the artifact must
    # re-derive the result's counters (two independent accountings).
    cross_check(str(TRACE_PATH), unmanaged).require_ok()
    # Causal attribution across a trip: latency conserves exactly and
    # the lost requests show up as trip drops.
    assert report.requests, "no attributable requests in the trace"
    assert not report.conservation_violations
    assert report.latency_mismatches == 0
    assert report.drops_by_cause.get("trip", 0) == \
        census["Unmanaged"].requests_lost_to_trips
