"""Figure 4: training power time series under no cap / 325 W / 1.1 GHz.

Paper: peaks reach (RoBERTa) or exceed (GPT-NeoX, Flan-T5) TDP; iteration
troughs sit at ~75% / ~50% / ~20% of TDP respectively; power capping
clips peaks without raising troughs; frequency locking scales the whole
series down.
"""

import pytest
from conftest import print_table

from repro.gpu.specs import A100_40GB
from repro.models.registry import TRAINING_FIGURE_MODELS, get_model
from repro.training import TrainingIterationModel

TDP = A100_40GB.tdp_w


def reproduce_figure4():
    rows = []
    series_by_model = {}
    for name in TRAINING_FIGURE_MODELS:
        model = TrainingIterationModel(get_model(name), seed=0)
        uncapped = model.power_series(n_iterations=5)
        capped = model.power_series(n_iterations=5, power_cap_w=325.0)
        locked = model.power_series(n_iterations=5,
                                    frequency_lock_mhz=1100.0)
        series_by_model[name] = (uncapped, capped, locked)
        rows.append((
            name,
            f"{uncapped.peak() / TDP:.2f}",
            f"{uncapped.trough() / TDP:.2f}",
            f"{capped.peak() / TDP:.2f}",
            f"{locked.peak() / TDP:.2f}",
        ))
    return rows, series_by_model


def test_fig04_training_timeseries(benchmark):
    rows, series = benchmark.pedantic(reproduce_figure4, rounds=1,
                                      iterations=1)
    print_table(
        "Figure 4 — training power (per GPU, fraction of TDP)",
        ["model", "peak", "trough", "peak@325W", "peak@1.1GHz"],
        rows,
    )
    uncapped, capped, locked = series["Flan-T5-XXL"]
    # GPT-NeoX / Flan-T5 exceed TDP uncapped; RoBERTa does not.
    assert series["GPT-NeoX-20B"][0].peak() > TDP
    assert series["Flan-T5-XXL"][0].peak() > TDP
    assert series["RoBERTa-355M"][0].peak() < TDP
    # Trough ordering: RoBERTa ~75%, GPT-NeoX ~50%, Flan-T5 ~20%.
    assert series["RoBERTa-355M"][0].trough() / TDP == pytest.approx(
        0.73, abs=0.07
    )
    assert series["GPT-NeoX-20B"][0].trough() / TDP == pytest.approx(
        0.49, abs=0.07
    )
    assert series["Flan-T5-XXL"][0].trough() / TDP == pytest.approx(
        0.20, abs=0.05
    )
    # Capping clips the peak but leaves the trough; locking lowers both.
    assert capped.peak() < uncapped.peak()
    assert capped.trough() == pytest.approx(uncapped.trough(), rel=0.15)
    assert locked.peak() < uncapped.peak()
    benchmark.extra_info["flan_peak_tdp"] = uncapped.peak() / TDP
