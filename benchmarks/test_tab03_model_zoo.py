"""Table 3: the characterized LLM workloads.

Also verifies each model actually fits on its Table 3 GPU allocation at
the serving datatype — the constraint that produced those GPU counts.
"""

from conftest import print_table

from repro.gpu.specs import A100_80GB
from repro.models import FP16, MODEL_ZOO
from repro.models.architecture import ArchitectureKind


def reproduce_table3():
    rows = []
    for spec in MODEL_ZOO.values():
        rows.append((
            spec.architecture.kind.value,
            spec.name,
            f"{spec.n_params / 1e9:.3g}B",
            spec.n_inference_gpus,
            "no" if spec.trainable else "yes",
        ))
    return rows


def test_tab03_model_zoo(benchmark):
    rows = benchmark.pedantic(reproduce_table3, rounds=1, iterations=1)
    print_table("Table 3 — characterized LLM workloads",
                ["category", "model", "#params", "#inference GPUs",
                 "inference-only"], rows)
    assert len(MODEL_ZOO) == 7
    kinds = {spec.architecture.kind for spec in MODEL_ZOO.values()}
    assert kinds == {
        ArchitectureKind.ENCODER,
        ArchitectureKind.DECODER,
        ArchitectureKind.ENCODER_DECODER,
    }
    # Every model fits in its allocated GPUs' aggregate memory at FP16
    # (RoBERTa aside, everything is served FP16 in the paper's setup).
    for spec in MODEL_ZOO.values():
        memory = spec.n_inference_gpus * A100_80GB.memory_bytes
        assert spec.architecture.fits_on(FP16, memory, kv_dtype=FP16)
    # BLOOM-176B genuinely needs all eight GPUs for memory; the smaller
    # multi-GPU allocations in Table 3 also reflect latency targets.
    bloom = MODEL_ZOO["BLOOM-176B"]
    assert not bloom.architecture.fits_on(
        FP16, 4 * A100_80GB.memory_bytes, kv_dtype=FP16
    )
    benchmark.extra_info["models"] = len(rows)
