"""Ablation (Section 5): what faster, standardized OOB control would buy.

The paper's design is hamstrung by the 40 s OOB actuation latency — T2
must sit a full worst-case-40s-spike below the breaker. This ablation
reruns POLCA at an aggressive oversubscription level with progressively
faster actuation (40 s -> 10 s -> 1 s) to quantify the claim that "with
faster, standardized OOB management interfaces, we can deploy several
power and performance optimizations at scale".
"""

from conftest import print_table

from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.policy import DualThresholdPolicy
from repro.core.sweeps import EvaluationHarness
from repro.units import hours
from repro.workloads.spec import Priority

LATENCIES = (40.0, 10.0, 1.0)
ADDED = 0.40  # past the cliff for stock POLCA


def reproduce_oob_ablation():
    harness = EvaluationHarness(duration_s=hours(26), seed=2)
    requests = harness.requests_for(ADDED)
    results = {}
    for latency in LATENCIES:
        config = ClusterConfig(
            n_base_servers=harness.n_base_servers,
            added_fraction=ADDED,
            provisioned_per_server_w=harness.provisioned_per_server_w,
            oob_latency_s=latency,
            seed=harness.seed,
        )
        simulator = ClusterSimulator(config, DualThresholdPolicy())
        results[latency] = simulator.run(requests, harness.duration_s)
    baseline = harness.baseline()
    return results, baseline


def test_abl_oob_latency(benchmark):
    results, baseline = benchmark.pedantic(reproduce_oob_ablation,
                                           rounds=1, iterations=1)
    rows = []
    for latency, result in results.items():
        hp = result.normalized_latencies(Priority.HIGH, baseline)
        rows.append((
            f"{latency:.0f}s",
            result.power_brake_events,
            f"{result.peak_utilization:.3f}",
            f"{hp['p99']:.3f}",
        ))
    print_table(
        f"Ablation — OOB actuation latency at {ADDED:.0%} oversubscription",
        ["OOB latency", "brakes", "peak util", "HP p99"], rows,
    )
    # Faster actuation strictly reduces brake events at the same load.
    brakes = [results[latency].power_brake_events for latency in LATENCIES]
    assert brakes[0] >= brakes[1] >= brakes[2]
    # At 40 s POLCA is past its cliff. Instant actuation cannot make
    # 40% oversubscription safe (the load is simply over budget at the
    # daily peak) but it eliminates a large share of the brake events —
    # the ones caused purely by actuation lag.
    assert brakes[0] > 0
    assert brakes[2] < 0.75 * brakes[0]
    benchmark.extra_info["brakes_by_latency"] = dict(
        zip(map(str, LATENCIES), brakes)
    )
