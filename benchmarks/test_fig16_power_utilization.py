"""Figure 16: row power utilization, default vs 30% more servers.

Paper: the 5-minute average follows the same diurnal pattern with a
higher offset, and the short-term spikes grow because more workloads can
trigger together.
"""

from conftest import print_table

from repro.analysis.timeseries import max_swing


def reproduce_figure16(eval_cache):
    baseline = eval_cache.baseline()
    oversub = eval_cache.run("POLCA", added_fraction=0.30)
    return baseline, oversub


def test_fig16_power_utilization(benchmark, eval_cache):
    baseline, oversub = benchmark.pedantic(
        reproduce_figure16, args=(eval_cache,), rounds=1, iterations=1
    )
    provisioned = baseline.provisioned_power_w
    base_smooth = baseline.power_series.rolling_mean(300.0)
    over_smooth = oversub.power_series.rolling_mean(300.0)
    rows = [
        ("default servers (2s)",
         f"{baseline.mean_utilization:.3f}",
         f"{baseline.peak_utilization:.3f}",
         f"{baseline.max_swing_fraction(2.0):.3f}"),
        ("default servers (5min avg)",
         f"{base_smooth.mean() / provisioned:.3f}",
         f"{base_smooth.peak() / provisioned:.3f}", "-"),
        ("+30% servers (2s)",
         f"{oversub.mean_utilization:.3f}",
         f"{oversub.peak_utilization:.3f}",
         f"{oversub.max_swing_fraction(2.0):.3f}"),
        ("+30% servers (5min avg)",
         f"{over_smooth.mean() / provisioned:.3f}",
         f"{over_smooth.peak() / provisioned:.3f}", "-"),
    ]
    print_table("Figure 16 — row power utilization",
                ["series", "mean", "peak", "max 2s spike"], rows)
    # Same pattern with a higher offset: mean rises with more servers.
    assert oversub.mean_utilization > baseline.mean_utilization + 0.05
    # The diurnal shapes correlate strongly.
    from repro.analysis.correlation import pearson
    n = min(len(base_smooth), len(over_smooth))
    shape_correlation = pearson(
        base_smooth.values[:n], over_smooth.values[:n]
    )
    assert shape_correlation > 0.9
    # Absolute spikes grow with more servers.
    assert max_swing(oversub.power_series, 2.0) > \
        0.9 * max_swing(baseline.power_series, 2.0)
    benchmark.extra_info["shape_correlation"] = shape_correlation
