"""Figure 9: power capping vs frequency locking on BLOOM inference.

Paper (input=8192, output=128, batch=1): the reactive 325 W cap lets
prompt spikes overshoot the cap; the 1.1 GHz lock caps power proactively
at the cost of slower execution throughout.
"""

import pytest
from conftest import print_table

from repro.characterization import inference_power_series
from repro.models.inference import InferenceRequest
from repro.models.registry import get_model


def reproduce_figure9():
    bloom = get_model("BLOOM-176B")
    request = InferenceRequest("BLOOM-176B", input_tokens=8192,
                               output_tokens=128)
    uncapped = inference_power_series(bloom, request, noise_std=0.005)
    capped = inference_power_series(bloom, request, power_cap_w=325.0,
                                    noise_std=0.005)
    locked = inference_power_series(bloom, request,
                                    frequency_lock_mhz=1100.0,
                                    noise_std=0.005)
    return uncapped, capped, locked


def test_fig09_capping_inference(benchmark):
    uncapped, capped, locked = benchmark.pedantic(reproduce_figure9,
                                                  rounds=1, iterations=1)
    rows = [
        ("(a) no cap", f"{uncapped.peak():.0f}",
         f"{uncapped.values[-20:].mean():.0f}", f"{uncapped.duration:.1f}"),
        ("(b) 325 W cap", f"{capped.peak():.0f}",
         f"{capped.values[-20:].mean():.0f}", f"{capped.duration:.1f}"),
        ("(c) 1.1 GHz lock", f"{locked.peak():.0f}",
         f"{locked.values[-20:].mean():.0f}", f"{locked.duration:.1f}"),
    ]
    print_table(
        "Figure 9 — BLOOM inference (input 8192, output 128, batch 1)",
        ["configuration", "peak W", "token W", "duration s"],
        rows,
    )
    # (b): reactive — the spike pierces the cap but converges below it.
    assert capped.peak() > 325.0
    assert capped.peak() < uncapped.peak()
    assert capped.values[-20:].mean() < 335.0
    # (c): proactive — peak drops ~20%+ and the run stretches.
    assert locked.peak() < 0.85 * uncapped.peak()
    assert locked.duration > uncapped.duration
    # Token-phase power barely changes under the cap (it was already low).
    assert capped.values[-20:].mean() == pytest.approx(
        uncapped.values[-20:].mean(), rel=0.1
    )
    benchmark.extra_info["cap_overshoot_w"] = capped.peak() - 325.0
