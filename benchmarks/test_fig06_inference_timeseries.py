"""Figure 6: inference power time series for the five generative models.

Paper: every inference shows a brief prompt spike at or above TDP
followed by a longer, stable, lower token plateau; phase durations differ
by model.
"""

from conftest import print_table

from repro.characterization import repeated_inference_series
from repro.gpu.specs import A100_80GB
from repro.models.registry import INFERENCE_FIGURE_MODELS

TDP = A100_80GB.tdp_w


def reproduce_figure6():
    rows, series = [], {}
    for name in INFERENCE_FIGURE_MODELS:
        trace = repeated_inference_series(name, n_requests=3)
        series[name] = trace
        plateau = trace.values[trace.values > 1.2 * A100_80GB.idle_w]
        plateau_level = float(
            sorted(plateau)[len(plateau) // 2]
        ) if plateau.size else 0.0
        rows.append((
            name,
            f"{trace.peak() / TDP:.2f}",
            f"{plateau_level / TDP:.2f}",
            f"{trace.duration:.1f}s",
        ))
    return rows, series


def test_fig06_inference_timeseries(benchmark):
    rows, series = benchmark.pedantic(reproduce_figure6, rounds=1,
                                      iterations=1)
    print_table(
        "Figure 6 — inference power (3 requests; per-GPU, fraction of TDP)",
        ["model", "prompt peak", "token plateau", "duration"],
        rows,
    )
    # Larger models spike at/above TDP; spikes exceed their plateaus.
    assert series["BLOOM-176B"].peak() >= TDP
    assert series["Llama2-70B"].peak() >= 0.95 * TDP
    for name in INFERENCE_FIGURE_MODELS:
        trace = series[name]
        token_level = float(trace.values[len(trace) // 3])
        assert trace.peak() > 1.1 * token_level
    # Bigger models take longer per request (more phases on screen time).
    assert series["BLOOM-176B"].duration > series["GPT-NeoX-20B"].duration
    benchmark.extra_info["bloom_peak_tdp"] = series["BLOOM-176B"].peak() / TDP
