"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (run with ``-s`` to see them). The
POLCA-evaluation benchmarks (Figures 13-18) share one harness whose
engine-backed memo cache guarantees each (policy, oversubscription,
power-scale, split) combination is simulated exactly once per session;
``EvalCache.prewarm`` batches a figure's whole grid into one parallel
engine execution before the per-point loops (which then all hit cache).
Set ``REPRO_BENCH_WORKERS`` to control the fan-out (default: cores - 1;
1 forces serial — results are bit-identical either way).

The simulated duration defaults to 30 hours — one full daily peak — which
is where all the dynamics (diurnal ramp, threshold crossings, capping,
brake avoidance) play out; the paper's six-week horizon adds repetition,
not new behaviour. Set ``REPRO_BENCH_HOURS`` to simulate longer.
"""

import os
from pathlib import Path
from typing import Dict, Iterable, Optional

import pytest

from repro.cluster.metrics import SimulationResult
from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness
from repro.exec import PolicySpec, RunSpec, default_workers
from repro.obs import ExperimentLedger
from repro.units import hours

BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "30"))
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", str(default_workers()))
)

#: Every POLCA-evaluation run of a benchmark session is journaled here
#: (one JSONL entry per run: digest, provenance, rusage, headline
#: metrics). CI uploads it, and the mission-control report renders its
#: history panels.
LEDGER_PATH = Path(__file__).resolve().parent.parent / "LEDGER_fig18.jsonl"


class EvalCache:
    """Memoized POLCA-evaluation runs shared across benchmarks."""

    def __init__(
        self, duration_s: float, seed: int = 1, workers: int = BENCH_WORKERS
    ) -> None:
        # Fresh journal per session: the ledger file itself is
        # append-only, so the previous session's file is removed rather
        # than truncated through the handle.
        LEDGER_PATH.unlink(missing_ok=True)
        self.ledger = ExperimentLedger(str(LEDGER_PATH))
        self.harness = EvaluationHarness(
            duration_s=duration_s, seed=seed, workers=workers,
            ledger=self.ledger,
        )

    def baseline(self) -> SimulationResult:
        return self.harness.baseline()

    def _spec(
        self,
        policy_name: str = "POLCA",
        added_fraction: float = 0.30,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        thresholds: Optional[PolcaThresholds] = None,
    ) -> RunSpec:
        if thresholds is not None:
            policy = PolicySpec("POLCA", thresholds)
        else:
            policy = PolicySpec(policy_name)
        return self.harness.spec(
            policy,
            added_fraction=added_fraction,
            power_scale=power_scale,
            low_priority_fraction=low_priority_fraction,
        )

    def prewarm(self, runs: Iterable[Dict]) -> None:
        """Batch-execute a figure's grid (plus the baseline) in parallel.

        ``runs`` is an iterable of keyword dicts in :meth:`run`'s
        vocabulary. Points already in the memo cache are not re-run.
        """
        specs = [self.harness.baseline_spec()]
        specs.extend(self._spec(**kwargs) for kwargs in runs)
        self.harness.engine().run_specs(specs)

    def run(
        self,
        policy_name: str = "POLCA",
        added_fraction: float = 0.30,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        thresholds: Optional[PolcaThresholds] = None,
    ) -> SimulationResult:
        """Run (or recall) one simulation configuration."""
        return self.harness.engine().run(self._spec(
            policy_name, added_fraction, power_scale,
            low_priority_fraction, thresholds,
        ))


@pytest.fixture(scope="session")
def eval_cache():
    """The shared POLCA-evaluation cache (Figures 13-18)."""
    return EvalCache(duration_s=hours(BENCH_HOURS))


def print_table(title, headers, rows):
    """Uniform table rendering for all benchmark reports."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
