"""Shared fixtures for the figure/table reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series (run with ``-s`` to see them). The
POLCA-evaluation benchmarks (Figures 13-18) share one memoized simulation
cache so each (policy, oversubscription, power-scale, split) combination
is simulated exactly once per session.

The simulated duration defaults to 30 hours — one full daily peak — which
is where all the dynamics (diurnal ramp, threshold crossings, capping,
brake avoidance) play out; the paper's six-week horizon adds repetition,
not new behaviour. Set ``REPRO_BENCH_HOURS`` to simulate longer.
"""

import os
from typing import Dict, Optional, Tuple

import pytest

from repro.cluster.metrics import SimulationResult
from repro.core.baselines import all_policies
from repro.core.policy import DualThresholdPolicy, PolcaThresholds
from repro.core.sweeps import EvaluationHarness
from repro.units import hours

BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "30"))


class EvalCache:
    """Memoized POLCA-evaluation runs shared across benchmarks."""

    def __init__(self, duration_s: float, seed: int = 1) -> None:
        self.harness = EvaluationHarness(duration_s=duration_s, seed=seed)
        self._runs: Dict[Tuple, SimulationResult] = {}

    def baseline(self) -> SimulationResult:
        return self.harness.baseline()

    def run(
        self,
        policy_name: str = "POLCA",
        added_fraction: float = 0.30,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        thresholds: Optional[PolcaThresholds] = None,
    ) -> SimulationResult:
        """Run (or recall) one simulation configuration."""
        key = (
            policy_name,
            added_fraction,
            power_scale,
            low_priority_fraction,
            thresholds,
        )
        if key not in self._runs:
            if thresholds is not None:
                policy = DualThresholdPolicy(thresholds)
            else:
                policy = all_policies()[policy_name]()
            self._runs[key] = self.harness.run(
                policy,
                added_fraction=added_fraction,
                power_scale=power_scale,
                low_priority_fraction=low_priority_fraction,
            )
        return self._runs[key]


@pytest.fixture(scope="session")
def eval_cache():
    """The shared POLCA-evaluation cache (Figures 13-18)."""
    return EvalCache(duration_s=hours(BENCH_HOURS))


def print_table(title, headers, rows):
    """Uniform table rendering for all benchmark reports."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
