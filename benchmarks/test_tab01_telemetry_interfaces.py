"""Table 1: power monitoring interfaces in an LLM cluster.

Regenerates the catalogue and verifies the simulated interfaces honor
their published granularity, path, and interval.
"""

from conftest import print_table

from repro.telemetry import (
    DcgmMonitor,
    INTERFACE_CATALOG,
    IpmiMonitor,
    RowManager,
    SmbpbiInterface,
)


def reproduce_table1():
    rows = []
    for info in INTERFACE_CATALOG.values():
        lo, hi = info.interval_seconds
        interval = f"{lo:g}s" if lo == hi else f"{lo:g}-{hi:g}s"
        rows.append((info.mechanism, info.granularity, info.path, interval))
    return rows


def test_tab01_telemetry_interfaces(benchmark):
    rows = benchmark.pedantic(reproduce_table1, rounds=1, iterations=1)
    print_table("Table 1 — power monitoring interfaces",
                ["mechanism", "granularity", "path", "interval"], rows)
    # The simulated implementations respect the catalogue.
    implementations = {
        "DCGM": DcgmMonitor(),
        "IPMI": IpmiMonitor(),
        "SMBPBI": SmbpbiInterface(),
        "RowManager": RowManager(),
    }
    for key, interface in implementations.items():
        info = INTERFACE_CATALOG[key]
        lo, hi = info.interval_seconds
        assert lo <= interface.interval <= hi
        assert interface.in_band == info.in_band
    benchmark.extra_info["interfaces"] = len(rows)
