"""Extension (Section 5): derating GPU servers.

The paper: a DGX-A100 is rated 6500 W but never exceeded 5700 W, so
providers "could derate the power provisioned per server by up to 800W",
deploying additional servers in existing clusters. This benchmark plans
the derating for an A100 and an H100 row and reports the capacity gain —
the win available *before* any POLCA-style statistical oversubscription.
"""

from conftest import print_table

from repro.datacenter.derating import plan_derating
from repro.gpu.specs import H100_80GB
from repro.server.components import DGX_H100_BUDGET
from repro.server.dgx import DgxServer


def reproduce_derating():
    a100_plan = plan_derating(base_servers=40, safety_margin_w=100.0)
    h100_server = DgxServer(gpu_spec=H100_80GB, budget=DGX_H100_BUDGET)
    h100_plan = plan_derating(server=h100_server, base_servers=40,
                              safety_margin_w=150.0)
    return a100_plan, h100_plan


def test_ext_derating(benchmark):
    a100, h100 = benchmark.pedantic(reproduce_derating, rounds=1,
                                    iterations=1)
    rows = [
        ("DGX-A100", f"{a100.rated_power_w:.0f}",
         f"{a100.observed_peak_w:.0f}", f"{a100.derated_power_w:.0f}",
         a100.base_servers, a100.derated_servers,
         f"+{a100.added_fraction:.0%}"),
        ("DGX-H100", f"{h100.rated_power_w:.0f}",
         f"{h100.observed_peak_w:.0f}", f"{h100.derated_power_w:.0f}",
         h100.base_servers, h100.derated_servers,
         f"+{h100.added_fraction:.0%}"),
    ]
    print_table("Extension — server derating plans",
                ["server", "rated W", "peak W", "derated W", "base",
                 "derated", "gain"], rows)
    # Paper numbers: >= 800 W headroom per A100 server, peak < 5700 W.
    assert a100.headroom_per_server_w >= 800.0
    assert a100.observed_peak_w < 5700.0
    # Derating alone adds meaningful capacity on both generations.
    assert a100.added_fraction > 0.10
    assert h100.added_fraction > 0.05
    benchmark.extra_info["a100_gain"] = a100.added_fraction
