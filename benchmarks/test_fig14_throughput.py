"""Figure 14: server throughput under POLCA.

Paper: at the chosen configuration the high-priority throughput is
unaffected while low-priority throughput declines by less than 2%.
"""

from conftest import print_table

from repro.workloads.spec import Priority

FRACTIONS = (0.10, 0.20, 0.30, 0.40)


def reproduce_figure14(eval_cache):
    eval_cache.prewarm(
        {"policy_name": "POLCA", "added_fraction": fraction}
        for fraction in FRACTIONS
    )
    baseline = eval_cache.baseline()
    rows = {}
    for fraction in FRACTIONS:
        result = eval_cache.run("POLCA", added_fraction=fraction)
        rows[fraction] = {
            priority: result.normalized_throughput(priority, baseline)
            for priority in Priority
        }
    return rows


def test_fig14_throughput(benchmark, eval_cache):
    data = benchmark.pedantic(
        reproduce_figure14, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [
        (f"{int(fraction * 100)}%",
         f"{ratios[Priority.LOW]:.4f}", f"{ratios[Priority.HIGH]:.4f}")
        for fraction, ratios in data.items()
    ]
    print_table("Figure 14 — normalized served-request throughput",
                ["added servers", "low priority", "high priority"], rows)
    at_30 = data[0.30]
    # HP unaffected; LP declines < 2%.
    assert at_30[Priority.HIGH] > 0.99
    assert at_30[Priority.LOW] > 0.98
    benchmark.extra_info["lp_throughput_at_30pct"] = at_30[Priority.LOW]
