"""Extension (Section 3.3 / 6.6): POLCA fault tolerance on an
unreliable substrate.

The paper's robustness scenario perturbs the power model by +5%; real
deployments also face the failure modes of Section 3.3 — OOB commands
that "may sometimes fail without signaling completion or errors", lossy
telemetry, and server churn. This benchmark runs POLCA at 30%
oversubscription under the documented adversarial plan (telemetry
dropout windows with a 30 s mean, 2% Gaussian sensor noise, 10% silent
actuation failures, 5% late actuations, one server crash with recovery)
and checks the hardened control loop's guarantees:

* the true row power never stays over the breaker budget longer than
  the 40 s OOB window;
* every injected actuation fault is detected by the verify layer and
  recovered by re-issue (nothing is abandoned);
* the throughput cost of the re-issue/fallback machinery stays small.

A second test pins the zero-fault contract: an all-zeros plan leaves
the instrumented simulator bit-identical to the plain one.
"""

from conftest import print_table

from repro.core.policy import DualThresholdPolicy
from repro.faults import FaultPlan
from repro.workloads.spec import Priority


def test_ext_fault_tolerance(benchmark, eval_cache):
    plan = FaultPlan.adversarial(seed=1)
    clean = eval_cache.run("POLCA", added_fraction=0.30)

    def reproduce():
        return eval_cache.harness.run(
            DualThresholdPolicy(), added_fraction=0.30, fault_plan=plan
        )

    faulty = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    report = faulty.robustness

    rows = [
        ("dropped/frozen ticks",
         f"{report.telemetry_dropped_ticks}/{report.telemetry_frozen_ticks}"),
        ("sensor spikes", str(report.telemetry_spikes)),
        ("silent command failures", str(report.silent_actuation_failures)),
        ("late commands", str(report.delayed_actuations)),
        ("server crashes", str(report.server_failures)),
        ("failures detected", str(report.failures_detected)),
        ("re-issues", str(report.reissues)),
        ("commands recovered", str(report.commands_recovered)),
        ("commands abandoned", str(report.commands_unrecovered)),
        ("fallback entries", str(report.fallback_entries)),
        ("time over budget", f"{report.time_at_risk_s:.1f} s"),
        ("longest excursion", f"{report.longest_overbudget_s:.1f} s"),
    ]
    print_table("Extension — POLCA under the adversarial fault plan",
                ["metric", "value"], rows)

    # The plan actually exercised every fault channel.
    assert report.telemetry_dropped_ticks > 0
    assert report.silent_actuation_failures > 0
    assert report.server_failures == 1
    assert report.server_recoveries == 1

    # The breaker holds: no excursion outlives the 40 s OOB window.
    assert report.longest_overbudget_s <= 40.0

    # Every actuation fault was detected and recovered — or superseded
    # by a newer command before its verify deadline, which tolerates the
    # loss by design (the dropped command no longer matters). Nothing
    # ends up abandoned.
    assert report.failures_detected > 0
    assert report.reissues > 0
    assert report.commands_recovered > 0
    assert report.all_faults_accounted
    assert report.commands_unrecovered == 0

    # The machinery is cheap: throughput within 3% of the perfect
    # substrate (the crash itself costs capacity, re-issues cost
    # latency, but the row keeps serving).
    assert faulty.total_served >= 0.97 * clean.total_served
    impact = report.slo_impact(faulty, clean)
    for priority in Priority:
        assert impact[priority.value]["p99"] < 2.0

    benchmark.extra_info["longest_overbudget_s"] = \
        report.longest_overbudget_s
    benchmark.extra_info["commands_recovered"] = report.commands_recovered


def test_ext_fault_layer_zero_overhead(benchmark, eval_cache):
    """An all-zeros plan reproduces the plain simulator bit-for-bit."""
    clean = eval_cache.run("POLCA", added_fraction=0.30)

    def reproduce():
        return eval_cache.harness.run(
            DualThresholdPolicy(), added_fraction=0.30,
            fault_plan=FaultPlan.none(),
        )

    instrumented = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    assert instrumented.power_series.values.tolist() == \
        clean.power_series.values.tolist()
    assert instrumented.total_energy_j == clean.total_energy_j
    assert instrumented.capping_actions == clean.capping_actions
    assert instrumented.power_brake_events == clean.power_brake_events
    for priority in Priority:
        assert instrumented.per_priority[priority].latencies == \
            clean.per_priority[priority].latencies
    assert instrumented.robustness.faults_injected == 0
