"""Table 4: LLM cluster power usage in production (training vs inference).

Paper: training peaks at 97% with 37.5%-in-2s coordinated swings;
inference peaks at 79%, diurnal, with 9%-in-2s / 11.8%-in-40s spikes.
The training column comes from the correlated-iteration cluster model;
the inference column from an uncapped discrete-event run.
"""

import pytest
from conftest import print_table

from repro.characterization import training_cluster_patterns
from repro.characterization.scale import ClusterPowerPatterns


def reproduce_table4(eval_cache):
    training = training_cluster_patterns(duration_s=120.0, seed=0)
    baseline = eval_cache.baseline()
    inference = ClusterPowerPatterns(
        cluster="inference",
        peak_utilization=baseline.peak_utilization,
        mean_utilization=baseline.mean_utilization,
        max_spike_2s=baseline.max_swing_fraction(2.0),
        max_spike_40s=baseline.max_swing_fraction(40.0),
    )
    return training, inference


def test_tab04_cluster_power_patterns(benchmark, eval_cache):
    training, inference = benchmark.pedantic(
        reproduce_table4, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [
        ("Peak power utilization",
         f"{training.peak_utilization:.0%}", f"{inference.peak_utilization:.0%}",
         "97% / 79%"),
        ("Mean power utilization",
         f"{training.mean_utilization:.0%}", f"{inference.mean_utilization:.0%}",
         "training higher"),
        ("Max power spike in 2s",
         f"{training.max_spike_2s:.1%}", f"{inference.max_spike_2s:.1%}",
         "37.5% / 9%"),
        ("Max power spike in 40s",
         f"{training.max_spike_40s:.1%}", f"{inference.max_spike_40s:.1%}",
         "- / 11.8%"),
        ("Oversubscription headroom",
         f"{training.headroom:.1%}", f"{inference.headroom:.1%}",
         "~3% / ~21%"),
    ]
    print_table("Table 4 — cluster power patterns",
                ["metric", "training", "inference", "paper"], rows)
    # Training: ~97% peak, ~37.5% 2 s swing, ~3% headroom.
    assert training.peak_utilization == pytest.approx(0.97, abs=0.02)
    assert training.max_spike_2s == pytest.approx(0.375, abs=0.06)
    # Inference: ~79% peak; swings far below training's.
    assert inference.peak_utilization == pytest.approx(0.79, abs=0.04)
    assert inference.max_spike_2s < 0.5 * training.max_spike_2s
    # Insight 9: inference headroom >> training headroom.
    assert inference.headroom > 4 * training.headroom
    benchmark.extra_info["training_peak"] = training.peak_utilization
    benchmark.extra_info["inference_peak"] = inference.peak_utilization
