"""Figure 5: peak-power vs performance reduction for training knobs.

Paper: for Flan-T5 and GPT-NeoX, frequency capping reduces peak server
power by ~22% while impacting performance by only ~10%; power capping
clips peaks reactively (troughs untouched) and adds variability.
"""

import pytest
from conftest import print_table

from repro.models.registry import TRAINING_FIGURE_MODELS, get_model
from repro.training import (
    TrainingIterationModel,
    frequency_lock_tradeoff,
    power_cap_tradeoff,
)

CLOCKS = (1410.0, 1350.0, 1275.0, 1200.0, 1100.0)
CAPS = (400.0, 375.0, 350.0, 325.0, 300.0)


def reproduce_figure5():
    freq_rows, cap_rows = [], []
    curves = {}
    for name in TRAINING_FIGURE_MODELS:
        model = TrainingIterationModel(get_model(name), seed=0)
        freq = frequency_lock_tradeoff(model, CLOCKS)
        cap = power_cap_tradeoff(model, CAPS, seed=0)
        curves[name] = (freq, cap)
        for point in freq:
            freq_rows.append((
                name, f"{point.knob_value:.0f} MHz",
                f"{point.peak_power_reduction:.1%}",
                f"{point.performance_reduction:.1%}",
            ))
        for point in cap:
            cap_rows.append((
                name, f"{point.knob_value:.0f} W",
                f"{point.peak_power_reduction:.1%}",
                f"{point.performance_reduction:.1%}",
            ))
    return freq_rows, cap_rows, curves


def test_fig05_training_knob_tradeoff(benchmark):
    freq_rows, cap_rows, curves = benchmark.pedantic(
        reproduce_figure5, rounds=1, iterations=1
    )
    print_table("Figure 5a — frequency locking (training)",
                ["model", "clock", "peak power -", "performance -"],
                freq_rows)
    print_table("Figure 5b — power capping (training)",
                ["model", "cap", "peak power -", "performance -"],
                cap_rows)
    # Headline: ~22% peak reduction for ~10% performance (Flan-T5/NeoX).
    for name in ("Flan-T5-XXL", "GPT-NeoX-20B"):
        deepest = curves[name][0][-1]
        assert deepest.peak_power_reduction == pytest.approx(0.22, abs=0.04)
        assert deepest.performance_reduction == pytest.approx(0.10, abs=0.04)
    # Power capping leaves troughs untouched across all models.
    for name in TRAINING_FIGURE_MODELS:
        assert all(p.trough_power_reduction == pytest.approx(0.0, abs=0.01)
                   for p in curves[name][1])
    # Both knobs: peak reduction outpaces performance reduction.
    for name in TRAINING_FIGURE_MODELS:
        for curve in curves[name]:
            for point in curve:
                assert point.peak_power_reduction >= \
                    point.performance_reduction - 0.02
    benchmark.extra_info["flan_deepest_peak_reduction"] = \
        curves["Flan-T5-XXL"][0][-1].peak_power_reduction
