"""Ablation: energy footprint of oversubscription and capping.

The paper distinguishes its peak-power focus from the energy-efficiency
literature (Section 7: "Reducing average power or energy consumption is
different from our target of reducing peak power"). This ablation closes
the loop: what does POLCA's capping do to *energy* while it manages the
peak? Serving 30% more load in one row raises total energy but lowers
energy per request (idle power amortizes over more work), and POLCA's
caps shave a little more.
"""

from conftest import print_table


def reproduce_energy(eval_cache):
    baseline = eval_cache.baseline()
    nocap_30 = eval_cache.run("No-cap", added_fraction=0.30)
    polca_30 = eval_cache.run("POLCA", added_fraction=0.30)
    return baseline, nocap_30, polca_30


def test_abl_energy(benchmark, eval_cache):
    baseline, nocap_30, polca_30 = benchmark.pedantic(
        reproduce_energy, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = []
    for label, run in (("default, uncapped", baseline),
                       ("+30%, No-cap", nocap_30),
                       ("+30%, POLCA", polca_30)):
        rows.append((
            label,
            f"{run.total_energy_j / 3.6e9:.2f}",
            run.total_served,
            f"{run.energy_per_request_j / 3.6e6:.4f}",
            run.power_brake_events,
        ))
    print_table("Ablation — energy accounting",
                ["configuration", "energy MWh", "served",
                 "kWh per request", "brakes"], rows)
    # More servers serve more requests and burn more total energy...
    assert polca_30.total_served > baseline.total_served
    assert polca_30.total_energy_j > baseline.total_energy_j
    # ...but amortize idle power: energy per request falls.
    assert polca_30.energy_per_request_j < baseline.energy_per_request_j
    # No-cap shows even lower energy — but only because its brake events
    # throttle the whole row to a crawl; that is degraded service, not
    # efficiency (its latencies blow past every SLO, Figure 17).
    if nocap_30.total_energy_j < polca_30.total_energy_j:
        assert nocap_30.power_brake_events > 0
    benchmark.extra_info["kwh_per_request_polca"] = \
        polca_30.energy_per_request_j / 3.6e6
