"""Sweep-engine performance: serial vs parallel wall-clock.

Times a fixed Figure 13-shaped grid (threshold combos x oversubscription
levels, plus the shared baseline) twice — serial, then with 4 workers —
each against a fresh memo cache so both timings simulate every run. The
measurements land in ``BENCH_sweeps.json`` at the repo root, which CI
uploads as an artifact; the expected >= 2x speedup at 4 workers is
asserted only on machines that actually have 4 cores.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.exec import fork_available
from repro.units import hours

COMBOS = (
    ("75-85", PolcaThresholds(t1=0.75, t2=0.85)),
    ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
    ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
)
FRACTIONS = (0.10, 0.20, 0.30, 0.40)
GRID_HOURS = float(os.environ.get("REPRO_PERF_GRID_HOURS", "6"))
PARALLEL_WORKERS = 4
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweeps.json"


def run_grid(workers: int) -> int:
    """Run the full grid against a fresh cache; return unique run count."""
    harness = EvaluationHarness(duration_s=hours(GRID_HOURS), seed=1)
    points = threshold_search(harness, COMBOS, FRACTIONS, workers=workers)
    assert len(points) == len(COMBOS) * len(FRACTIONS)
    return harness.cache.stats["stores"]


def test_perf_sweeps(benchmark):
    if not fork_available():
        pytest.skip("platform has no fork start method")

    start = time.perf_counter()
    serial_runs = run_grid(1)
    serial_wall = time.perf_counter() - start

    def parallel_grid():
        return run_grid(PARALLEL_WORKERS)

    parallel_runs = benchmark.pedantic(
        parallel_grid, rounds=1, iterations=1
    )
    parallel_wall = benchmark.stats.stats.total

    assert serial_runs == parallel_runs
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    report = {
        "grid": {
            "combos": [label for label, _ in COMBOS],
            "added_fractions": list(FRACTIONS),
            "simulated_hours": GRID_HOURS,
            "unique_runs": serial_runs,
        },
        "serial": {
            "workers": 1,
            "wall_s": round(serial_wall, 3),
            "runs_per_s": round(serial_runs / serial_wall, 3),
        },
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "wall_s": round(parallel_wall, 3),
            "runs_per_s": round(parallel_runs / parallel_wall, 3),
        },
        "speedup": round(speedup, 3),
        "cpu_count": os.cpu_count(),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n=== Sweep engine: {serial_runs} runs of a "
          f"{GRID_HOURS:.0f}h grid ===")
    print(f"serial:    {serial_wall:6.2f} s  "
          f"({report['serial']['runs_per_s']:.2f} runs/s)")
    print(f"workers={PARALLEL_WORKERS}: {parallel_wall:6.2f} s  "
          f"({report['parallel']['runs_per_s']:.2f} runs/s)")
    print(f"speedup:   {speedup:.2f}x  (report: {REPORT_PATH.name})")

    benchmark.extra_info.update(report)
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {PARALLEL_WORKERS} workers, "
            f"got {speedup:.2f}x"
        )
