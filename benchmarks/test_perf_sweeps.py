"""Sweep-engine performance: serial vs parallel vs incremental.

``test_perf_sweeps`` times a fixed Figure 13-shaped grid (threshold
combos x oversubscription levels, plus the shared baseline) twice —
serial, then with 4 workers — each against a fresh memo cache so both
timings simulate every run. The measurements land in
``BENCH_sweeps.json`` at the repo root, which CI uploads as an
artifact; the expected >= 2x speedup at 4 workers is asserted only on
machines that actually have 4 cores.

``test_perf_obs_recording_overhead`` emits ``BENCH_obs.json``: the
same grid serial-unrecorded, then serial with a ``TraceCollector``
spooling the overhead-bounded site config (every low-rate command/
fault/protection kind in full, the serve plane hash-sampled at 5%
with its exact drop census, the per-tick kinds left to the metrics
snapshot) to per-digest JSONL segments. Sampled recording must stay
cheap: the two passes run as interleaved pairs (wall-clock on shared
runners drifts far more than the budget; adjacent timings share the
drift phase), the best per-pair delta is asserted within 10% of the
unrecorded minimum (with a 1 s absolute floor for timer noise on
fast grids), and the deterministic segment/event counts land in the
report so the regression sentinel pins them exactly.

``test_perf_sim_core`` emits ``BENCH_sim_core.json`` for the
struct-of-arrays core and the checkpointed incremental executor: the
same grid serial-cold (the SoA hot path; the pre-SoA seed's wall time
is recorded alongside for the vs-seed comparison), through the
process-pool optimized path (>= 2x floor), through the incremental
executor cold (prefix restores, with the executor's saved/replayed
second counters), and a warm ``threshold_search`` re-run answered from
the result cache (>= 3x floor, in practice orders of magnitude).
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.exec import PolicySpec, fork_available
from repro.units import hours

COMBOS = (
    ("75-85", PolcaThresholds(t1=0.75, t2=0.85)),
    ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
    ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
)
FRACTIONS = (0.10, 0.20, 0.30, 0.40)
GRID_HOURS = float(os.environ.get("REPRO_PERF_GRID_HOURS", "6"))
PARALLEL_WORKERS = 4
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweeps.json"


def run_grid(workers: int) -> int:
    """Run the full grid against a fresh cache; return unique run count."""
    harness = EvaluationHarness(duration_s=hours(GRID_HOURS), seed=1)
    points = threshold_search(harness, COMBOS, FRACTIONS, workers=workers)
    assert len(points) == len(COMBOS) * len(FRACTIONS)
    return harness.cache.stats["stores"]


def test_perf_sweeps(benchmark):
    if not fork_available():
        pytest.skip("platform has no fork start method")

    start = time.perf_counter()
    serial_runs = run_grid(1)
    serial_wall = time.perf_counter() - start

    def parallel_grid():
        return run_grid(PARALLEL_WORKERS)

    parallel_runs = benchmark.pedantic(
        parallel_grid, rounds=1, iterations=1
    )
    parallel_wall = benchmark.stats.stats.total

    assert serial_runs == parallel_runs
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    report = {
        "grid": {
            "combos": [label for label, _ in COMBOS],
            "added_fractions": list(FRACTIONS),
            "simulated_hours": GRID_HOURS,
            "unique_runs": serial_runs,
        },
        "serial": {
            "workers": 1,
            "wall_s": round(serial_wall, 3),
            "runs_per_s": round(serial_runs / serial_wall, 3),
        },
        "parallel": {
            "workers": PARALLEL_WORKERS,
            "wall_s": round(parallel_wall, 3),
            "runs_per_s": round(parallel_runs / parallel_wall, 3),
        },
        "speedup": round(speedup, 3),
        "cpu_count": os.cpu_count(),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n=== Sweep engine: {serial_runs} runs of a "
          f"{GRID_HOURS:.0f}h grid ===")
    print(f"serial:    {serial_wall:6.2f} s  "
          f"({report['serial']['runs_per_s']:.2f} runs/s)")
    print(f"workers={PARALLEL_WORKERS}: {parallel_wall:6.2f} s  "
          f"({report['parallel']['runs_per_s']:.2f} runs/s)")
    print(f"speedup:   {speedup:.2f}x  (report: {REPORT_PATH.name})")

    benchmark.extra_info.update(report)
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {PARALLEL_WORKERS} workers, "
            f"got {speedup:.2f}x"
        )


OBS_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Interleaved timing rounds per pass; min-of-N is compared. One round
#: is hostage to scheduler noise that routinely dwarfs the 10% budget.
OBS_TIMING_ROUNDS = 3

#: The overhead-bounded site config the recorded pass spools: every
#: low-rate kind — command lifecycles, protection, churn, faults — is
#: kept in full, the serve plane is hash-sampled at 5% (deterministic,
#: with an exact per-kind drop census in each segment), and the
#: per-tick ``control``/``req_arrival``/``phase_start`` kinds are left
#: to the metrics snapshot, where the utilization histogram and the
#: request counters already carry them. ``TraceRecorder.wants()``
#: gating makes the elided kinds free at the hook points.
OBS_KEEP_KINDS = (
    "brake_cancel_release", "brake_issue", "brake_land", "brake_reissue",
    "brake_release_request", "brake_request", "brake_verify",
    "cap_issue", "cap_land", "cap_reissue", "cap_verify",
    "capacity_status", "drop", "fallback_enter", "fallback_exit",
    "phase_rescale", "reenergize", "reenergize_done", "run_meta",
    "serve", "server_fail", "server_recover",
    "shed_defer", "shed_engage", "shed_release",
    "telemetry_fault", "trip_risk",
)
OBS_SERVE_RATE = 0.05


def test_perf_obs_recording_overhead(benchmark):
    """Sampled trace collection stays within 10% wall overhead."""
    import tempfile

    from repro.obs import TraceCollector

    # Unrecorded and recorded grids run as interleaved pairs: shared
    # runners drift between slow and fast phases by far more than the
    # 10% budget, and adjacent timings see the same phase, so the
    # per-pair delta cancels the drift that min-of-N alone cannot.
    unrecorded_walls: list = []
    recorded_walls: list = []
    runs = {}

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as spool:
        collector = TraceCollector(
            spool, kinds=OBS_KEEP_KINDS, sample={"serve": OBS_SERVE_RATE},
        )

        def recorded_grid():
            # A fresh harness per round: every round simulates the
            # whole grid cold, re-spooling identical segments.
            harness = EvaluationHarness(
                duration_s=hours(GRID_HOURS), seed=1, collector=collector,
            )
            points = threshold_search(
                harness, COMBOS, FRACTIONS, workers=1
            )
            assert len(points) == len(COMBOS) * len(FRACTIONS)
            return harness.cache.stats["stores"]

        def round_pair():
            start = time.perf_counter()
            runs["unrecorded"] = run_grid(1)
            unrecorded_walls.append(time.perf_counter() - start)
            start = time.perf_counter()
            runs["recorded"] = recorded_grid()
            recorded_walls.append(time.perf_counter() - start)

        benchmark.pedantic(
            round_pair, rounds=OBS_TIMING_ROUNDS, iterations=1
        )
        digests = collector.digests()
        segments = [collector.events(digest) for digest in digests]
        events_total = sum(len(events) for events in segments)
        serve_events = sum(
            1 for events in segments for event in events
            if event.get("kind") == "serve"
        )

    assert runs["recorded"] == runs["unrecorded"]
    unrecorded_runs = runs["unrecorded"]
    unrecorded_wall = min(unrecorded_walls)
    recorded_wall = min(recorded_walls)
    overhead_wall = min(
        recorded - unrecorded
        for recorded, unrecorded in zip(recorded_walls, unrecorded_walls)
    )
    ratio = recorded_wall / unrecorded_wall if unrecorded_wall > 0 else 0.0
    report = {
        "grid": {
            "combos": [label for label, _ in COMBOS],
            "added_fractions": list(FRACTIONS),
            "simulated_hours": GRID_HOURS,
            "unique_runs": unrecorded_runs,
        },
        "unrecorded": {
            "wall_s": round(unrecorded_wall, 3),
            "timing_rounds": OBS_TIMING_ROUNDS,
        },
        "recorded": {
            "wall_s": round(recorded_wall, 3),
            "timing_rounds": OBS_TIMING_ROUNDS,
            "segments": len(digests),
            "events_total": events_total,
            "serve_events_kept": serve_events,
            "serve_sample_rate": OBS_SERVE_RATE,
        },
        "overhead": {
            # ratio of the two wall minima; judged under the relative
            # timing tolerance like every *wall_s metric. The asserted
            # per-pair delta is deliberately NOT reported: its scale
            # (tenths of a second) sits under the sentinel's noise
            # floor, so pinning it would only flap.
            "relative_wall_s": round(ratio, 3),
        },
        "cpu_count": os.cpu_count(),
    }
    OBS_REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n=== Trace collection: {unrecorded_runs} runs of a "
          f"{GRID_HOURS:.0f}h grid (min of {OBS_TIMING_ROUNDS} "
          f"interleaved pairs) ===")
    print(f"unrecorded: {unrecorded_wall:6.2f} s")
    print(f"recorded:   {recorded_wall:6.2f} s  "
          f"({events_total} events in {len(digests)} segments, "
          f"serve sampled at {OBS_SERVE_RATE:.0%}, x{ratio:.3f} wall)")
    print(f"overhead:   {overhead_wall:+6.2f} s best paired delta")

    benchmark.extra_info.update(report)
    budget = max(unrecorded_wall * 0.10, 1.0)
    assert overhead_wall <= budget, (
        f"sampled recording costs {overhead_wall:.2f} s over the "
        f"{unrecorded_wall:.2f} s unrecorded grid in the best "
        f"interleaved pair — beyond the 10% budget ({budget:.2f} s)"
    )


SIM_CORE_REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_sim_core.json"
)

#: Serial wall-clock of this exact grid (default 6 h horizon) measured
#: on the pre-struct-of-arrays simulator before the core refactor, on
#: the CI reference machine. The SoA section below reports the current
#: serial time next to it so the vs-seed ratio is tracked run over run.
PRE_SOA_SERIAL_WALL_S = 8.8


def test_perf_sim_core(benchmark):
    if not fork_available():
        pytest.skip("platform has no fork start method")

    def timed_grid(harness, workers=1):
        start = time.perf_counter()
        points = threshold_search(
            harness, COMBOS, FRACTIONS, workers=workers
        )
        wall = time.perf_counter() - start
        assert len(points) == len(COMBOS) * len(FRACTIONS)
        return wall

    # 1. The SoA core, serial and cold: every grid point simulated.
    serial_wall = timed_grid(EvaluationHarness(
        duration_s=hours(GRID_HOURS), seed=1
    ))

    # 2. The optimized path: process fan-out over the same cold grid.
    def optimized_grid():
        return timed_grid(EvaluationHarness(
            duration_s=hours(GRID_HOURS), seed=1
        ), workers=PARALLEL_WORKERS)

    optimized_wall = benchmark.pedantic(
        optimized_grid, rounds=1, iterations=1
    )

    # 3. The incremental executor, cold: each family's first run
    # records tape + checkpoints, the rest restore their longest
    # matching prefix and replay only the suffix. The grid is the same
    # baseline + combos x fractions batch threshold_search builds, run
    # through an engine we hold so its executor counters are readable.
    incremental = EvaluationHarness(
        duration_s=hours(GRID_HOURS), seed=1, incremental=True,
    )
    engine = incremental.engine()
    specs = [incremental.baseline_spec()] + [
        incremental.spec(
            PolicySpec("POLCA", thresholds), added_fraction=fraction
        )
        for _, thresholds in COMBOS
        for fraction in FRACTIONS
    ]
    start = time.perf_counter()
    results = engine.run_specs(specs)
    incremental_wall = time.perf_counter() - start
    assert len(results) == 1 + len(COMBOS) * len(FRACTIONS)
    inc_stats = engine._incremental.stats

    # 4. Warm re-run of the whole threshold search: every spec answers
    # from the result cache without touching the simulator.
    start = time.perf_counter()
    threshold_search(incremental, COMBOS, FRACTIONS)
    warm_wall = time.perf_counter() - start

    optimized_speedup = serial_wall / optimized_wall \
        if optimized_wall > 0 else 0.0
    warm_speedup = incremental_wall / warm_wall if warm_wall > 0 else 0.0
    report = {
        "grid": {
            "combos": [label for label, _ in COMBOS],
            "added_fractions": list(FRACTIONS),
            "simulated_hours": GRID_HOURS,
        },
        "soa_serial": {
            "wall_s": round(serial_wall, 3),
            "pre_soa_seed_wall_s": PRE_SOA_SERIAL_WALL_S,
            "speedup_vs_seed": round(
                PRE_SOA_SERIAL_WALL_S / serial_wall, 3
            ) if serial_wall > 0 else 0.0,
        },
        "optimized": {
            "workers": PARALLEL_WORKERS,
            "wall_s": round(optimized_wall, 3),
            "speedup_vs_serial": round(optimized_speedup, 3),
        },
        "incremental_cold": {
            "wall_s": round(incremental_wall, 3),
            "speedup_vs_serial": round(
                serial_wall / incremental_wall, 3
            ) if incremental_wall > 0 else 0.0,
            "base_runs": inc_stats.base_runs,
            "resumed_runs": inc_stats.resumed_runs,
            "reused_results": inc_stats.reused_results,
            "cold_runs": inc_stats.cold_runs,
            "saved_sim_s": round(inc_stats.saved_s, 1),
            "replayed_sim_s": round(inc_stats.replayed_s, 1),
        },
        "warm_rerun": {
            "wall_s": round(warm_wall, 4),
            "speedup_vs_incremental_cold": round(warm_speedup, 1),
        },
        "cpu_count": os.cpu_count(),
    }
    SIM_CORE_REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n=== Simulator core: {GRID_HOURS:.0f}h Fig 13 grid ===")
    print(f"SoA serial:        {serial_wall:6.2f} s "
          f"(seed was {PRE_SOA_SERIAL_WALL_S:.1f} s)")
    print(f"optimized (x{PARALLEL_WORKERS}):    {optimized_wall:6.2f} s  "
          f"{optimized_speedup:.2f}x")
    print(f"incremental cold:  {incremental_wall:6.2f} s  "
          f"(saved {inc_stats.saved_s:.0f} sim-s across "
          f"{inc_stats.resumed_runs} resumes)")
    print(f"warm re-run:       {warm_wall:6.3f} s  {warm_speedup:.0f}x")

    benchmark.extra_info.update(report)
    assert warm_speedup >= 3.0, (
        f"warm threshold_search re-run should be >= 3x, "
        f"got {warm_speedup:.2f}x"
    )
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert optimized_speedup >= 2.0, (
            f"expected >= 2x over serial on the optimized path, "
            f"got {optimized_speedup:.2f}x"
        )
