"""Figure 3: provisioned power per component of an 8xA100-80GB server.

Paper: ~50% of a DGX-A100's 6500 W rating is provisioned for GPUs and
~25% for fans; Section 5 adds that the observed peak never exceeded
5700 W, leaving >=800 W of derating headroom.
"""

from conftest import print_table

from repro.server import DGX_A100_BUDGET, DgxServer


def reproduce_figure3():
    server = DgxServer()
    rows = [
        (name, f"{watts:.0f}", f"{fraction:.1%}")
        for (name, watts), fraction in zip(
            DGX_A100_BUDGET.components.items(),
            DGX_A100_BUDGET.fractions().values(),
        )
    ]
    rows.append(("TOTAL (rated)", f"{DGX_A100_BUDGET.total_w:.0f}", "100.0%"))
    return server, rows


def test_fig03_server_power_budget(benchmark):
    server, rows = benchmark.pedantic(reproduce_figure3, rounds=1,
                                      iterations=1)
    print_table(
        "Figure 3 — provisioned power breakdown (DGX-A100)",
        ["component", "watts", "share"],
        rows,
    )
    print(f"observed peak: {server.peak_power_w:.0f} W "
          f"(paper: never exceeded 5700 W)")
    print(f"derating headroom: {server.derating_headroom_w():.0f} W "
          f"(paper: derate by up to ~800 W)")
    benchmark.extra_info["gpu_share"] = DGX_A100_BUDGET.fraction("gpus")
    benchmark.extra_info["fan_share"] = DGX_A100_BUDGET.fraction("fans")
    # Shape assertions from the paper's text.
    assert abs(DGX_A100_BUDGET.fraction("gpus") - 0.50) < 0.03
    assert abs(DGX_A100_BUDGET.fraction("fans") - 0.25) < 0.02
    assert server.peak_power_w < 5700.0
    assert server.derating_headroom_w() >= 800.0
