"""Figure 17: POLCA vs the baseline policies at 30% oversubscription.

Paper: 1-Thresh-Low-Pri misses low-priority SLOs (no gradual capping);
1-Thresh-All breaches p99 for both tiers; No-cap matches POLCA under
standard conditions but collapses when workloads grow 5% more
power-intensive; POLCA is the most robust.
"""

from conftest import print_table

from repro.core import evaluate_slos
from repro.workloads.spec import Priority

POLICIES = ("POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap")


def reproduce_figure17(eval_cache):
    eval_cache.prewarm(
        {"policy_name": name, "power_scale": scale}
        for scale in (1.0, 1.05)
        for name in POLICIES
    )
    baseline = eval_cache.baseline()
    outcomes = {}
    for scale in (1.0, 1.05):
        for name in POLICIES:
            label = name if scale == 1.0 else f"{name}+5%"
            result = eval_cache.run(name, added_fraction=0.30,
                                    power_scale=scale)
            outcomes[label] = {
                "result": result,
                "report": evaluate_slos(result, baseline),
                "lp": result.normalized_latencies(Priority.LOW, baseline),
                "hp": result.normalized_latencies(Priority.HIGH, baseline),
            }
    return outcomes


def test_fig17_policy_comparison(benchmark, eval_cache):
    outcomes = benchmark.pedantic(
        reproduce_figure17, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [
        (label,
         f"{data['lp']['p50']:.3f}", f"{data['hp']['p50']:.3f}",
         f"{data['lp']['p99']:.3f}", f"{data['hp']['p99']:.3f}",
         f"{data['lp']['max']:.2f}", f"{data['hp']['max']:.2f}",
         "yes" if data["report"].all_met else "no")
        for label, data in outcomes.items()
    ]
    print_table("Figure 17 — policy comparison at 30% oversubscription",
                ["policy", "LP p50", "HP p50", "LP p99", "HP p99",
                 "LP max", "HP max", "SLOs met"], rows)

    # POLCA meets every SLO under standard conditions.
    assert outcomes["POLCA"]["report"].all_met
    # 1-Thresh-All hurts high-priority p99 more than POLCA does.
    assert outcomes["1-Thresh-All"]["hp"]["p99"] > \
        outcomes["POLCA"]["hp"]["p99"]
    # No-cap relies entirely on the brake; with our (larger-than-
    # production) short-term spikes it already brakes at 30%
    # oversubscription, so it trails POLCA even in the standard scenario
    # and degrades further at +5% power. POLCA stays the most robust.
    assert outcomes["No-cap"]["hp"]["p50"] >= outcomes["POLCA"]["hp"]["p50"]
    polca_blowup = outcomes["POLCA+5%"]["hp"]["max"]
    for name in ("No-cap", "1-Thresh-All", "1-Thresh-Low-Pri"):
        assert outcomes[f"{name}+5%"]["hp"]["max"] >= polca_blowup - 0.10
    benchmark.extra_info["polca_all_met"] = \
        outcomes["POLCA"]["report"].all_met
