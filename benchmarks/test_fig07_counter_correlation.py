"""Figure 7: pairwise GPU-counter correlations for prompt vs token phase.

Paper: the prompt phase is highly correlated with SM and tensor activity
and inversely correlated with memory activity; token-phase counters are
generally uncorrelated with each other.
"""

import numpy as np
from conftest import print_table

from repro.characterization import phase_correlation_matrices


def reproduce_figure7():
    return phase_correlation_matrices(samples=800, seed=0)


def _matrix_rows(names, matrix):
    rows = []
    for i, name in enumerate(names):
        rows.append((name,) + tuple(f"{matrix[i][j]:+.2f}"
                                    for j in range(len(names))))
    return rows


def test_fig07_counter_correlation(benchmark):
    matrices = benchmark.pedantic(reproduce_figure7, rounds=1, iterations=1)
    for phase in ("prompt", "token"):
        names, matrix = matrices[phase]
        short = [n[:9] for n in names]
        print_table(f"Figure 7 — {phase}-phase Pearson correlations",
                    ["counter"] + short, _matrix_rows(short, matrix))
    names, prompt = matrices["prompt"]
    power = names.index("power")
    assert prompt[power][names.index("sm_activity")] > 0.7
    assert prompt[power][names.index("tensor_core_activity")] > 0.7
    assert prompt[power][names.index("memory_utilization")] < -0.4
    _, token = matrices["token"]
    off_diagonal = token[~np.eye(len(names), dtype=bool)]
    assert np.abs(off_diagonal).max() < 0.25
    benchmark.extra_info["prompt_power_sm_corr"] = float(
        prompt[power][names.index("sm_activity")]
    )
