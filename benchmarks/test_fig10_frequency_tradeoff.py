"""Figure 10: frequency-locking peak-power vs performance reduction.

Paper: the trade-off is superlinear — up to ~20% peak power reclaimed for
<=7% performance; BLOOM loses ~5% at a 13% reduction where GPT-NeoX loses
almost nothing (10a); prompt-heavy configurations are more sensitive
(10b); <2% loss at ~100 MHz below the maximum clock (10c).
"""

import pytest
from conftest import print_table

from repro.characterization import frequency_sensitivity, frequency_tradeoff
from repro.characterization.frequency import BLOOM_VARIANTS
from repro.models.registry import INFERENCE_FIGURE_MODELS


def reproduce_figure10():
    per_model = {
        name: frequency_tradeoff(name) for name in INFERENCE_FIGURE_MODELS
    }
    bloom_variants = frequency_sensitivity()
    return per_model, bloom_variants


def _loss_at(points, target_reduction):
    return min(
        points, key=lambda p: abs(p.peak_power_reduction - target_reduction)
    ).performance_reduction


def test_fig10_frequency_tradeoff(benchmark):
    per_model, variants = benchmark.pedantic(reproduce_figure10, rounds=1,
                                             iterations=1)
    rows = []
    for name, points in per_model.items():
        for point in points:
            rows.append((
                name, f"{point.sm_clock_mhz:.0f}",
                f"{point.peak_power_reduction:.1%}",
                f"{point.performance_reduction:.1%}",
            ))
    print_table("Figure 10a — per-model frequency trade-off",
                ["model", "MHz", "peak power -", "performance -"], rows)

    variant_rows = []
    for (batch, inputs), points in zip(BLOOM_VARIANTS, variants):
        deepest = points[-1]
        variant_rows.append((
            f"b={batch} i={inputs}",
            f"{deepest.peak_power_reduction:.1%}",
            f"{deepest.performance_reduction:.1%}",
        ))
    print_table("Figure 10b — BLOOM configuration sensitivity (at 1.1 GHz)",
                ["config", "peak power -", "performance -"], variant_rows)

    # 10a: superlinear for every model.
    for points in per_model.values():
        for point in points:
            assert point.peak_power_reduction >= point.performance_reduction
    # 10a: BLOOM ~5% at 13% reduction; GPT-NeoX the least sensitive.
    assert _loss_at(per_model["BLOOM-176B"], 0.13) == pytest.approx(
        0.05, abs=0.02
    )
    assert _loss_at(per_model["GPT-NeoX-20B"], 0.13) < \
        _loss_at(per_model["BLOOM-176B"], 0.13)
    # 10b: prompt-heavy (i=8192) and batched (b=16) configs lose more.
    light = variants[0][-1].performance_reduction   # b=1 i=512
    assert variants[2][-1].performance_reduction > light  # b=1 i=8192
    assert variants[3][-1].performance_reduction > light  # b=16 i=512
    # 10c: <2% at ~100 MHz (7%) below the max clock (light config,
    # where the prompt share of latency is small).
    small = frequency_tradeoff("BLOOM-176B", clocks_mhz=[1310.0],
                               input_tokens=512)[0]
    assert small.performance_reduction < 0.02
    benchmark.extra_info["bloom_loss_at_13pct"] = _loss_at(
        per_model["BLOOM-176B"], 0.13
    )
