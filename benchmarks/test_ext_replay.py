"""Extension: production trace replay smoke benchmark.

Replays the bundled Azure-format fixture trace end to end — CSV
ingestion, token-shape classification, the sweep engine with a small
POLCA grid, and a flash-crowd variant — and times each stage. The
measurements land in ``BENCH_replay.json`` at the repo root, which CI
uploads as an artifact, so ingestion-throughput or replay-parity
regressions show up in the artifact diff rather than silently.
"""

import json
import time
from pathlib import Path

from conftest import print_table

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import EvaluationHarness, threshold_search
from repro.exec import execute_spec, PolicySpec
from repro.units import hours
from repro.workloads.replay import (
    BurstWindow,
    CsvReplaySpec,
    FlashCrowdSpec,
    TraceSource,
    read_azure_trace,
    requests_from_records,
)

FIXTURE = Path(__file__).resolve().parent.parent / (
    "tests/data/azure_llm_sample.csv"
)
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_replay.json"

COMBOS = (("80-90", PolcaThresholds(t1=0.80, t2=0.90)),)
FRACTIONS = (0.25,)


def reproduce_replay():
    report = {}

    start = time.perf_counter()
    records = read_azure_trace(FIXTURE)
    requests = requests_from_records(records)
    parse_wall = time.perf_counter() - start
    report["ingest"] = {
        "rows": len(records),
        "wall_s": round(parse_wall, 4),
        "rows_per_s": round(len(records) / parse_wall, 1),
    }

    source = TraceSource(csv=CsvReplaySpec.from_file(FIXTURE))
    crowd = TraceSource(
        csv=CsvReplaySpec.from_file(FIXTURE),
        burst=FlashCrowdSpec(
            windows=(BurstWindow(600.0, 1800.0, magnitude=3.0),), seed=1
        ),
    )
    results = {}
    for label, trace in (("replayed", source), ("flash-crowd", crowd)):
        harness = EvaluationHarness(
            n_base_servers=4, duration_s=hours(1), seed=5,
            trace_source=trace,
        )
        start = time.perf_counter()
        points = threshold_search(harness, COMBOS, FRACTIONS)
        wall = time.perf_counter() - start
        point = points[(COMBOS[0][0], FRACTIONS[0])]
        spec = harness.spec(
            PolicySpec("POLCA", COMBOS[0][1]), added_fraction=FRACTIONS[0]
        )
        # Replay parity: the engine's cached result must be bit-identical
        # to a direct serial execution of the same spec.
        direct = execute_spec(spec)
        cached = harness.engine().run_specs([spec])[0]
        parity = bool(
            (direct.power_series.values == cached.power_series.values).all()
            and direct.total_energy_j == cached.total_energy_j
        )
        results[label] = point
        report[label] = {
            "digest": spec.digest()[:16],
            "trace": trace.label,
            "sweep_wall_s": round(wall, 3),
            "serial_parity": parity,
            "power_brake_events": point.power_brake_events,
        }
        assert parity
    report["trace_sha256"] = source.csv.sha256
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report, results


def test_ext_replay(benchmark):
    report, results = benchmark.pedantic(
        reproduce_replay, rounds=1, iterations=1
    )
    rows = [
        (label,
         report[label]["trace"],
         f"{report[label]['sweep_wall_s']:.2f}s",
         str(report[label]["power_brake_events"]),
         "ok" if report[label]["serial_parity"] else "MISMATCH")
        for label in ("replayed", "flash-crowd")
    ]
    print_table(
        "Extension — Azure trace replay through the sweep engine",
        ["trace", "source", "sweep wall", "brakes", "parity"],
        rows,
    )
    assert report["ingest"]["rows"] == 219
    assert all(report[label]["serial_parity"]
               for label in ("replayed", "flash-crowd"))
    benchmark.extra_info.update({
        "rows_per_s": report["ingest"]["rows_per_s"],
        "replay_digest": report["replayed"]["digest"],
    })
