"""Extension (Section 6.7): beyond LLMs — split deployments, workload-aware
caps, and vision inference.

Three of the paper's forward-looking proposals, quantified:
* phase splitting provisions the token pool at its capped peak
  (Splitwise's premise);
* workload-aware capping reclaims more power at equal SLO impact than a
  uniform cap;
* vision inference has flat power but still responds to the frequency
  lever.
"""

from conftest import print_table

from repro.core.splitting import (
    plan_split_deployment,
    plan_unsplit_deployment,
    split_power_saving,
)
from repro.core.workload_aware import uniform_vs_aware_reclaim, workload_aware_plan
from repro.models.vision import VisionServingModel


def reproduce_beyond_llms():
    split = plan_split_deployment()
    unsplit = plan_unsplit_deployment()
    saving = split_power_saving()
    plans = workload_aware_plan()
    reclaim = uniform_vs_aware_reclaim()
    vision = VisionServingModel()
    vision_tradeoff = vision.frequency_tradeoff(1100.0)
    return split, unsplit, saving, plans, reclaim, vision_tradeoff


def test_ext_beyond_llms(benchmark):
    split, unsplit, saving, plans, reclaim, vision = benchmark.pedantic(
        reproduce_beyond_llms, rounds=1, iterations=1
    )
    print_table(
        "Extension — phase-split vs conventional deployment (BLOOM, 2 req/s)",
        ["deployment", "servers", "provisioned kW", "latency"],
        [
            ("split", f"{split.prompt_servers}P + {split.token_servers}T",
             f"{split.provisioned_power_w / 1000:.1f}",
             f"{split.latency_increase:+.1%}"),
            ("conventional", f"{unsplit.prompt_servers}",
             f"{unsplit.provisioned_power_w / 1000:.1f}", "+0.0%"),
        ],
    )
    print(f"provisioned-power saving from splitting: {saving:.1%}")

    print_table(
        "Extension — workload-aware capping plan (Table 6 mix)",
        ["workload", "deepest safe cap", "stretch", "budget"],
        [
            (name, f"{plan.cap_clock_mhz:.0f} MHz",
             f"{plan.latency_stretch:.1%}", f"{plan.slo_budget:.0%}")
            for name, plan in plans.items()
        ],
    )
    print(f"token-power reclaim: uniform {reclaim['uniform_reclaim']:.1%} "
          f"vs workload-aware {reclaim['aware_reclaim']:.1%}")
    print(f"vision workload at 1.1 GHz: power -{vision['power_reduction']:.1%} "
          f"for perf -{vision['performance_reduction']:.1%}")

    assert 0.10 < saving < 0.40
    assert reclaim["aware_reclaim"] >= reclaim["uniform_reclaim"]
    assert plans["Summarize"].cap_clock_mhz <= plans["Search"].cap_clock_mhz
    assert vision["power_reduction"] > vision["performance_reduction"]
    benchmark.extra_info["split_saving"] = saving
    benchmark.extra_info["aware_reclaim"] = reclaim["aware_reclaim"]
