"""Extension (Section 5.1): smoothing training power swings via
computation/communication overlap.

The paper suggests "overlapping the computation and communication phases"
and asynchronous techniques to tame the grid-straining training swings.
This ablation sweeps the overlap factor and reports the cluster-level
swing reduction (and the throughput side-benefit of hidden communication).
"""

from conftest import print_table

from repro.models.registry import get_model
from repro.training.smoothing import smoothing_sweep

OVERLAPS = (0.0, 0.25, 0.5, 0.75)


def reproduce_smoothing():
    return smoothing_sweep(
        get_model("GPT-NeoX-20B"), overlaps=OVERLAPS,
        n_servers=40, duration_s=120.0, seed=0,
    )


def test_ext_smoothing(benchmark):
    outcomes = benchmark.pedantic(reproduce_smoothing, rounds=1,
                                  iterations=1)
    rows = [
        (f"{o.overlap:.0%}",
         f"{o.stats.peak_utilization:.1%}",
         f"{o.stats.max_swing_2s:.1%}",
         f"{o.iteration_speedup:.3f}x")
        for o in outcomes
    ]
    print_table("Extension — comm/compute overlap vs training swings",
                ["overlap", "peak util", "max 2s swing", "throughput"],
                rows)
    swings = [o.stats.max_swing_2s for o in outcomes]
    # Swings shrink monotonically with overlap; 75% overlap at least
    # halves the 2 s swing.
    assert all(a >= b for a, b in zip(swings, swings[1:]))
    assert swings[-1] < 0.55 * swings[0]
    # Hidden communication also speeds training up.
    assert outcomes[-1].iteration_speedup > 1.05
    benchmark.extra_info["swing_at_75pct_overlap"] = swings[-1]
