"""Figure 11: server vs GPU peak power (normalized to TDP) in production.

Paper observations: (1) GPUs are ~60% of server power; (2) peak GPU power
exceeds the server GPU TDP by up to ~500 W; (3) server and GPU peaks are
highly correlated; (4) normalized GPU peak spans a smaller range than the
server peak; (5) peaks are stable because servers are heavily utilized.
"""

from conftest import print_table

from repro.analysis.correlation import pearson
from repro.server import DgxServer
from repro.server.fleet import sample_fleet_peaks


def reproduce_figure11():
    server = DgxServer()
    samples = sample_fleet_peaks(n_servers=200, seed=1)
    normalized = [s.normalized(server) for s in samples]
    return server, samples, normalized


def test_fig11_server_gpu_peak(benchmark):
    server, samples, normalized = benchmark.pedantic(
        reproduce_figure11, rounds=1, iterations=1
    )
    gpu_peaks = [s.peak_gpu_power_w for s in normalized]
    server_peaks = [s.peak_server_power_w for s in normalized]
    rows = [
        ("peak GPU power / GPU TDP",
         f"{min(gpu_peaks):.3f}", f"{max(gpu_peaks):.3f}"),
        ("peak server power / rating",
         f"{min(server_peaks):.3f}", f"{max(server_peaks):.3f}"),
    ]
    print_table("Figure 11 — fleet peak power scatter (200 servers)",
                ["series", "min", "max"], rows)
    correlation = pearson(gpu_peaks, server_peaks)
    shares = [s.mean_gpu_share for s in samples]
    excess = max(
        s.peak_gpu_power_w for s in samples
    ) - server.gpu_tdp_total_w
    print(f"corr(server peak, GPU peak) = {correlation:.3f}")
    print(f"mean GPU share of server power = {sum(shares)/len(shares):.1%}")
    print(f"max GPU peak above GPU TDP = {excess:.0f} W")

    # (1) ~60% GPU share.
    assert 0.55 < sum(shares) / len(shares) < 0.70
    # (2) GPU peak exceeds GPU TDP by up to ~500 W.
    assert 0 < excess <= 550.0
    # (3) high correlation.
    assert correlation > 0.8
    # (4) normalized server range at least as wide as the GPU range.
    assert (max(server_peaks) - min(server_peaks)) > \
        0.8 * (max(gpu_peaks) - min(gpu_peaks))
    benchmark.extra_info["correlation"] = correlation
