"""Figure 13: the T1-T2 threshold space search.

Paper: 75-85% and 80-89% support ~35% more servers without brakes while
85-95% manages only 32.5%; 75-85% over-punishes low priority by capping
too early; 80-89% at 30% added servers is the selected operating point.
"""

from conftest import print_table

from repro.core.policy import PolcaThresholds
from repro.core.sweeps import threshold_search
from repro.workloads.spec import Priority

COMBOS = (
    ("75-85", PolcaThresholds(t1=0.75, t2=0.85)),
    ("80-89", PolcaThresholds(t1=0.80, t2=0.89)),
    ("85-95", PolcaThresholds(t1=0.85, t2=0.95)),
)
FRACTIONS = (0.10, 0.20, 0.30, 0.40)


def reproduce_figure13(eval_cache):
    points = threshold_search(eval_cache.harness, COMBOS, FRACTIONS)
    return {
        key: {
            "lp_p50": point.normalized_p50[Priority.LOW],
            "lp_p99": point.normalized_p99[Priority.LOW],
            "hp_p50": point.normalized_p50[Priority.HIGH],
            "hp_p99": point.normalized_p99[Priority.HIGH],
            "brakes": point.power_brake_events,
        }
        for key, point in points.items()
    }


def test_fig13_threshold_search(benchmark, eval_cache):
    results = benchmark.pedantic(
        reproduce_figure13, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [
        (label, f"{int(fraction * 100)}%",
         f"{data['lp_p50']:.3f}", f"{data['lp_p99']:.3f}",
         f"{data['hp_p50']:.3f}", f"{data['hp_p99']:.3f}", data["brakes"])
        for (label, fraction), data in results.items()
    ]
    print_table("Figure 13 — threshold space search",
                ["T1-T2", "added", "LP p50", "LP p99", "HP p50", "HP p99",
                 "brakes"], rows)

    # The selected configuration (80-89) carries 30% more servers with
    # zero brakes and minimal high-priority impact.
    selected = results[("80-89", 0.30)]
    assert selected["brakes"] == 0
    assert selected["hp_p50"] < 1.01
    # The conservative 75-85 combo caps low priority much earlier: its
    # low-priority latency at 30% is at least as bad as 80-89's.
    assert results[("75-85", 0.30)]["lp_p50"] >= selected["lp_p50"] - 0.005
    # Every combo degrades (or brakes) as servers keep being added.
    for label, _ in COMBOS:
        assert (
            results[(label, 0.40)]["brakes"] >= results[(label, 0.30)]["brakes"]
        )
    # The cliff exists: at 40% added servers, brakes appear.
    assert any(results[(label, 0.40)]["brakes"] > 0 for label, _ in COMBOS)
    benchmark.extra_info["selected_lp_p50_at_30pct"] = selected["lp_p50"]
