"""Figure 15: POLCA parameter sweeps.

(a) the T1 capping frequency for low-priority servers: below 1275 MHz the
low-priority SLO can no longer be met, so the A100 base clock is chosen;
(b) the low-/high-priority mix: shrinking the low-priority pool leaves
POLCA less reclaimable power, eventually hurting high-priority p99.
"""

from conftest import print_table

from repro.core.policy import PolcaThresholds
from repro.workloads.spec import Priority, SLO_TARGETS

T1_CLOCKS = (1335.0, 1275.0, 1215.0, 1155.0)
LP_FRACTIONS = (0.75, 0.50, 0.25)


def reproduce_figure15(eval_cache):
    eval_cache.prewarm(
        [
            {"thresholds": PolcaThresholds(lp_t1_clock_mhz=clock)}
            for clock in T1_CLOCKS
        ]
        + [{"low_priority_fraction": fraction} for fraction in LP_FRACTIONS]
    )
    baseline = eval_cache.baseline()
    clock_sweep = {}
    for clock in T1_CLOCKS:
        thresholds = PolcaThresholds(lp_t1_clock_mhz=clock)
        result = eval_cache.run("POLCA", added_fraction=0.30,
                                thresholds=thresholds)
        clock_sweep[clock] = result.normalized_latencies(
            Priority.LOW, baseline
        )
    split_sweep = {}
    for fraction in LP_FRACTIONS:
        result = eval_cache.run("POLCA", added_fraction=0.30,
                                low_priority_fraction=fraction)
        split_sweep[fraction] = {
            Priority.LOW: result.normalized_latencies(
                Priority.LOW, baseline),
            Priority.HIGH: result.normalized_latencies(
                Priority.HIGH, baseline),
            "brakes": result.power_brake_events,
        }
    return clock_sweep, split_sweep


def test_fig15_parameter_sweeps(benchmark, eval_cache):
    clock_sweep, split_sweep = benchmark.pedantic(
        reproduce_figure15, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [
        (f"{clock:.0f} MHz", f"{latencies['p50']:.3f}",
         f"{latencies['p99']:.3f}")
        for clock, latencies in clock_sweep.items()
    ]
    print_table("Figure 15a — T1 capping frequency (low-priority latency)",
                ["T1 clock", "LP p50", "LP p99"], rows)
    rows = [
        (f"{int(fraction * 100)}% LP",
         f"{data[Priority.LOW]['p50']:.3f}",
         f"{data[Priority.HIGH]['p99']:.3f}", data["brakes"])
        for fraction, data in split_sweep.items()
    ]
    print_table("Figure 15b — low-priority pool size",
                ["split", "LP p50", "HP p99", "brakes"], rows)

    # (a) Deeper T1 clocks monotonically worsen LP latency; the base
    # clock (1275 MHz) keeps LP p50 within its SLO budget.
    p50s = [clock_sweep[c]["p50"] for c in T1_CLOCKS]
    assert all(a <= b + 0.02 for a, b in zip(p50s, p50s[1:]))
    lp_budget = 1.0 + SLO_TARGETS[Priority.LOW].p50_impact
    assert clock_sweep[1275.0]["p50"] <= lp_budget + 0.01
    # (b) Shrinking the LP pool pushes the pain toward high priority.
    assert split_sweep[0.25][Priority.HIGH]["p99"] >= \
        split_sweep[0.75][Priority.HIGH]["p99"] - 0.02
    benchmark.extra_info["lp_p50_at_base_clock"] = clock_sweep[1275.0]["p50"]
