"""Figure 8: power and latency sensitivity to input/batch/output sizes.

Paper (Insight 5): peak and mean power depend primarily on input and
batch size (prompt-side knobs) while latency depends primarily on output
size; output size leaves power untouched and stretches latency linearly.
"""

import pytest
from conftest import print_table

from repro.characterization import config_sweep
from repro.models.registry import INFERENCE_FIGURE_MODELS


def reproduce_figure8():
    data = {}
    for knob in ("input", "batch", "output"):
        for name in INFERENCE_FIGURE_MODELS:
            data[(name, knob)] = config_sweep(name, knob)
    return data


def test_fig08_config_sweeps(benchmark):
    data = benchmark.pedantic(reproduce_figure8, rounds=1, iterations=1)
    for knob, subfig in (("input", "8a/8b"), ("batch", "8c/8d"),
                         ("output", "8e/8f")):
        rows = []
        for name in INFERENCE_FIGURE_MODELS:
            for point in data[(name, knob)]:
                rows.append((
                    name, point.value,
                    f"{point.peak_power_ratio:.2f}",
                    f"{point.mean_power_ratio:.2f}",
                    f"{point.latency_seconds:.1f}",
                ))
        print_table(
            f"Figure {subfig} — {knob}-size sweep (power/TDP, latency s)",
            ["model", knob, "peak", "mean", "latency"],
            rows,
        )

    bloom_input = data[("BLOOM-176B", "input")]
    bloom_batch = data[("BLOOM-176B", "batch")]
    bloom_output = data[("BLOOM-176B", "output")]
    # 8a: peak rises drastically with input size.
    assert bloom_input[-1].peak_power_ratio - \
        bloom_input[0].peak_power_ratio > 0.25
    # 8b: latency flat until >4096 input tokens.
    assert bloom_input[3].latency_seconds / \
        bloom_input[0].latency_seconds < 1.3
    # 8c: batch raises peak and (gradually) mean.
    assert bloom_batch[-1].mean_power_ratio > bloom_batch[0].mean_power_ratio
    # 8e: output size does not change power.
    assert bloom_output[-1].peak_power_ratio == pytest.approx(
        bloom_output[0].peak_power_ratio, abs=0.01
    )
    # 8f: output size stretches latency linearly.
    ratio = (bloom_output[-1].latency_seconds
             / bloom_output[2].latency_seconds)
    assert ratio == pytest.approx(4096 / 512, rel=0.3)
    # Cross-model: BLOOM draws the most at equal configuration.
    for name in INFERENCE_FIGURE_MODELS:
        assert data[("BLOOM-176B", "input")][-1].peak_power_ratio >= \
            data[(name, "input")][-1].peak_power_ratio - 1e-9
    benchmark.extra_info["bloom_peak_at_8192"] = \
        bloom_input[-1].peak_power_ratio
