"""Figure 18: number of power-brake events per policy.

Paper: POLCA incurs zero brakes under the standard workload and the
fewest when workloads become 5% more power-intensive; No-cap relies on
the brake entirely and racks up orders of magnitude more events.
"""

from conftest import print_table

POLICIES = ("POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap")


def reproduce_figure18(eval_cache):
    eval_cache.prewarm(
        {"policy_name": name, "power_scale": scale}
        for scale in (1.0, 1.05)
        for name in POLICIES
    )
    counts = {}
    for scale in (1.0, 1.05):
        for name in POLICIES:
            label = name if scale == 1.0 else f"{name}+5%"
            result = eval_cache.run(name, added_fraction=0.30,
                                    power_scale=scale)
            counts[label] = result.power_brake_events
    return counts


def test_fig18_power_brakes(benchmark, eval_cache):
    counts = benchmark.pedantic(
        reproduce_figure18, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [(label, count) for label, count in counts.items()]
    print_table("Figure 18 — power brake events (30% oversubscription)",
                ["policy", "brake events"], rows)
    # POLCA: zero brakes in the standard scenario.
    assert counts["POLCA"] == 0
    # POLCA: the fewest brakes when workloads get 5% hotter.
    polca_hot = counts["POLCA+5%"]
    for name in ("1-Thresh-Low-Pri", "1-Thresh-All", "No-cap"):
        assert counts[f"{name}+5%"] >= polca_hot
    # No-cap, unprotected, brakes the most in the hot scenario.
    assert counts["No-cap+5%"] == max(
        counts[f"{name}+5%"] for name in POLICIES
    )
    benchmark.extra_info.update(counts)
