"""Figure 18: number of power-brake events per policy.

Paper: POLCA incurs zero brakes under the standard workload and the
fewest when workloads become 5% more power-intensive; No-cap relies on
the brake entirely and racks up orders of magnitude more events.

Alongside the figure, this module records a short Figure 18-style run —
a 2 h window at the daily peak, No-cap, +5% power, 30% oversubscription,
the scenario where the brake does all the work — to ``TRACE_fig18.jsonl``
at the repo root, which CI uploads as an artifact; the trace is
cross-checked against the run's own ``SimulationResult`` before it is
accepted. The run carries the live alert engine (teed with the JSONL
sink), must produce at least one brake-storm incident — this *is* the
brake-storm scenario — and its metrics + incident snapshot is exported
as an OpenMetrics textfile, ``METRICS_fig18.prom``, uploaded next to
the trace. The same trace is then attributed
(:func:`repro.obs.attribute_run`): the brake intervals must charge at
least one second of stall to at least one request, the decomposition
must conserve exactly, and the span trees are exported as
``PERFETTO_fig18.json`` (Chrome trace-event format, openable in
Perfetto), the third uploaded artifact.
"""

from pathlib import Path

from conftest import print_table
from test_fig13_threshold_search import COMBOS, FRACTIONS

from repro import NoCapPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.sweeps import threshold_search
from repro.obs import (
    AlertEngine,
    Dashboard,
    JsonlRecorder,
    TeeRecorder,
    attribute_run,
    cross_check,
    incident_table,
    load_events,
    read_ledger,
    summarize_trace,
    top_victims,
    write_chrome_trace,
    write_textfile,
)
from repro.units import hours
from repro.workloads.tracegen import (
    ProductionTraceModel,
    SyntheticTraceGenerator,
)

POLICIES = ("POLCA", "1-Thresh-Low-Pri", "1-Thresh-All", "No-cap")

TRACE_PATH = Path(__file__).resolve().parent.parent / "TRACE_fig18.jsonl"
METRICS_PATH = Path(__file__).resolve().parent.parent / "METRICS_fig18.prom"
PERFETTO_PATH = Path(__file__).resolve().parent.parent / "PERFETTO_fig18.json"
REPORT_PATH = Path(__file__).resolve().parent.parent / "REPORT_fig18.html"
TRACE_HOURS = 2.0


def reproduce_figure18(eval_cache):
    eval_cache.prewarm(
        {"policy_name": name, "power_scale": scale}
        for scale in (1.0, 1.05)
        for name in POLICIES
    )
    counts = {}
    for scale in (1.0, 1.05):
        for name in POLICIES:
            label = name if scale == 1.0 else f"{name}+5%"
            result = eval_cache.run(name, added_fraction=0.30,
                                    power_scale=scale)
            counts[label] = result.power_brake_events
    return counts


def test_fig18_power_brakes(benchmark, eval_cache):
    counts = benchmark.pedantic(
        reproduce_figure18, args=(eval_cache,), rounds=1, iterations=1
    )
    rows = [(label, count) for label, count in counts.items()]
    print_table("Figure 18 — power brake events (30% oversubscription)",
                ["policy", "brake events"], rows)
    # POLCA: zero brakes in the standard scenario.
    assert counts["POLCA"] == 0
    # POLCA: the fewest brakes when workloads get 5% hotter.
    polca_hot = counts["POLCA+5%"]
    for name in ("1-Thresh-Low-Pri", "1-Thresh-All", "No-cap"):
        assert counts[f"{name}+5%"] >= polca_hot
    # No-cap, unprotected, brakes the most in the hot scenario.
    assert counts["No-cap+5%"] == max(
        counts[f"{name}+5%"] for name in POLICIES
    )
    benchmark.extra_info.update(counts)


def test_fig18_trace_artifact(benchmark):
    """Record the brake-heavy Figure 18 scenario to TRACE_fig18.jsonl.

    A 2 h window of the production pattern centered on the daily peak
    (``peak_hour=0.5``), replayed against No-cap at +5% power and 30%
    oversubscription — the corner of Figure 18 where the brake does all
    the work — streamed through a ``JsonlRecorder`` teed with the live
    ``AlertEngine``. The artifact is only kept if ``cross_check``
    re-derives every result counter from it, the recorded run must be
    bit-identical to an unrecorded one, and the scenario must trip at
    least one brake-storm incident, exported (with the run's metrics)
    as the ``METRICS_fig18.prom`` OpenMetrics artifact.
    """
    n_base, added_fraction = 40, 0.30
    deployed = int(round(n_base * (1 + added_fraction)))

    def record_trace():
        utilization = ProductionTraceModel(peak_hour=0.5, seed=1).generate(
            duration_s=hours(TRACE_HOURS)
        )
        synthetic = SyntheticTraceGenerator(
            n_servers=deployed, seed=1
        ).generate(utilization)
        synthetic.validate()
        config = ClusterConfig(
            n_base_servers=n_base, added_fraction=added_fraction,
            power_scale=1.05, seed=1,
        )
        alerts = AlertEngine()
        with JsonlRecorder(str(TRACE_PATH)) as sink:
            recorder = TeeRecorder([sink, alerts])
            traced = ClusterSimulator(config, NoCapPolicy(), recorder).run(
                synthetic.requests, hours(TRACE_HOURS)
            )
        bare = ClusterSimulator(config, NoCapPolicy()).run(
            synthetic.requests, hours(TRACE_HOURS)
        )
        return traced, bare

    traced, bare = benchmark.pedantic(record_trace, rounds=1, iterations=1)
    assert traced.power_brake_events > 0
    cross_check(str(TRACE_PATH), traced).require_ok()
    assert traced.power_brake_events == bare.power_brake_events
    assert traced.total_energy_j == bare.total_energy_j
    assert traced.total_served == bare.total_served
    # The brake-storm rule must fire on the brake-storm scenario, and
    # the incidents must have landed in the result's snapshot.
    incidents = traced.observability["incidents"]
    storms = [i for i in incidents if i["rule"] == "brake-storm"]
    assert storms, f"no brake-storm incident in {incidents!r}"
    metrics_text = write_textfile(
        str(METRICS_PATH), traced.observability,
        labels={"figure": "18", "scenario": "nocap_hot_30"},
    )
    assert metrics_text.endswith("# EOF\n")
    assert "repro_incidents_total" in metrics_text
    # Causal attribution of the same trace: the brake storm must be
    # *visible* as per-request stall seconds, conservation must be
    # exact, and the span trees export as a valid Perfetto trace.
    report = attribute_run(str(TRACE_PATH))
    assert report.requests, "no attributable requests in the trace"
    assert not report.conservation_violations
    assert report.unfinished == 0
    stalled = [
        r for r in report.requests
        if r.components_s["brake_stall"] >= 1.0
    ]
    assert stalled, "brake storm attributed <1 s stall to every request"
    perfetto = write_chrome_trace(str(PERFETTO_PATH), str(TRACE_PATH))
    assert perfetto["traceEvents"], "empty Perfetto export"
    print(f"\n=== Figure 18 trace artifact — {TRACE_PATH.name} "
          f"({TRACE_HOURS:.0f} h No-cap+5% at 30% oversubscription) ===")
    for line in summarize_trace(str(TRACE_PATH)):
        print(f"  {line}")
    print(f"\n=== Live incidents — exported to {METRICS_PATH.name} ===")
    for line in incident_table(incidents):
        print(f"  {line}")
    totals = report.totals_s()
    print(f"\n=== Causal attribution — exported to {PERFETTO_PATH.name} "
          f"({len(perfetto['traceEvents'])} trace events) ===")
    print(f"  {len(stalled)} of {len(report.requests)} served requests "
          f"stalled >= 1 s by the brake; "
          f"brake total {totals['brake_stall']:.1f} s, "
          f"excess energy {report.total_excess_energy_j:.0f} J")
    for victim in top_victims(report, 5):
        print(f"  r{victim.request_id:<6} "
              f"[{victim.priority}/{victim.workload}] "
              f"+{victim.excess_s:8.3f} s excess")


def test_fig18_mission_control_report(benchmark, eval_cache):
    """Render the mission-control dashboard to REPORT_fig18.html.

    One static, dependency-free HTML artifact for the whole benchmark
    session: the Figure 13 sweep curves (recalled from the shared memo
    cache — the grid was already simulated by the earlier benchmarks),
    the Figure 18 brake-storm timeline, the incidents the alert engine
    re-derives from the stored trace, the attribution top victims, the
    kernel-timer profile of a short instrumented run, and the session
    ledger's cache-savings and history panels. Rendering must be
    byte-identical across repeated renders of the same inputs.
    """
    from conftest import LEDGER_PATH

    from repro.exec.profile import profile_kernels

    def build_report():
        points = threshold_search(eval_cache.harness, COMBOS, FRACTIONS)
        dash = Dashboard(
            title="POLCA mission control",
            subtitle="Figure 13 threshold sweep + Figure 18 "
                     "brake-storm scenario",
        )
        dash.add_sweep_panel(points)
        events = (
            load_events(str(TRACE_PATH)) if TRACE_PATH.exists() else []
        )
        if events:
            dash.add_timeline_panel(events=events)
            incidents = AlertEngine().replay(events).incidents
            dash.add_incident_panel([i.to_dict() for i in incidents])
            attribution = attribute_run(events)
            if attribution.requests:
                dash.add_victims_panel(attribution)
        _, stats = profile_kernels(_short_kernel_spec())
        dash.add_kernel_panel(stats)
        entries = (
            read_ledger(str(LEDGER_PATH)) if LEDGER_PATH.exists() else []
        )
        dash.add_savings_panel(entries)
        dash.add_ledger_panel(entries)
        return dash

    dash = benchmark.pedantic(build_report, rounds=1, iterations=1)
    html = dash.render()
    assert html == dash.render(), "dashboard render is not deterministic"
    REPORT_PATH.write_text(html, encoding="utf-8")
    assert "Threshold sweep" in html
    assert "<svg" in html
    print(f"\n=== Mission control — {REPORT_PATH.name} "
          f"({len(html)} bytes, {html.count('<section>')} panels) ===")


def _short_kernel_spec():
    """A 2 h baseline spec for the kernel-timer panel (cheap to run)."""
    from repro.core.sweeps import EvaluationHarness

    return EvaluationHarness(duration_s=hours(2.0)).baseline_spec()
