"""Table 6: workload distribution and SLO compliance under POLCA.

Regenerates the workload mix and checks the right-hand SLO columns
against the POLCA run at 30% oversubscription: HP p50 <1%, HP p99 <5%,
LP p50 <5%, LP p99 <50%, zero power brakes.
"""

from conftest import print_table

from repro.core import evaluate_slos
from repro.workloads.spec import Priority, SLO_TARGETS, TABLE6_MIX


def reproduce_table6(eval_cache):
    baseline = eval_cache.baseline()
    polca = eval_cache.run("POLCA", added_fraction=0.30)
    return evaluate_slos(polca, baseline), polca


def test_tab06_workload_slos(benchmark, eval_cache):
    report, polca = benchmark.pedantic(
        reproduce_table6, args=(eval_cache,), rounds=1, iterations=1
    )
    mix_rows = [
        (w.name, f"{w.prompt_range[0]}-{w.prompt_range[1]}",
         f"{w.output_range[0]}-{w.output_range[1]}",
         f"{w.share:.0%}",
         {0.0: "Low", 1.0: "High", 0.5: "50:50"}[w.high_priority_probability])
        for w in TABLE6_MIX
    ]
    print_table("Table 6 — workload distribution",
                ["workload", "prompt size", "output size", "ratio",
                 "priority"], mix_rows)
    slo_rows = []
    for priority in Priority:
        target = SLO_TARGETS[priority]
        slo_rows.append((
            priority.value,
            f"{report.p50_impact[priority]:+.1%} (<= {target.p50_impact:.0%})",
            f"{report.p99_impact[priority]:+.1%} (<= {target.p99_impact:.0%})",
            "MET" if report.meets(priority) else "VIOLATED",
        ))
    slo_rows.append((
        "power brakes", f"{report.power_brake_events} (== 0)", "",
        "MET" if report.brakes_ok else "VIOLATED",
    ))
    print_table("Table 6 — SLO compliance at 30% oversubscription",
                ["tier", "p50 impact", "p99 impact", "verdict"], slo_rows)
    assert report.all_met
    assert polca.power_brake_events == 0
    benchmark.extra_info["hp_p50_impact"] = report.p50_impact[Priority.HIGH]
    benchmark.extra_info["lp_p50_impact"] = report.p50_impact[Priority.LOW]
