"""Extension (Section 5.2): phase-aware power management ablation.

The paper proposes "using lower frequencies during the token phase" as a
future optimization. This ablation quantifies it across the model zoo:
energy saved, latency given up, and the contrast with whole-request
locking (which is what the OOB path can do).
"""

from conftest import print_table

from repro.core.phase_aware import compare_with_full_lock, phase_aware_outcome
from repro.models.registry import INFERENCE_FIGURE_MODELS

TOKEN_CLOCKS = (1275.0, 1110.0)


def reproduce_phase_aware():
    outcomes = {
        (name, clock): phase_aware_outcome(name, clock)
        for name in INFERENCE_FIGURE_MODELS
        for clock in TOKEN_CLOCKS
    }
    contrast = compare_with_full_lock("BLOOM-176B", 1110.0)
    return outcomes, contrast


def test_ext_phase_aware(benchmark):
    outcomes, contrast = benchmark.pedantic(reproduce_phase_aware,
                                            rounds=1, iterations=1)
    rows = [
        (name, f"{clock:.0f}",
         f"{outcome.energy_saving:.1%}",
         f"{outcome.mean_power_saving:.1%}",
         f"{outcome.latency_increase:+.1%}",
         f"{outcome.efficiency_gain:.1f}x")
        for (name, clock), outcome in outcomes.items()
    ]
    print_table("Extension — token-phase-only frequency locking",
                ["model", "token MHz", "energy -", "mean power -",
                 "latency", "energy/latency"], rows)
    print("BLOOM @1110 MHz, phase-aware vs whole-request lock:")
    for key, value in contrast.items():
        print(f"  {key}: {value:+.1%}")
    # Every model saves energy at modest latency cost.
    for outcome in outcomes.values():
        assert outcome.energy_saving > 0.0
        assert outcome.latency_increase < 0.10
        assert outcome.efficiency_gain > 1.0
    # Phase-aware beats full lock on latency but reclaims no peak power.
    assert contrast["phase_aware_latency_increase"] < \
        contrast["full_lock_latency_increase"]
    assert contrast["full_lock_peak_reduction"] > 0.15
    benchmark.extra_info["bloom_energy_saving"] = \
        outcomes[("BLOOM-176B", 1110.0)].energy_saving
