"""repro — Characterizing Power Management Opportunities for LLMs in the Cloud.

A full reproduction of Patel et al., ASPLOS 2024: simulated substrates for
GPU power/DVFS behaviour, LLM roofline performance, DGX servers, cluster
telemetry and OOB control, training- and inference-cluster power patterns —
and POLCA, the dual-threshold power-oversubscription framework for LLM
inference clusters, evaluated with a discrete-event cluster simulator.

Quickstart::

    from repro import EvaluationHarness, DualThresholdPolicy
    from repro.units import hours

    harness = EvaluationHarness(duration_s=hours(6))
    baseline = harness.baseline()
    result = harness.run(DualThresholdPolicy(), added_fraction=0.30)
    print(result.power_brake_events)          # 0
    print(result.normalized_latencies(...))   # SLO-compliant

Subpackages: :mod:`repro.gpu`, :mod:`repro.models`, :mod:`repro.server`,
:mod:`repro.telemetry`, :mod:`repro.control`, :mod:`repro.datacenter`,
:mod:`repro.training`, :mod:`repro.workloads`, :mod:`repro.cluster`,
:mod:`repro.core` (POLCA), :mod:`repro.faults` (fault injection),
:mod:`repro.exec` (parallel sweep execution + run memoization),
:mod:`repro.obs` (trace recording, metrics, trace-vs-result
cross-checking), :mod:`repro.powerfail` (power-delivery fault domains:
breaker-trip modeling, cascading failure, emergency shedding, staged
recovery), :mod:`repro.characterization`, :mod:`repro.analysis`.
"""

from repro.errors import (
    ActuationError,
    CapacityError,
    ConfigurationError,
    FrequencyError,
    ModelNotFoundError,
    PowerCapError,
    ReproError,
    SimulationError,
    TelemetryError,
    TraceError,
)
from repro.gpu import A100_40GB, A100_80GB, H100_80GB, GpuSpec, SimulatedGpu
from repro.models import (
    InferenceRequest,
    LlmSpec,
    MODEL_ZOO,
    RooflineLatencyModel,
    get_model,
)
from repro.server import DgxServer
from repro.cluster import ClusterConfig, ClusterSimulator, SimulationResult
from repro.core import (
    DualThresholdPolicy,
    EvaluationHarness,
    NoCapPolicy,
    POLCA_DEFAULTS,
    PolcaThresholds,
    SingleThresholdAllPolicy,
    SingleThresholdLowPriPolicy,
    UnmanagedPolicy,
    added_servers_sweep,
    compare_policies,
    evaluate_slos,
    select_thresholds,
    threshold_search,
)
from repro.exec import (
    PolicySpec,
    RunCache,
    RunSpec,
    SweepEngine,
    default_workers,
)
from repro.faults import (
    FaultPlan,
    ReliabilityConfig,
    RobustnessReport,
    ServerChurnEvent,
)
from repro.obs import (
    AlertEngine,
    Incident,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    StreamMonitor,
    TeeRecorder,
    TraceRecorder,
    cross_check,
    default_rules,
    diff_traces,
    render_openmetrics,
    summarize_trace,
)
from repro.powerfail import (
    EmergencyConfig,
    PowerFailReport,
    ProtectionSpec,
    TripCurve,
)
from repro.workloads import (
    Priority,
    ProductionTraceModel,
    SyntheticTraceGenerator,
    TABLE6_MIX,
)

__version__ = "1.0.0"

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "ActuationError",
    "AlertEngine",
    "CapacityError",
    "ClusterConfig",
    "ClusterSimulator",
    "ConfigurationError",
    "DgxServer",
    "DualThresholdPolicy",
    "EmergencyConfig",
    "EvaluationHarness",
    "FaultPlan",
    "FrequencyError",
    "GpuSpec",
    "H100_80GB",
    "Incident",
    "InferenceRequest",
    "JsonlRecorder",
    "LlmSpec",
    "MODEL_ZOO",
    "MemoryRecorder",
    "ModelNotFoundError",
    "NoCapPolicy",
    "NullRecorder",
    "POLCA_DEFAULTS",
    "PolcaThresholds",
    "PolicySpec",
    "PowerCapError",
    "PowerFailReport",
    "ProtectionSpec",
    "Priority",
    "ProductionTraceModel",
    "ReliabilityConfig",
    "ReproError",
    "RobustnessReport",
    "RooflineLatencyModel",
    "RunCache",
    "RunSpec",
    "SweepEngine",
    "ServerChurnEvent",
    "SimulatedGpu",
    "SimulationError",
    "SimulationResult",
    "SingleThresholdAllPolicy",
    "SingleThresholdLowPriPolicy",
    "StreamMonitor",
    "SyntheticTraceGenerator",
    "TABLE6_MIX",
    "TripCurve",
    "TeeRecorder",
    "TelemetryError",
    "TraceError",
    "TraceRecorder",
    "UnmanagedPolicy",
    "added_servers_sweep",
    "compare_policies",
    "cross_check",
    "default_rules",
    "default_workers",
    "diff_traces",
    "evaluate_slos",
    "get_model",
    "render_openmetrics",
    "select_thresholds",
    "summarize_trace",
    "threshold_search",
    "__version__",
]
