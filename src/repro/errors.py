"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Subclasses communicate *which subsystem* rejected the
operation, mirroring the paper's split between device modelling, telemetry,
control actuation, and cluster simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ModelNotFoundError(ConfigurationError):
    """A model name was requested that is not in the registry (Table 3)."""


class FrequencyError(ConfigurationError):
    """A GPU clock frequency outside the supported range was requested."""


class PowerCapError(ConfigurationError):
    """A power cap outside the device's configurable range was requested."""

class CapacityError(ReproError):
    """A request exceeded the capacity of a simulated resource."""


class ActuationError(ReproError):
    """An out-of-band control action failed to execute.

    The paper (Section 3.3) notes that OOB GPU management interfaces "are
    unreliable and may sometimes fail without signaling completion or
    errors"; this exception models the *detected* failure case.
    """


class TelemetryError(ReproError):
    """A telemetry interface could not produce a sample."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class TraceError(ReproError):
    """A power/request trace was malformed or failed validation."""
