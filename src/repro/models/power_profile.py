"""Mapping from inference configuration to GPU activity per phase.

The GPU power model (:mod:`repro.gpu.power`) takes a scalar *activity*;
this module computes that activity from the workload shape, per phase,
using the per-model calibration constants. The resulting behaviour matches
Figure 8:

* prompt activity rises with the total prompt tokens (input x batch) and
  saturates — peak power "drastically increases" with input size (8a) and
  batch size (8c) while the asymptote differs per model;
* token activity rises only gently with batch size (8c's mean power) and
  is independent of input/output sizes (8a, 8e);
* output size affects durations only, never activity (8e).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.models.datatypes import DType
from repro.models.registry import LlmSpec

#: Token-phase activity never exceeds this — token sampling cannot drive
#: the chip to its transient peak (Insight 4).
TOKEN_ACTIVITY_CEILING = 0.75


@dataclass(frozen=True)
class PhasePowerProfile:
    """Computes per-phase GPU activity for a model and configuration.

    Attributes:
        model: The LLM served.
        dtype: Weight datatype; defaults to the model's default. FP16's
            optimized tensor-core kernels add a small activity bonus
            (Section 4.2, "Impact of datatypes").
    """

    model: LlmSpec
    dtype: Optional[DType] = None

    @property
    def effective_dtype(self) -> DType:
        """The datatype in use."""
        return self.dtype if self.dtype is not None else self.model.default_dtype

    def prompt_activity(self, input_tokens: int, batch_size: int = 1) -> float:
        """Activity during prompt processing, in ``[0, 1]``.

        Saturating in the total number of prompt tokens processed in
        parallel (``input_tokens * batch_size``).
        """
        self._check(input_tokens, batch_size)
        calibration = self.model.calibration
        tokens = float(input_tokens * batch_size)
        span = calibration.prompt_activity_max - calibration.prompt_activity_min
        saturation = 1.0 - math.exp(-tokens / calibration.prompt_saturation_tokens)
        activity = calibration.prompt_activity_min + span * saturation
        activity += self.effective_dtype.peak_activity_bonus
        return min(1.0, max(0.0, activity))

    def token_activity(self, batch_size: int = 1) -> float:
        """Activity during token sampling, in ``[0, 1]``.

        Grows logarithmically with batch size (more sequences decoded per
        forward pass raise compute occupancy slightly) and is capped well
        below the transient peak.
        """
        self._check(1, batch_size)
        calibration = self.model.calibration
        activity = (
            calibration.token_activity_base
            + calibration.token_activity_batch_slope * math.log2(batch_size)
        )
        activity += 0.5 * self.effective_dtype.peak_activity_bonus
        return min(TOKEN_ACTIVITY_CEILING, max(0.0, activity))

    def idle_activity(self) -> float:
        """Activity between requests (zero: the GPU draws idle power)."""
        return 0.0

    @staticmethod
    def _check(input_tokens: int, batch_size: int) -> None:
        if input_tokens <= 0:
            raise ConfigurationError("input_tokens must be positive")
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
