"""LLM substrate: model zoo, roofline performance, and phase power profiles.

The paper characterizes seven open LLMs (Table 3) spanning encoder,
decoder, and encoder-decoder transformers on DGX-A100 servers. We replace
the real frameworks (DeepSpeed-Inference, vLLM, HF Transformers) with an
analytical substrate:

* :mod:`repro.models.architecture` — transformer FLOP/byte arithmetic;
* :mod:`repro.models.registry` — the Table 3 zoo with per-model GPU counts
  and the calibration constants tied to the paper's figures;
* :mod:`repro.models.performance` — a roofline latency model separating
  the compute-bound prompt phase from the bandwidth-bound token phase;
* :mod:`repro.models.power_profile` — per-phase activity levels feeding
  the GPU power model;
* :mod:`repro.models.inference` — request descriptions and phase
  timelines consumed by the characterization and the cluster simulator.
"""

from repro.models.datatypes import DType, FP32, FP16, INT8, FP8
from repro.models.architecture import TransformerArchitecture, ArchitectureKind
from repro.models.registry import (
    LlmSpec,
    MODEL_ZOO,
    get_model,
    inference_models,
    training_models,
)
from repro.models.performance import RooflineLatencyModel, PhaseLatency
from repro.models.power_profile import PhasePowerProfile
from repro.models.inference import InferenceRequest, PhaseSegment, request_timeline
from repro.models.vision import VisionServingModel

__all__ = [
    "ArchitectureKind",
    "DType",
    "FP16",
    "FP32",
    "FP8",
    "INT8",
    "InferenceRequest",
    "LlmSpec",
    "MODEL_ZOO",
    "PhaseLatency",
    "PhasePowerProfile",
    "PhaseSegment",
    "RooflineLatencyModel",
    "TransformerArchitecture",
    "VisionServingModel",
    "get_model",
    "inference_models",
    "request_timeline",
    "training_models",
]
