"""The model zoo from Table 3, with per-model calibration constants.

Table 3 of the paper lists the characterized workloads: RoBERTa (encoder),
Llama2-13B/70B, GPT-NeoX-20B, OPT-30B, BLOOM-176B (decoders), and
Flan-T5 XXL (encoder-decoder), along with the number of A100-80GB GPUs each
uses for inference. Models marked with ``*`` in the table (Llama2, OPT,
BLOOM) were characterized for inference only.

Each :class:`LlmSpec` additionally carries the calibration constants of the
power/performance substrate. These are the knobs fitted so that the
reproduction matches the published *shapes*:

* prompt/token activity ranges reproduce the Figure 6/8 power levels
  (prompt spikes at or above TDP for large models, token plateaus at
  60-75% of TDP);
* ``token_clock_sensitivity`` reproduces Figure 10a's per-model ordering
  (GPT-NeoX loses ~0% performance at a 13% peak-power reduction while
  BLOOM loses ~5%);
* the training profile reproduces Figure 4's iteration shapes (RoBERTa
  troughs at ~75% of TDP, GPT-NeoX at ~50%, Flan-T5 down to idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ModelNotFoundError
from repro.models.architecture import ArchitectureKind, TransformerArchitecture
from repro.models.datatypes import DType, FP16
from repro.units import billions, millions


@dataclass(frozen=True)
class TrainingProfile:
    """Shape of one training (fine-tuning) iteration for Figure 4.

    Attributes:
        iteration_seconds: Duration of one iteration at the max clock.
        peak_activity: Activity during the compute-heavy phases (values at
            1.0 reach the GPU's transient peak, i.e. above TDP).
        mid_dip_activity: Activity during the brief dip between the
            forward and backward passes.
        trough_activity: Activity during the end-of-iteration gradient
            synchronization (Flan-T5 falls all the way to idle: 0.0).
        forward_fraction / backward_fraction / sync_fraction: Fractions of
            the iteration spent in each phase; must sum to 1.
        compute_fraction: Effective clock sensitivity of iteration time.
            Calibrated to Figure 5a: locking ~22% below the max clock
            costs ~10% throughput (communication, memory-bound kernels,
            and host work do not scale with the SM clock).
    """

    iteration_seconds: float
    peak_activity: float
    mid_dip_activity: float
    trough_activity: float
    forward_fraction: float = 0.30
    backward_fraction: float = 0.55
    sync_fraction: float = 0.15
    compute_fraction: float = 0.45

    def __post_init__(self) -> None:
        total = self.forward_fraction + self.backward_fraction + self.sync_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"phase fractions sum to {total}, expected 1.0")


@dataclass(frozen=True)
class PowerCalibration:
    """Per-model constants mapping workload shape to GPU activity.

    Attributes:
        prompt_activity_min: Activity for a minimal prompt (256 tokens).
        prompt_activity_max: Asymptotic activity for very large prompt
            batches; 1.0 means the transient peak (above TDP).
        prompt_saturation_tokens: Token scale of the saturating exponential
            ``a = min + (max - min) * (1 - exp(-tokens / scale))``.
        token_activity_base: Activity during token sampling at batch 1.
        token_activity_batch_slope: Activity added per doubling of the
            batch size during token sampling.
        token_clock_sensitivity: Effective compute-bound fraction of the
            token phase — the Figure 10a per-model knob.
        mfu_prompt: Model FLOPs utilization during prompt processing.
        mfu_token: FLOPs utilization during token sampling (compute side).
    """

    prompt_activity_min: float
    prompt_activity_max: float
    prompt_saturation_tokens: float
    token_activity_base: float
    token_activity_batch_slope: float
    token_clock_sensitivity: float
    mfu_prompt: float = 0.45
    mfu_token: float = 0.30


@dataclass(frozen=True)
class LlmSpec:
    """One row of Table 3, plus the substrate calibration.

    Attributes:
        name: Canonical model name, e.g. ``"BLOOM-176B"``.
        architecture: Transformer shape.
        n_inference_gpus: GPUs used to serve the model (Table 3).
        default_dtype: Serving datatype.
        trainable: Whether the paper also characterized training for this
            model (Table 3 marks Llama2/OPT/BLOOM as inference-only).
        calibration: Power/performance calibration constants.
        training: Training iteration profile (``None`` for inference-only).
    """

    name: str
    architecture: TransformerArchitecture
    n_inference_gpus: int
    default_dtype: DType = FP16
    trainable: bool = False
    calibration: PowerCalibration = PowerCalibration(
        prompt_activity_min=0.55,
        prompt_activity_max=0.95,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.45,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.12,
    )
    training: Optional[TrainingProfile] = None

    @property
    def n_params(self) -> float:
        """Total parameter count."""
        return self.architecture.n_params

    @property
    def params_per_gpu(self) -> float:
        """Parameters resident per GPU under tensor parallelism."""
        return self.n_params / self.n_inference_gpus


def _decoder(n_params: float, layers: int, hidden: int, heads: int
             ) -> TransformerArchitecture:
    return TransformerArchitecture(
        kind=ArchitectureKind.DECODER, n_params=n_params,
        n_layers=layers, hidden_size=hidden, n_heads=heads,
    )


ROBERTA = LlmSpec(
    name="RoBERTa-355M",
    architecture=TransformerArchitecture(
        kind=ArchitectureKind.ENCODER, n_params=millions(355),
        n_layers=24, hidden_size=1024, n_heads=16,
    ),
    n_inference_gpus=1,
    trainable=True,
    calibration=PowerCalibration(
        prompt_activity_min=0.40,
        prompt_activity_max=0.72,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.35,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.10,
    ),
    # Figure 4: ~1 s iterations; trough stays at ~75% of TDP because the
    # small model synchronizes quickly and keeps GPUs busy.
    training=TrainingProfile(
        iteration_seconds=1.0,
        peak_activity=0.76,
        mid_dip_activity=0.62,
        trough_activity=0.57,
    ),
)

FLAN_T5_XXL = LlmSpec(
    name="Flan-T5-XXL",
    architecture=TransformerArchitecture(
        kind=ArchitectureKind.ENCODER_DECODER, n_params=billions(11),
        n_layers=48, hidden_size=4096, n_heads=64,
    ),
    n_inference_gpus=1,
    trainable=True,
    calibration=PowerCalibration(
        prompt_activity_min=0.50,
        prompt_activity_max=0.88,
        prompt_saturation_tokens=2200.0,
        token_activity_base=0.40,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.15,
    ),
    # Figure 4: ~4 s iterations; the sync trough drops to GPU idle (~20%
    # of TDP) because all eight GPUs wait on communication.
    training=TrainingProfile(
        iteration_seconds=4.0,
        peak_activity=0.99,
        mid_dip_activity=0.55,
        trough_activity=0.0,
        forward_fraction=0.30,
        backward_fraction=0.50,
        sync_fraction=0.20,
    ),
)

LLAMA2_13B = LlmSpec(
    name="Llama2-13B",
    architecture=_decoder(billions(13), 40, 5120, 40),
    n_inference_gpus=1,
    calibration=PowerCalibration(
        prompt_activity_min=0.52,
        prompt_activity_max=0.90,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.42,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.12,
    ),
)

GPT_NEOX_20B = LlmSpec(
    name="GPT-NeoX-20B",
    architecture=_decoder(billions(20), 44, 6144, 64),
    n_inference_gpus=2,
    trainable=True,
    calibration=PowerCalibration(
        prompt_activity_min=0.55,
        prompt_activity_max=0.92,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.45,
        token_activity_batch_slope=0.02,
        # Figure 10a: GPT-NeoX shows essentially no performance loss as
        # frequency drops — its token phase is almost purely
        # bandwidth-bound at 10B parameters per GPU.
        token_clock_sensitivity=0.05,
    ),
    # Figure 4: ~2 s iterations; trough at ~50% of TDP.
    training=TrainingProfile(
        iteration_seconds=2.0,
        peak_activity=1.0,
        mid_dip_activity=0.60,
        trough_activity=0.31,
    ),
)

OPT_30B = LlmSpec(
    name="OPT-30B",
    architecture=_decoder(billions(30), 48, 7168, 56),
    n_inference_gpus=4,
    calibration=PowerCalibration(
        prompt_activity_min=0.56,
        prompt_activity_max=0.94,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.46,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.10,
    ),
)

LLAMA2_70B = LlmSpec(
    name="Llama2-70B",
    architecture=_decoder(billions(70), 80, 8192, 64),
    n_inference_gpus=4,
    calibration=PowerCalibration(
        prompt_activity_min=0.58,
        prompt_activity_max=0.97,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.50,
        token_activity_batch_slope=0.02,
        token_clock_sensitivity=0.18,
    ),
)

BLOOM_176B = LlmSpec(
    name="BLOOM-176B",
    architecture=_decoder(billions(176), 70, 14336, 112),
    n_inference_gpus=8,
    calibration=PowerCalibration(
        prompt_activity_min=0.60,
        prompt_activity_max=1.00,
        prompt_saturation_tokens=2000.0,
        token_activity_base=0.55,
        token_activity_batch_slope=0.02,
        # Figure 10a: BLOOM shows the highest sensitivity (~5% performance
        # loss at a 13% peak-power reduction) — 22B parameters per GPU
        # leave a substantial compute component even during token sampling,
        # and long prompts add a fully clock-sensitive latency share.
        token_clock_sensitivity=0.18,
    ),
)

#: All characterized models, keyed by canonical name (Table 3).
MODEL_ZOO: Dict[str, LlmSpec] = {
    spec.name: spec
    for spec in (
        ROBERTA,
        FLAN_T5_XXL,
        LLAMA2_13B,
        GPT_NEOX_20B,
        OPT_30B,
        LLAMA2_70B,
        BLOOM_176B,
    )
}

#: The five generative models used in the inference figures (6, 8, 10).
INFERENCE_FIGURE_MODELS: Tuple[str, ...] = (
    "Flan-T5-XXL",
    "GPT-NeoX-20B",
    "OPT-30B",
    "Llama2-70B",
    "BLOOM-176B",
)

#: The three models used in the training figures (4, 5).
TRAINING_FIGURE_MODELS: Tuple[str, ...] = (
    "RoBERTa-355M",
    "GPT-NeoX-20B",
    "Flan-T5-XXL",
)


def get_model(name: str) -> LlmSpec:
    """Look up a model by canonical name.

    Raises:
        ModelNotFoundError: If the name is not in the zoo.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise ModelNotFoundError(
            f"unknown model {name!r}; known: {known}"
        ) from None


def inference_models() -> Tuple[LlmSpec, ...]:
    """The models used in the paper's inference characterization figures."""
    return tuple(MODEL_ZOO[name] for name in INFERENCE_FIGURE_MODELS)


def training_models() -> Tuple[LlmSpec, ...]:
    """The models used in the paper's training characterization figures."""
    return tuple(MODEL_ZOO[name] for name in TRAINING_FIGURE_MODELS)
