"""Inference request descriptions and their phase timelines.

A request is fully described by its model, input/output token counts,
batch size, and datatype. The timeline expansion turns one request into a
sequence of :class:`PhaseSegment`\\ s — (duration, activity,
compute-boundedness) triples — which is the single currency shared by the
characterization harness (power time series, Figures 6 and 9) and the
cluster simulator (per-server power and latency under capping).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.gpu.specs import GpuSpec
from repro.models.datatypes import DType
from repro.models.performance import RooflineLatencyModel
from repro.models.power_profile import PhasePowerProfile
from repro.models.registry import LlmSpec


@dataclass(frozen=True)
class InferenceRequest:
    """One LLM inference request.

    Attributes:
        model_name: Canonical model name from the zoo.
        input_tokens: Prompt length per sequence.
        output_tokens: Tokens to generate per sequence.
        batch_size: Sequences processed together.
        dtype: Optional datatype override.
    """

    model_name: str
    input_tokens: int
    output_tokens: int
    batch_size: int = 1
    dtype: Optional[DType] = None

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ConfigurationError("input_tokens must be positive")
        if self.output_tokens <= 0:
            raise ConfigurationError("output_tokens must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    def with_sizes(
        self,
        input_tokens: Optional[int] = None,
        output_tokens: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> "InferenceRequest":
        """Return a copy with some sizes replaced (for parameter sweeps)."""
        return replace(
            self,
            input_tokens=input_tokens if input_tokens is not None else self.input_tokens,
            output_tokens=output_tokens if output_tokens is not None else self.output_tokens,
            batch_size=batch_size if batch_size is not None else self.batch_size,
        )


@dataclass(frozen=True)
class PhaseSegment:
    """A contiguous stretch of execution with uniform power behaviour.

    Attributes:
        phase: ``"prompt"``, ``"token"``, or ``"idle"``.
        duration_seconds: Duration at the maximum SM clock. Consumers
            stretch this by the phase's compute sensitivity when the clock
            is reduced.
        activity: GPU activity driving the power model.
        compute_fraction: Clock sensitivity of the duration: 1.0 stretches
            inversely with clock, 0.0 is clock-insensitive.
    """

    phase: str
    duration_seconds: float
    activity: float
    compute_fraction: float

    def duration_at(self, clock_ratio: float) -> float:
        """Duration when running at ``clock_ratio`` of the max clock."""
        if not 0.0 < clock_ratio <= 1.0:
            raise ConfigurationError(f"clock_ratio {clock_ratio} outside (0, 1]")
        stretch = (1.0 - self.compute_fraction) + self.compute_fraction / clock_ratio
        return self.duration_seconds * stretch


@dataclass(frozen=True)
class RequestTimeline:
    """The phase segments of one request, with convenience accessors."""

    request: InferenceRequest
    segments: List[PhaseSegment] = field(default_factory=list)

    def total_seconds(self, clock_ratio: float = 1.0) -> float:
        """End-to-end duration at the given clock ratio."""
        return sum(seg.duration_at(clock_ratio) for seg in self.segments)

    def peak_activity(self) -> float:
        """Maximum activity across segments (the prompt spike)."""
        return max(seg.activity for seg in self.segments)

    def mean_activity(self, clock_ratio: float = 1.0) -> float:
        """Duration-weighted mean activity (the stable token level)."""
        total = self.total_seconds(clock_ratio)
        weighted = sum(
            seg.activity * seg.duration_at(clock_ratio) for seg in self.segments
        )
        return weighted / total


def request_timeline(
    spec: LlmSpec,
    gpu: GpuSpec,
    request: InferenceRequest,
    n_gpus: Optional[int] = None,
) -> RequestTimeline:
    """Expand a request into its prompt and token phase segments.

    The prompt segment is fully compute-bound; the token segment's clock
    sensitivity is the model's calibrated ``token_clock_sensitivity``.
    """
    if request.model_name != spec.name:
        raise ConfigurationError(
            f"request targets {request.model_name!r} but spec is {spec.name!r}"
        )
    latency = RooflineLatencyModel(
        model=spec, gpu=gpu, dtype=request.dtype, n_gpus=n_gpus
    )
    profile = PhasePowerProfile(model=spec, dtype=request.dtype)
    phases = latency.request_latency(
        request.input_tokens, request.output_tokens, request.batch_size
    )
    segments = [
        PhaseSegment(
            phase="prompt",
            duration_seconds=phases.prompt_seconds,
            activity=profile.prompt_activity(
                request.input_tokens, request.batch_size
            ),
            compute_fraction=1.0,
        ),
        PhaseSegment(
            phase="token",
            duration_seconds=phases.token_seconds,
            activity=profile.token_activity(request.batch_size),
            compute_fraction=spec.calibration.token_clock_sensitivity,
        ),
    ]
    return RequestTimeline(request=request, segments=segments)
