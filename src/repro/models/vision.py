"""Non-generative deep-learning inference ("Beyond LLMs", Section 6.7).

"Unlike generative LLMs, vision and multi-modal deep learning inference
workloads exhibit relatively stable power consumption patterns. However,
they can still reclaim power from frequency scaling for small performance
loss."

A vision model runs one feed-forward pass per request: no prompt/token
phase split, so its power is a single stable level, and its compute is
batched matrix work whose latency scales with the clock less than
linearly (memory-bound layers, pre/post-processing). This module models
such a workload for the "beyond LLMs" comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec


@dataclass(frozen=True)
class VisionServingModel:
    """A vision/multi-modal inference workload on one GPU.

    Attributes:
        name: Workload name.
        activity: Stable serving activity level (no phase structure).
        base_latency_s: Per-batch inference latency at the max clock.
        compute_fraction: Clock sensitivity of latency; below 1 because
            memory-bound layers and host-side work do not scale.
    """

    name: str = "vision-classifier"
    activity: float = 0.62
    base_latency_s: float = 0.05
    compute_fraction: float = 0.65

    def __post_init__(self) -> None:
        if not 0.0 < self.activity <= 1.0:
            raise ConfigurationError("activity must be in (0, 1]")
        if self.base_latency_s <= 0:
            raise ConfigurationError("latency must be positive")
        if not 0.0 <= self.compute_fraction <= 1.0:
            raise ConfigurationError("compute_fraction outside [0, 1]")

    def power(self, gpu: GpuSpec = A100_80GB,
              sm_clock_mhz: float = None) -> float:
        """Serving power at a clock (defaults to the maximum)."""
        clock = sm_clock_mhz if sm_clock_mhz is not None \
            else gpu.max_sm_clock_mhz
        return GpuPowerModel(gpu).power(self.activity, clock)

    def latency(self, clock_ratio: float = 1.0) -> float:
        """Per-batch latency at a clock ratio.

        Raises:
            ConfigurationError: If the ratio is outside ``(0, 1]``.
        """
        if not 0.0 < clock_ratio <= 1.0:
            raise ConfigurationError(f"clock_ratio {clock_ratio} outside (0, 1]")
        c = self.compute_fraction
        return self.base_latency_s * ((1.0 - c) + c / clock_ratio)

    def power_stability(self, gpu: GpuSpec = A100_80GB) -> float:
        """Peak-to-mean power ratio — exactly 1.0: no phases, no spikes.

        Contrast with generative LLMs, whose prompt spikes push this well
        above 1 (Figure 6)."""
        return 1.0

    def frequency_tradeoff(self, sm_clock_mhz: float,
                           gpu: GpuSpec = A100_80GB) -> dict:
        """Power reclaimed vs performance lost at a locked clock.

        Section 6.7's point: the reclaim-per-loss lever still works for
        non-LLM inference, even without oversubscribable phase structure.
        """
        gpu.validate_clock(sm_clock_mhz)
        ratio = sm_clock_mhz / gpu.max_sm_clock_mhz
        full_power = self.power(gpu)
        locked_power = self.power(gpu, sm_clock_mhz)
        return {
            "power_reduction": 1.0 - locked_power / full_power,
            "performance_reduction": 1.0 - self.latency(1.0)
            / self.latency(ratio),
        }
