"""Roofline latency model for LLM inference phases.

The paper's performance-side observations all follow from the different
bottlenecks of the two inference phases (Section 2, Figure 1):

* **Prompt processing** runs all input tokens in parallel and is
  compute-bound: its latency is FLOPs over delivered tensor throughput,
  and it scales inversely with the SM clock.
* **Token sampling** is sequential and bandwidth-bound: each generated
  token must stream the model weights (plus the KV cache) from HBM, so
  its latency is bytes over bandwidth and is only weakly clock-sensitive.

The weak residual clock sensitivity of the token phase is the per-model
``token_clock_sensitivity`` calibration constant (see
:mod:`repro.models.registry`), which reproduces Figure 10's superlinear
peak-power-vs-performance trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpu.specs import GpuSpec
from repro.models.datatypes import DType
from repro.models.registry import LlmSpec

#: Fraction of peak HBM bandwidth achieved by streaming reads.
DEFAULT_BANDWIDTH_EFFICIENCY = 0.8

#: Tensor-parallel scaling efficiency across GPUs on one server (NVLink).
DEFAULT_TP_EFFICIENCY = 0.85

#: Fixed per-request overhead (scheduling, tokenization), in seconds.
DEFAULT_REQUEST_OVERHEAD_S = 0.02


@dataclass(frozen=True)
class PhaseLatency:
    """Latency of one inference request, split by phase.

    Attributes:
        prompt_seconds: Prompt-processing time.
        token_seconds: Total token-sampling time for all output tokens.
        overhead_seconds: Fixed request overhead.
    """

    prompt_seconds: float
    token_seconds: float
    overhead_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end request latency."""
        return self.prompt_seconds + self.token_seconds + self.overhead_seconds

    @property
    def prompt_fraction(self) -> float:
        """Share of the request spent in the prompt phase."""
        return self.prompt_seconds / self.total_seconds


@dataclass(frozen=True)
class RooflineLatencyModel:
    """Analytical latency model for one model served on one server.

    Attributes:
        model: The LLM being served.
        gpu: The GPU type of the serving server.
        dtype: Weight datatype; defaults to the model's default (FP16).
        n_gpus: Tensor-parallel degree; defaults to Table 3's value.
        bandwidth_efficiency: Achieved fraction of peak HBM bandwidth.
        tp_efficiency: Tensor-parallel scaling efficiency.
        overhead_seconds: Fixed per-request overhead.
    """

    model: LlmSpec
    gpu: GpuSpec
    dtype: Optional[DType] = None
    n_gpus: Optional[int] = None
    bandwidth_efficiency: float = DEFAULT_BANDWIDTH_EFFICIENCY
    tp_efficiency: float = DEFAULT_TP_EFFICIENCY
    overhead_seconds: float = DEFAULT_REQUEST_OVERHEAD_S

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ConfigurationError("bandwidth_efficiency must be in (0, 1]")
        if not 0.0 < self.tp_efficiency <= 1.0:
            raise ConfigurationError("tp_efficiency must be in (0, 1]")

    @property
    def effective_dtype(self) -> DType:
        """The datatype in use."""
        return self.dtype if self.dtype is not None else self.model.default_dtype

    @property
    def effective_n_gpus(self) -> int:
        """The tensor-parallel degree in use."""
        return self.n_gpus if self.n_gpus is not None else self.model.n_inference_gpus

    def _delivered_flops(self) -> float:
        """Aggregate tensor throughput at the maximum SM clock, FLOP/s."""
        dtype = self.effective_dtype
        try:
            peak = self.gpu.peak_flops[dtype.name]
        except KeyError:
            raise ConfigurationError(
                f"{self.gpu.name} has no peak-FLOPs entry for {dtype.name}"
            ) from None
        return (
            peak
            * dtype.kernel_efficiency
            * self.effective_n_gpus
            * self.tp_efficiency
        )

    def _delivered_bandwidth(self) -> float:
        """Aggregate HBM bandwidth, B/s (dtype kernels included)."""
        return (
            self.gpu.memory_bandwidth
            * self.bandwidth_efficiency
            * self.effective_dtype.bandwidth_efficiency
            * self.effective_n_gpus
        )

    def prompt_latency(
        self, input_tokens: int, batch_size: int = 1, clock_ratio: float = 1.0
    ) -> float:
        """Prompt-processing latency in seconds.

        Compute-bound: scales with FLOPs and inversely with the SM clock.

        Args:
            input_tokens: Prompt length per sequence.
            batch_size: Number of sequences processed together.
            clock_ratio: Current SM clock over the max clock, in (0, 1].
        """
        self._check_clock_ratio(clock_ratio)
        flops = self.model.architecture.prompt_flops(input_tokens, batch_size)
        calibration = self.model.calibration
        throughput = self._delivered_flops() * calibration.mfu_prompt
        return flops / throughput / clock_ratio

    def token_latency(
        self,
        batch_size: int = 1,
        context_tokens: int = 1024,
        clock_ratio: float = 1.0,
    ) -> float:
        """Latency to generate one token (per sequence in the batch).

        Bandwidth-bound at the roofline, with the residual clock
        sensitivity given by the model's calibration.
        """
        self._check_clock_ratio(clock_ratio)
        arch = self.model.architecture
        dtype = self.effective_dtype
        read_time = (
            arch.token_read_bytes(dtype, context_tokens, batch_size)
            / self._delivered_bandwidth()
        )
        compute_time = (
            arch.token_flops(batch_size, context_tokens)
            / (self._delivered_flops() * self.model.calibration.mfu_token)
        )
        base = max(read_time, compute_time)
        sensitivity = self.model.calibration.token_clock_sensitivity
        stretch = (1.0 - sensitivity) + sensitivity / clock_ratio
        return base * stretch

    def request_latency(
        self,
        input_tokens: int,
        output_tokens: int,
        batch_size: int = 1,
        clock_ratio: float = 1.0,
    ) -> PhaseLatency:
        """End-to-end latency of one request, split by phase.

        Token sampling uses the mean context length over the generation
        (input plus half the output) to account for KV-cache growth.
        """
        if output_tokens <= 0:
            raise ConfigurationError("output_tokens must be positive")
        prompt = self.prompt_latency(input_tokens, batch_size, clock_ratio)
        mean_context = input_tokens + output_tokens // 2
        per_token = self.token_latency(batch_size, mean_context, clock_ratio)
        return PhaseLatency(
            prompt_seconds=prompt,
            token_seconds=per_token * output_tokens,
            overhead_seconds=self.overhead_seconds,
        )

    def throughput_tokens_per_second(
        self, batch_size: int = 1, context_tokens: int = 1024,
        clock_ratio: float = 1.0,
    ) -> float:
        """Steady-state generation throughput in tokens/second."""
        return batch_size / self.token_latency(
            batch_size, context_tokens, clock_ratio
        )

    @staticmethod
    def _check_clock_ratio(clock_ratio: float) -> None:
        if not 0.0 < clock_ratio <= 1.0:
            raise ConfigurationError(
                f"clock_ratio {clock_ratio} outside (0, 1]"
            )
