"""Model weight datatypes and their kernel-efficiency trade-offs.

Section 4.2 ("Impact of datatypes") runs Llama2-70B/13B with FP32, FP16,
and INT8 weights via bitsandbytes, and observes:

* FP16 is fastest and draws the *highest* peak power because it uses the
  highly optimized tensor-core kernels;
* FP32 is slower due to a 2x larger footprint (and far lower tensor-core
  throughput);
* INT8 is slower than FP16 despite smaller weights, because the
  bitsandbytes dequantization kernels are less optimized;
* quantized weights need fewer GPUs, reducing total power (Insight 6).

We encode each datatype as bytes-per-parameter plus a *kernel efficiency*
multiplier applied to the device's peak throughput for that type, which
reproduces exactly those orderings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DType:
    """A model-weight datatype.

    Attributes:
        name: Key into :attr:`repro.gpu.specs.GpuSpec.peak_flops`.
        bytes_per_param: Storage per parameter (weights and KV cache).
        kernel_efficiency: Fraction of the device's peak throughput the
            available kernels achieve, in ``(0, 1]``. INT8's low value
            models the bitsandbytes dequantize-then-matmul path.
        bandwidth_efficiency: Fraction of streaming bandwidth the kernels
            achieve, in ``(0, 1]``. INT8's low value makes it *slower*
            than FP16 despite halved weight bytes — the dequantization
            stalls the memory pipeline (Section 4.2, "INT8 perform[s]
            slower due to ... less optimized CUDA kernels").
        peak_activity_bonus: Additive adjustment to prompt-phase activity;
            FP16's optimized tensor-core kernels drive the chip hardest.
    """

    name: str
    bytes_per_param: float
    kernel_efficiency: float
    bandwidth_efficiency: float = 1.0
    peak_activity_bonus: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_per_param <= 0:
            raise ConfigurationError("bytes_per_param must be positive")
        if not 0.0 < self.kernel_efficiency <= 1.0:
            raise ConfigurationError("kernel_efficiency must be in (0, 1]")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ConfigurationError("bandwidth_efficiency must be in (0, 1]")


#: IEEE single precision; no tensor-core path for matmuls at this width.
FP32 = DType(name="fp32", bytes_per_param=4.0, kernel_efficiency=0.85,
             peak_activity_bonus=-0.05)

#: Half precision on tensor cores — the default serving datatype.
FP16 = DType(name="fp16", bytes_per_param=2.0, kernel_efficiency=1.0,
             peak_activity_bonus=0.0)

#: bitsandbytes LLM.int8(): small weights, poorly optimized kernels.
INT8 = DType(name="int8", bytes_per_param=1.0, kernel_efficiency=0.25,
             bandwidth_efficiency=0.35, peak_activity_bonus=-0.08)

#: H100-era FP8 (Section 6.7 mentions the H100 FP8 engine).
FP8 = DType(name="fp8", bytes_per_param=1.0, kernel_efficiency=0.95,
            peak_activity_bonus=0.02)

_DTYPES = {d.name: d for d in (FP32, FP16, INT8, FP8)}


def dtype_by_name(name: str) -> DType:
    """Look up a datatype by its name.

    Raises:
        ConfigurationError: If the name is unknown.
    """
    try:
        return _DTYPES[name]
    except KeyError:
        known = ", ".join(sorted(_DTYPES))
        raise ConfigurationError(
            f"unknown dtype {name!r}; known: {known}"
        ) from None
