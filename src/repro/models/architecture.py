"""Transformer architecture arithmetic: parameters, FLOPs, and bytes.

The roofline performance model needs three quantities per model:

* forward-pass FLOPs per token (``≈ 2 × parameters`` for dense decoder
  transformers, the standard approximation from the scaling-law
  literature);
* weight bytes that must stream from HBM for every generated token during
  the bandwidth-bound token phase;
* KV-cache bytes per token, which both consume HBM capacity and add to the
  per-token streaming traffic as context grows.

These follow directly from the published layer counts and hidden sizes of
the open models in Table 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.models.datatypes import DType


class ArchitectureKind(enum.Enum):
    """The three transformer families distinguished by the paper (Sec. 2)."""

    ENCODER = "encoder"
    DECODER = "decoder"
    ENCODER_DECODER = "encoder-decoder"


@dataclass(frozen=True)
class TransformerArchitecture:
    """Shape of a dense transformer.

    Attributes:
        kind: Encoder / decoder / encoder-decoder.
        n_params: Total parameter count.
        n_layers: Transformer block count (sum of both stacks for
            encoder-decoder models).
        hidden_size: Model dimension.
        n_heads: Attention head count.
        vocab_size: Vocabulary size (affects embedding/unembedding only).
    """

    kind: ArchitectureKind
    n_params: float
    n_layers: int
    hidden_size: int
    n_heads: int
    vocab_size: int = 50_000

    def __post_init__(self) -> None:
        if self.n_params <= 0 or self.n_layers <= 0 or self.hidden_size <= 0:
            raise ConfigurationError("architecture dimensions must be positive")
        if self.hidden_size % max(self.n_heads, 1) != 0:
            raise ConfigurationError(
                f"hidden_size {self.hidden_size} not divisible by "
                f"n_heads {self.n_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.n_heads

    def forward_flops_per_token(self) -> float:
        """Dense forward-pass FLOPs for one token (≈ 2 × parameters)."""
        return 2.0 * self.n_params

    def prompt_flops(self, prompt_tokens: int, batch_size: int) -> float:
        """FLOPs to process a prompt of the given size in parallel.

        Attention's quadratic term is included; it only matters for very
        long prompts (it is why Figure 8b's latency finally bends upward
        past 4096 input tokens).
        """
        self._check_tokens(prompt_tokens, batch_size)
        dense = self.forward_flops_per_token() * prompt_tokens * batch_size
        attention = (
            4.0 * self.n_layers * self.hidden_size
            * prompt_tokens * prompt_tokens * batch_size
        )
        return dense + attention

    def token_flops(self, batch_size: int, context_tokens: int) -> float:
        """FLOPs to generate one token per sequence in the batch."""
        self._check_tokens(max(context_tokens, 1), batch_size)
        dense = self.forward_flops_per_token() * batch_size
        attention = (
            4.0 * self.n_layers * self.hidden_size * context_tokens * batch_size
        )
        return dense + attention

    def weight_bytes(self, dtype: DType) -> float:
        """Bytes occupied by the model weights at the given datatype."""
        return self.n_params * dtype.bytes_per_param

    def kv_cache_bytes_per_token(self, dtype: DType) -> float:
        """KV-cache bytes appended per token per sequence.

        Two vectors (K and V) of ``hidden_size`` per layer.
        """
        return 2.0 * self.n_layers * self.hidden_size * dtype.bytes_per_param

    def kv_cache_bytes(
        self, dtype: DType, context_tokens: int, batch_size: int
    ) -> float:
        """Total KV-cache footprint for a batch at the given context length."""
        self._check_tokens(context_tokens, batch_size)
        return (
            self.kv_cache_bytes_per_token(dtype) * context_tokens * batch_size
        )

    def token_read_bytes(
        self, dtype: DType, context_tokens: int, batch_size: int
    ) -> float:
        """HBM bytes streamed to generate one token (weights + KV cache).

        Weights are read once per forward pass regardless of batch size;
        the KV cache is read per sequence.
        """
        return self.weight_bytes(dtype) + self.kv_cache_bytes(
            dtype, context_tokens, batch_size
        )

    def fits_on(
        self,
        dtype: DType,
        memory_bytes_total: float,
        context_tokens: int = 2048,
        batch_size: int = 1,
        activation_overhead: float = 0.10,
        kv_dtype: Optional[DType] = None,
    ) -> bool:
        """Whether weights + KV cache + activations fit in aggregate HBM.

        The paper's footnote 1 notes that "beyond model weights, extra
        state is needed for activations, KV cache, etc., which could
        preclude using fewer GPUs for smaller datatypes" — the
        ``activation_overhead`` fraction models that extra state, and
        ``kv_dtype`` lets the KV cache stay FP16 when the weights are
        quantized (bitsandbytes quantizes weights only, which is why the
        paper still needs two GPUs for INT8 Llama2-70B).
        """
        need = self.weight_bytes(dtype) * (1.0 + activation_overhead)
        need += self.kv_cache_bytes(
            kv_dtype if kv_dtype is not None else dtype,
            context_tokens,
            batch_size,
        )
        return need <= memory_bytes_total

    @staticmethod
    def _check_tokens(tokens: int, batch_size: int) -> None:
        if tokens <= 0:
            raise ConfigurationError(f"token count must be positive, got {tokens}")
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch size must be positive, got {batch_size}"
            )
