"""Trace recorders: where instrumentation events go.

A :class:`TraceRecorder` receives structured events — plain dicts with a
``kind`` key and, for simulator events, a simulation-time ``t`` — from
the cluster simulator's hook points and from the sweep engine. The
contract that makes the layer safe to leave compiled in everywhere:

* recorders only *observe*; they never touch simulator state, draw from
  its RNG streams, or reorder its float arithmetic, so an instrumented
  run is bit-identical to an uninstrumented one;
* the :class:`NullRecorder` singleton reports ``enabled = False`` and
  every hook point is guarded by that flag, so a run without recording
  never even builds an event payload.

Concrete sinks: :class:`MemoryRecorder` (in-process analysis),
:class:`JsonlRecorder` (one JSON object per line — the interchange
format :mod:`repro.obs.analyze` and ``examples/trace_inspect.py``
consume), and :class:`CsvRecorder` (spreadsheet-friendly flat file).
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from repro.errors import ConfigurationError

#: Event payloads are plain dicts: ``{"kind": ..., "t": ..., **fields}``.
TraceEvent = Dict[str, Any]


class TraceRecorder:
    """Base class for trace sinks.

    Attributes:
        enabled: Hook points skip payload construction entirely when this
            is ``False`` (the :class:`NullRecorder` fast path).
    """

    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        """Record one event. Must not mutate ``event`` observably."""
        raise NotImplementedError

    def wants(self, kind: str) -> bool:
        """Whether events of ``kind`` can affect this recorder at all.

        Hook points may skip payload construction entirely for kinds
        the recorder (and everything down its chain) reports ``False``
        for — the overhead-bounding fast path for high-rate kinds. A
        ``False`` answer promises that emitting such an event would
        change neither the recorded artifact nor the observability
        snapshot. The answer must be stable for the recorder's
        lifetime: hook points precompute it when the recorder is
        attached. Sinks with a ``kinds`` filter answer from it;
        recorders that count what they discard (sampling censuses)
        must keep answering ``True``.
        """
        return self.enabled

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""

    def finalize(self, t_end: float) -> None:
        """End-of-run hook: the stream is complete up to ``t_end``.

        Called by the simulator (only while recording) before it
        snapshots observability. Streaming consumers use it to settle
        window state; plain sinks ignore it. Distinct from
        :meth:`close`: a finalized recorder can still be read.
        """

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        """Extra JSON-serializable state for the run's observability.

        Live consumers (alert engines, stream monitors) return a dict
        that the simulator merges into
        ``SimulationResult.observability`` next to the metrics
        snapshot; plain sinks return ``None``.
        """
        return None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Runs on exceptions too: a trace recorded up to a mid-run
        # fault is flushed and closed, so the partial artifact stays
        # valid JSONL/CSV (regression-tested in tests/test_obs.py).
        self.close()


class NullRecorder(TraceRecorder):
    """The no-op recorder: ``enabled = False``, events are discarded.

    Hook points guard on ``enabled``, so a simulation handed this
    recorder performs no event construction at all and stays
    bit-identical to one that was never instrumented.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded
        pass


#: Shared no-op instance used as the default recorder everywhere.
NULL_RECORDER = NullRecorder()


def _normalize_kinds(
    kinds: Optional[Iterable[str]],
) -> Optional[FrozenSet[str]]:
    if kinds is None:
        return None
    normalized = frozenset(kinds)
    if not normalized:
        raise ConfigurationError("kinds filter cannot be empty")
    return normalized


class MemoryRecorder(TraceRecorder):
    """Keeps events in a list for in-process analysis.

    Attributes:
        events: Every recorded event, in emission order.
        kinds: Optional filter; events of other kinds are discarded.
            Note that :func:`repro.obs.analyze.cross_check` needs the
            full event stream — filter only for targeted inspection.
        max_events: Optional growth bound. Once the buffer holds this
            many events, further events are dropped (oldest-kept) and
            counted exactly in ``dropped_events`` — a long enabled run
            can no longer grow memory without limit.
        dropped_events: Exact count of events dropped by the bound.
    """

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ConfigurationError(
                f"max_events must be positive, got {max_events}"
            )
        self.events: List[TraceEvent] = []
        self.kinds = _normalize_kinds(kinds)
        self.max_events = max_events
        self.dropped_events = 0

    def emit(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.get("kind") not in self.kinds:
            return
        if self.max_events is not None \
                and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def wants(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        if self.max_events is None:
            return None
        return {
            "trace_buffer": {
                "max_events": self.max_events,
                "recorded_events": len(self.events),
                "dropped_events": self.dropped_events,
            }
        }

    def __len__(self) -> int:
        return len(self.events)


class JsonlRecorder(TraceRecorder):
    """Streams events to a JSON-Lines file (one object per line).

    Floats are serialized with ``repr``-exact round-tripping (the
    :mod:`json` default), so a trace read back by
    :func:`read_jsonl` carries the exact simulated values.

    Attributes:
        path: Destination file (truncated on open).
        kinds: Optional kind filter (see :class:`MemoryRecorder`).
    """

    def __init__(
        self, path: str, kinds: Optional[Iterable[str]] = None
    ) -> None:
        self.path = str(path)
        self.kinds = _normalize_kinds(kinds)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.get("kind") not in self.kinds:
            return
        if self._handle is None:
            raise ConfigurationError(
                f"JsonlRecorder({self.path!r}) is closed"
            )
        # One write call per event: serialization happens (and can fail)
        # before anything touches the file, so a fault mid-run never
        # leaves a torn line behind.
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def wants(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CsvRecorder(TraceRecorder):
    """Writes events as ``t,kind,payload`` CSV rows.

    The payload column holds the remaining event fields as a JSON
    object, which keeps the schema stable across heterogeneous event
    kinds while staying loadable in a spreadsheet.

    Attributes:
        path: Destination file (truncated on open).
        kinds: Optional kind filter (see :class:`MemoryRecorder`).
    """

    def __init__(
        self, path: str, kinds: Optional[Iterable[str]] = None
    ) -> None:
        self.path = str(path)
        self.kinds = _normalize_kinds(kinds)
        self._handle = open(self.path, "w", encoding="utf-8", newline="")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(["t", "kind", "payload"])
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.get("kind") not in self.kinds:
            return
        if self._handle is None:
            raise ConfigurationError(f"CsvRecorder({self.path!r}) is closed")
        payload = {
            key: value for key, value in event.items()
            if key not in ("t", "kind")
        }
        self._writer.writerow([
            event.get("t", ""),
            event.get("kind", ""),
            json.dumps(payload, sort_keys=True),
        ])
        self.events_written += 1

    def wants(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a trace written by :class:`JsonlRecorder`.

    Raises:
        ConfigurationError: If a line is not a JSON object.
    """
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid trace line: {exc}"
                ) from None
            if not isinstance(event, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: trace events must be JSON objects"
                )
            events.append(event)
    return events
