"""Causal latency and energy attribution for recorded runs.

POLCA's claim is that oversubscription is reclaimed with "<1%
performance impact" — this module makes that claim auditable per
request. From the span trees of :mod:`repro.obs.spans` it computes, for
every served request, the *counterfactual* full-clock completion time
and decomposes the realized latency into

``queue_wait + service + cap_slowdown + brake_stall + fallback``

seconds, each slowdown attributed to the specific action (cap priority +
generation, brake version + source) that imposed it. The arithmetic is
done in :class:`fractions.Fraction` over the trace's exact floats (JSON
round-trips floats exactly), so the conservation identity

``sum(components) == realized latency`` and
``sum(slowdowns) == realized - counterfactual``

holds *exactly* — not to a tolerance — per request. A phase interval of
length ``a`` at ratio ``r`` with compute fraction ``cf`` would have
taken ``a / ((1 - cf) + cf / r)`` seconds at full clock; the remainder
is slowdown, and is non-negative because ``r <= 1``. Excess energy is
charged at the request's slot share of the server's idle power (the
power the slot kept burning during the excess seconds), using the
``run_meta`` event's ``idle_server_power_w`` / ``concurrency``.

:func:`attribute_run` produces an :class:`AttributionReport`;
:func:`top_victims` ranks the requests that paid the most, and
:func:`attribution_table` aggregates p50/p99 excess per tier, priority,
or causing action. :func:`repro.obs.analyze.cross_check` wires the
conservation identity into the trace-vs-result audit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.spans import RateInterval, RequestSpan, SpanBuilder

__all__ = [
    "COMPONENTS",
    "AttributionReport",
    "RequestAttribution",
    "attribute_run",
    "attribution_table",
    "top_victims",
]

#: The latency decomposition, in reporting order. ``queue_wait`` and
#: ``service`` make up the counterfactual; the remaining three are the
#: attributed slowdowns (excess over full clock).
COMPONENTS = (
    "queue_wait", "service", "cap_slowdown", "brake_stall", "fallback",
)

_SLOWDOWN_COMPONENTS = ("cap_slowdown", "brake_stall", "fallback")
_ZERO = Fraction(0)
_ONE = Fraction(1)


def _classify(interval: RateInterval) -> str:
    """Which slowdown component an interval's excess belongs to."""
    if interval.cause == "brake":
        if interval.stamp.get("source") == "fallback":
            return "fallback"
        return "brake_stall"
    if interval.stamp.get("fallback"):
        return "fallback"
    return "cap_slowdown"


def _action_label(interval: RateInterval) -> str:
    """A stable identity for the action generation/version at fault."""
    if interval.cause == "brake":
        version = interval.stamp.get("version")
        source = interval.stamp.get("source", "policy")
        return f"brake v{version} ({source})"
    pool = interval.stamp.get("priority") or "?"
    generation = interval.stamp.get("generation")
    label = f"cap {pool} gen {generation}"
    if interval.stamp.get("fallback"):
        label += " [fallback]"
    return label


@dataclass
class RequestAttribution:
    """The causal latency/energy decomposition of one served request.

    Attributes:
        request_id: The request's trace id.
        priority: Priority-pool value.
        workload: Workload tier name.
        server: Serving server.
        exact: Exact (Fraction) values per component of
            :data:`COMPONENTS`; these sum to ``exact_realized``
            *exactly* on a faithful trace.
        exact_realized: Exact realized latency (completion - arrival).
        components_s: Float view of ``exact`` for reporting.
        realized_s: Float view of the realized latency.
        by_action_s: Slowdown seconds per causing action label
            (``"cap low gen 4"``, ``"brake v2 (policy)"``, ...).
        excess_energy_j: Slot-share idle energy burned during the
            excess seconds (0.0 when the trace has no ``run_meta``).
    """

    request_id: int
    priority: Optional[str]
    workload: Optional[str]
    server: Optional[str]
    exact: Dict[str, Fraction]
    exact_realized: Fraction
    by_action_s: Dict[str, float] = field(default_factory=dict)
    excess_energy_j: float = 0.0

    @property
    def realized_s(self) -> float:
        """Realized end-to-end latency in seconds."""
        return float(self.exact_realized)

    @property
    def components_s(self) -> Dict[str, float]:
        """Float view of the exact decomposition."""
        return {name: float(self.exact[name]) for name in COMPONENTS}

    @property
    def exact_counterfactual(self) -> Fraction:
        """Full-clock completion latency (queue wait held fixed)."""
        return self.exact["queue_wait"] + self.exact["service"]

    @property
    def counterfactual_s(self) -> float:
        """Float view of the counterfactual latency."""
        return float(self.exact_counterfactual)

    @property
    def exact_excess(self) -> Fraction:
        """Exact realized - counterfactual latency."""
        return self.exact_realized - self.exact_counterfactual

    @property
    def excess_s(self) -> float:
        """Seconds of slowdown this request absorbed."""
        return float(self.exact_excess)

    @property
    def conservation_error(self) -> Fraction:
        """``realized - sum(components)`` — zero on a faithful trace."""
        total = _ZERO
        for name in COMPONENTS:
            total += self.exact[name]
        return self.exact_realized - total


@dataclass
class AttributionReport:
    """Per-request attributions plus run-level aggregates.

    Attributes:
        requests: One attribution per *served* request.
        dropped: Requests dropped (routing saturation, churn, breaker
            trips, or emergency shedding).
        drops_by_cause: Drop counts keyed by the drop reason
            (``"saturated"`` / ``"churn"`` / ``"shed"`` / ``"trip"``).
        deferred: Requests the emergency shed layer deferred at least
            once before their final outcome (their defer delay shows up
            in ``queue_wait``, so conservation still holds exactly).
        unfinished: Spans still open at the end of the trace (only
            possible on truncated or filtered traces).
        latency_mismatches: Served requests whose exact realized
            latency disagrees with the serve event's ``latency_s``.
        meta: The trace's ``run_meta`` payload (may be empty).
    """

    requests: List[RequestAttribution] = field(default_factory=list)
    dropped: int = 0
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    deferred: int = 0
    unfinished: int = 0
    latency_mismatches: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def conservation_violations(self) -> List[int]:
        """Request ids whose decomposition does not sum exactly."""
        return [
            r.request_id for r in self.requests
            if r.conservation_error != 0
        ]

    def totals_s(self) -> Dict[str, float]:
        """Exact component totals across all requests, as floats."""
        totals = {name: _ZERO for name in COMPONENTS}
        for request in self.requests:
            for name in COMPONENTS:
                totals[name] += request.exact[name]
        return {name: float(value) for name, value in totals.items()}

    @property
    def total_excess_s(self) -> float:
        """Total attributed slowdown seconds across the run."""
        total = _ZERO
        for request in self.requests:
            total += request.exact_excess
        return float(total)

    @property
    def total_excess_energy_j(self) -> float:
        """Total excess energy attributed across the run."""
        return sum(r.excess_energy_j for r in self.requests)

    def by_action_s(self) -> Dict[str, float]:
        """Slowdown seconds per causing action, across all requests."""
        totals: Dict[str, float] = {}
        for request in self.requests:
            for label, seconds in request.by_action_s.items():
                totals[label] = totals.get(label, 0.0) + seconds
        return totals

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable summary for ``result.observability``."""
        return {
            "requests": len(self.requests),
            "dropped": self.dropped,
            "drops_by_cause": dict(self.drops_by_cause),
            "deferred": self.deferred,
            "unfinished": self.unfinished,
            "components_s": self.totals_s(),
            "excess_s": self.total_excess_s,
            "excess_energy_j": self.total_excess_energy_j,
            "conservation_ok": not self.conservation_violations,
            "top_victims": [
                {
                    "request_id": victim.request_id,
                    "priority": victim.priority,
                    "workload": victim.workload,
                    "excess_s": victim.excess_s,
                    "realized_s": victim.realized_s,
                }
                for victim in top_victims(self, 5)
            ],
        }


def _attribute_span(span: RequestSpan) -> RequestAttribution:
    """Decompose one served span; exact by construction."""
    arrival = Fraction(span.arrival_t)
    end = Fraction(span.end_t)
    realized = end - arrival
    components = {name: _ZERO for name in COMPONENTS}
    by_action: Dict[str, Fraction] = {}
    if span.phases:
        components["queue_wait"] = Fraction(span.phases[0].start) - arrival
    else:
        components["queue_wait"] = realized
    for phase in span.phases:
        compute_fraction = Fraction(phase.compute_fraction)
        for interval in phase.intervals:
            iv_end = interval.end if interval.end is not None else span.end_t
            actual = Fraction(iv_end) - Fraction(interval.start)
            if actual == 0:
                continue
            ratio = Fraction(interval.ratio)
            # duration_at(r) = D * ((1 - cf) + cf / r): the same work at
            # full clock takes actual / stretch — D cancels, so the
            # counterfactual needs only cf and r.
            stretch = (_ONE - compute_fraction) + compute_fraction / ratio
            ideal = actual / stretch
            components["service"] += ideal
            slowdown = actual - ideal
            if slowdown != 0:
                components[_classify(interval)] += slowdown
                label = _action_label(interval)
                by_action[label] = by_action.get(label, _ZERO) + slowdown
    return RequestAttribution(
        request_id=span.request_id,
        priority=span.priority,
        workload=span.workload,
        server=span.server,
        exact=components,
        exact_realized=realized,
        by_action_s={
            label: float(value) for label, value in by_action.items()
        },
    )


def attribute_run(source: Any) -> AttributionReport:
    """Attribute every served request of a recorded run.

    ``source`` is a JSONL path, a recorder with an ``events`` list, an
    event sequence, or an already-fed
    :class:`~repro.obs.spans.SpanBuilder`. Traces recorded before the
    span layer (no ``req_arrival`` / ``phase_start`` events) yield an
    empty report rather than failing.
    """
    builder = SpanBuilder.from_source(source)
    report = AttributionReport(meta=dict(builder.meta))
    energy_rate = 0.0
    idle_w = builder.meta.get("idle_server_power_w")
    concurrency = builder.meta.get("concurrency")
    if idle_w and concurrency:
        energy_rate = float(idle_w) / float(concurrency)
    for span in builder.build():
        if span.deferrals:
            report.deferred += 1
        if span.outcome == "dropped":
            report.dropped += 1
            cause = span.drop_reason or "?"
            report.drops_by_cause[cause] = (
                report.drops_by_cause.get(cause, 0) + 1
            )
            continue
        if span.outcome != "served" or span.end_t is None:
            report.unfinished += 1
            continue
        attribution = _attribute_span(span)
        attribution.excess_energy_j = attribution.excess_s * energy_rate
        if span.latency_s is not None \
                and float(attribution.exact_realized) != span.latency_s:
            report.latency_mismatches += 1
        report.requests.append(attribution)
    return report


def top_victims(
    report: AttributionReport, n: int = 10
) -> List[RequestAttribution]:
    """The ``n`` requests that absorbed the most slowdown seconds."""
    if n <= 0:
        raise ConfigurationError("top_victims needs n >= 1")
    ranked = sorted(
        report.requests,
        key=lambda r: (-r.exact_excess, r.request_id),
    )
    return ranked[:n]


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def attribution_table(
    report: AttributionReport, by: str = "priority"
) -> List[str]:
    """Aggregate attribution lines grouped ``by`` a span dimension.

    ``by`` is ``"priority"``, ``"workload"``, or ``"action"``. The
    first two group served requests and report count, mean realized
    latency, p50/p99 excess, and the summed slowdown components; the
    ``"action"`` view reports total slowdown seconds per causing cap
    generation / brake version.

    Raises:
        ConfigurationError: On an unknown ``by`` dimension.
    """
    if by == "action":
        lines = [f"{'action':<28}{'slowdown_s':>12}"]
        for label, seconds in sorted(
            report.by_action_s().items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"{label:<28}{seconds:>12.3f}")
        return lines
    if by not in ("priority", "workload"):
        raise ConfigurationError(
            f"attribution_table groups by 'priority', 'workload', or "
            f"'action', not {by!r}"
        )
    groups: Dict[str, List[RequestAttribution]] = {}
    for request in report.requests:
        key = getattr(request, by) or "?"
        groups.setdefault(key, []).append(request)
    lines = [
        f"{by:<12}{'n':>6}{'mean_lat_s':>12}{'p50_excess':>12}"
        f"{'p99_excess':>12}{'cap_s':>10}{'brake_s':>10}{'fallback_s':>12}"
    ]
    for key in sorted(groups):
        members = groups[key]
        excesses = [m.excess_s for m in members]
        mean_latency = sum(m.realized_s for m in members) / len(members)
        sums = {name: 0.0 for name in _SLOWDOWN_COMPONENTS}
        for member in members:
            for name in _SLOWDOWN_COMPONENTS:
                sums[name] += float(member.exact[name])
        lines.append(
            f"{key:<12}{len(members):>6}{mean_latency:>12.3f}"
            f"{_percentile(excesses, 0.50):>12.3f}"
            f"{_percentile(excesses, 0.99):>12.3f}"
            f"{sums['cap_slowdown']:>10.3f}"
            f"{sums['brake_stall']:>10.3f}"
            f"{sums['fallback']:>12.3f}"
        )
    return lines
