"""Mission control: a dependency-free static HTML dashboard.

Every observability layer in the repo produces data that is ultimately
*looked at* — sweep curves (Figure 13), power/utilization timelines
(Figure 16/18), incident tables, attribution victim lists, kernel-timer
profiles, cache-savings counters, and the cross-run ledger. This module
renders all of them into one self-contained HTML page with inline SVG:
no JavaScript frameworks, no CSS CDNs, no matplotlib — the file opens
anywhere, ships as a CI artifact, and diffs cleanly in review because
rendering is **deterministic**: the same inputs produce byte-identical
output (no timestamps, no randomness, stable iteration orders, fixed
float formatting).

Build a page with :class:`Dashboard`:

>>> dash = Dashboard(title="polca nightly")
>>> dash.add_sweep_panel(points)            # threshold_search output
>>> dash.add_timeline_panel(result=result, events=events)
>>> dash.add_incident_panel(incidents)
>>> dash.add_victims_panel(attribution)
>>> dash.add_kernel_panel(kernel_rows)
>>> dash.add_savings_panel(ledger_entries)
>>> dash.add_ledger_panel(ledger_entries)
>>> html = dash.render()                    # or dash.write(path)

Each ``add_*`` method degrades gracefully on empty input (the panel
states what is missing instead of crashing), so one dashboard call
works for minimal traces and full mission-control runs alike.

Chart conventions: categorical series colors come from a fixed-order
validated palette (never cycled — a 9th series folds into "other");
lines are 2px on a single y axis; a legend appears for two or more
series; text is never colored by series. Values are also available as
HTML tables next to every chart, so nothing is color-alone.
"""

from __future__ import annotations

import math
from html import escape
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.query import group_aggregate, shard_of_server

__all__ = [
    "Dashboard",
    "PALETTE",
    "render_sparkline",
]

#: Fixed-order categorical palette (colorblind-validated: adjacent-pair
#: CVD deltas pass on the light surface below). Series take colors in
#: this order, never cycled.
PALETTE: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

_SURFACE = "#fcfcfb"
_INK = "#1a1a19"
_INK_MUTED = "#6e6e69"
_GRID = "#e6e6e2"

_CSS = """
body { background: %(surface)s; color: %(ink)s;
  font: 14px/1.45 system-ui, sans-serif; margin: 24px auto;
  max-width: 960px; padding: 0 16px; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 8px; }
p.sub { color: %(muted)s; margin: 0 0 12px; }
table { border-collapse: collapse; margin: 8px 0; width: 100%%; }
th { text-align: left; color: %(muted)s; font-weight: 500;
  border-bottom: 1px solid %(grid)s; padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid %(grid)s; padding: 4px 10px 4px 0;
  font-variant-numeric: tabular-nums; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0; }
.tile { border: 1px solid %(grid)s; border-radius: 6px;
  padding: 10px 14px; min-width: 120px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: %(muted)s; font-size: 12px; }
.legend { margin: 4px 0 0; color: %(ink)s; font-size: 12px; }
.legend span.sw { display: inline-block; width: 12px; height: 12px;
  border-radius: 3px; margin: 0 4px 0 12px; vertical-align: -1px; }
.empty { color: %(muted)s; font-style: italic; }
svg text { font: 11px system-ui, sans-serif; fill: %(muted)s; }
""" % {
    "surface": _SURFACE, "ink": _INK, "muted": _INK_MUTED, "grid": _GRID,
}


def _fmt(value: Any) -> str:
    """Deterministic compact rendering of one cell value."""
    if isinstance(value, bool) or value is None:
        return escape(str(value))
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return escape(str(value))
        return escape(f"{value:.6g}")
    return escape(str(value))


def _ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering ``[lo, hi]`` (1/2/5 steps)."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = magnitude * mult
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo]


def _line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    x_label: str,
    y_label: str,
    width: int = 640,
    height: int = 240,
) -> str:
    """Inline-SVG line chart (one y axis, 2px lines, fixed palette).

    Series beyond the palette fold into the last color under an
    ``"other"`` legend entry rather than inventing hues.
    """
    named = [(label, [(float(x), float(y)) for x, y in points])
             for label, points in series if points]
    if not named:
        return '<p class="empty">no data points</p>'
    xs = [x for _, pts in named for x, _ in pts]
    ys = [y for _, pts in named for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = (y_hi - y_lo) * 0.05
    y_lo, y_hi = y_lo - pad, y_hi + pad
    left, right, top, bottom = 52, 12, 10, 32

    def sx(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * (width - left - right)

    def sy(y: float) -> float:
        return top + (y_hi - y) / (y_hi - y_lo) * (height - top - bottom)

    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for tick in _ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{left}" y1="{y:.2f}" x2="{width - right}" '
            f'y2="{y:.2f}" stroke="{_GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 3.5:.2f}" '
            f'text-anchor="end">{_fmt(float(tick))}</text>'
        )
    for tick in _ticks(x_lo, x_hi, 6):
        x = sx(tick)
        parts.append(
            f'<text x="{x:.2f}" y="{height - bottom + 16}" '
            f'text-anchor="middle">{_fmt(float(tick))}</text>'
        )
    parts.append(
        f'<line x1="{left}" y1="{height - bottom}" x2="{width - right}" '
        f'y2="{height - bottom}" stroke="{_INK_MUTED}" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{(left + width - right) / 2:.2f}" y="{height - 4}" '
        f'text-anchor="middle">{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="12" y="{(top + height - bottom) / 2:.2f}" '
        f'text-anchor="middle" transform="rotate(-90 12 '
        f'{(top + height - bottom) / 2:.2f})">{escape(y_label)}</text>'
    )
    for index, (_, points) in enumerate(named):
        color = PALETTE[min(index, len(PALETTE) - 1)]
        coords = " ".join(
            f"{sx(x):.2f},{sy(y):.2f}" for x, y in points
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
        if len(points) <= 12:
            for x, y in points:
                parts.append(
                    f'<circle cx="{sx(x):.2f}" cy="{sy(y):.2f}" r="3.5" '
                    f'fill="{color}" stroke="{_SURFACE}" '
                    f'stroke-width="2"/>'
                )
    parts.append("</svg>")
    if len(named) >= 2:
        swatches = []
        for index, (label, _) in enumerate(named):
            color = PALETTE[min(index, len(PALETTE) - 1)]
            name = label if index < len(PALETTE) else f"{label} (other)"
            swatches.append(
                f'<span class="sw" style="background:{color}"></span>'
                f"{escape(name)}"
            )
        parts.append(f'<div class="legend">{"".join(swatches)}</div>')
    return "".join(parts)


def render_sparkline(
    values: Sequence[float],
    width: int = 140,
    height: int = 28,
    color: str = PALETTE[0],
) -> str:
    """A tiny inline-SVG trend line (for table cells)."""
    points = [float(v) for v in values]
    if len(points) < 2:
        return '<span class="empty">&mdash;</span>'
    lo, hi = min(points), max(points)
    if hi == lo:
        hi = lo + 1.0
    step = (width - 4) / (len(points) - 1)
    coords = " ".join(
        f"{2 + i * step:.2f},"
        f"{2 + (hi - v) / (hi - lo) * (height - 4):.2f}"
        for i, v in enumerate(points)
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img"><polyline points="{coords}" '
        f'fill="none" stroke="{color}" stroke-width="2" '
        f'stroke-linejoin="round"/></svg>'
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    if not rows:
        return '<p class="empty">nothing to show</p>'
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body_rows = []
    for row in rows:
        cells = []
        for cell in row:
            # Cells that are already markup (sparklines, share bars
            # with embedded <svg>) pass through; everything else is
            # escaped data.
            if isinstance(cell, str) and "<svg" in cell:
                cells.append(f"<td>{cell}</td>")
            else:
                cells.append(f"<td>{_fmt(cell)}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return f"<table><tr>{head}</tr>{''.join(body_rows)}</table>"


def _tiles(items: Sequence[Tuple[str, Any]]) -> str:
    cells = "".join(
        f'<div class="tile"><div class="v">{_fmt(value)}</div>'
        f'<div class="k">{escape(label)}</div></div>'
        for label, value in items
    )
    return f'<div class="tiles">{cells}</div>'


def _downsample(
    points: Sequence[Tuple[float, float]], limit: int = 400
) -> List[Tuple[float, float]]:
    """Deterministic stride decimation (keeps first and last points)."""
    if len(points) <= limit:
        return list(points)
    stride = -(-len(points) // limit)
    sampled = list(points[::stride])
    if sampled[-1] != points[-1]:
        sampled.append(points[-1])
    return sampled


class Dashboard:
    """Accumulates panels and renders the mission-control page.

    Attributes:
        title: Page heading.
        subtitle: One line under the heading (put run identity here —
            never a wall-clock timestamp, which would break the
            byte-identical-render guarantee).
    """

    def __init__(self, title: str = "Mission control",
                 subtitle: str = "") -> None:
        self.title = title
        self.subtitle = subtitle
        self._panels: List[Tuple[str, str]] = []

    def add_panel(self, title: str, body_html: str) -> None:
        """Append a raw panel (already-rendered HTML body)."""
        self._panels.append((title, body_html))

    # ------------------------------------------------------------------
    # Figure-13-style sweep curves
    # ------------------------------------------------------------------
    def add_sweep_panel(
        self,
        points: Dict[Tuple[str, float], Any],
        metric: str = "normalized_p99",
        title: str = "Threshold sweep",
    ) -> None:
        """Sweep curves from :func:`repro.core.sweeps.threshold_search`.

        ``points`` maps ``(combo_label, added_fraction)`` to
        :class:`~repro.core.sweeps.SweepPoint`; ``metric`` is one of
        the per-priority SweepPoint dict fields (``normalized_p50``,
        ``normalized_p99``, ``normalized_throughput``). The curve
        plots the worst tier at each point (max for latency metrics,
        min for throughput), which is the SLO-relevant envelope.
        """
        if metric not in (
            "normalized_p50", "normalized_p99", "normalized_throughput",
        ):
            raise ConfigurationError(
                f"unknown sweep metric {metric!r}"
            )
        worst = min if metric == "normalized_throughput" else max
        curves: Dict[str, List[Tuple[float, float]]] = {}
        for (label, fraction), point in sorted(
            points.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            tiers = getattr(point, metric)
            if not tiers:
                continue
            curves.setdefault(label, []).append(
                (fraction * 100.0, worst(tiers.values()))
            )
        body = _line_chart(
            sorted(curves.items()),
            x_label="added servers (%)",
            y_label=metric.replace("_", " "),
        )
        rows = [
            (label, x, y)
            for label, pts in sorted(curves.items()) for x, y in pts
        ]
        body += _table(("combo", "added %", metric.replace("_", " ")),
                       rows)
        self.add_panel(title, body)

    # ------------------------------------------------------------------
    # Power / utilization timeline
    # ------------------------------------------------------------------
    def add_timeline_panel(
        self,
        result: Any = None,
        events: Optional[Sequence[Dict[str, Any]]] = None,
        title: str = "Power utilization timeline",
    ) -> None:
        """True row utilization vs the policy's observed view.

        ``result`` contributes the ground-truth ``power_series``
        (normalized by provisioned power so both series share one
        axis); ``events`` contribute the controller's observed
        utilization (``control`` events). Either side is optional.
        """
        series: List[Tuple[str, List[Tuple[float, float]]]] = []
        if result is not None and len(result.power_series.values):
            ts = result.power_series
            provisioned = result.provisioned_power_w or 1.0
            true_points = [
                (ts.start + i * ts.interval, float(v) / provisioned)
                for i, v in enumerate(ts.values)
            ]
            series.append(("true utilization",
                           _downsample(true_points)))
        if events:
            from repro.obs.analyze import utilization_points

            observed = utilization_points(events)
            if observed:
                series.append(("policy view", _downsample(observed)))
        body = _line_chart(
            series, x_label="simulation time (s)",
            y_label="row utilization",
        )
        if series:
            body += _table(
                ("series", "points", "min", "mean", "max"),
                [
                    (
                        label, len(pts),
                        min(y for _, y in pts),
                        sum(y for _, y in pts) / len(pts),
                        max(y for _, y in pts),
                    )
                    for label, pts in series
                ],
            )
        self.add_panel(title, body)

    # ------------------------------------------------------------------
    # Per-shard activity from a merged distributed trace
    # ------------------------------------------------------------------
    def add_shard_panel(
        self,
        events: Sequence[Dict[str, Any]],
        n_shards: int,
        title: str = "Shard activity",
    ) -> None:
        """Per-shard event rates and top kinds from a merged trace.

        Consumes a merged sharded trace (see
        :func:`repro.obs.collect.merge_segments`) through the query
        engine: each event routes to the shard owning its ``server``
        under :func:`repro.obs.query.shard_of_server`; events without
        a server — control decisions, issues, run metadata — report
        as the control plane. One row per segment shows its event
        count, event rate over the trace's time span, and dominant
        kind; a second table ranks the overall top event kinds.
        """
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be positive, got {n_shards}"
            )
        events = list(events)
        if not events:
            self.add_panel(title, '<p class="empty">nothing to show</p>')
            return
        times = [
            float(event["t"]) for event in events
            if isinstance(event.get("t"), (int, float))
            and not isinstance(event.get("t"), bool)
        ]
        span_s = max(times) - min(times) if len(times) > 1 else 0.0
        groups: Dict[Optional[int], List[Dict[str, Any]]] = {}
        for event in events:
            shard = shard_of_server(event.get("server"), n_shards)
            groups.setdefault(shard, []).append(event)
        rows = []
        for shard in sorted(
            groups, key=lambda s: (s is None, -1 if s is None else s)
        ):
            members = groups[shard]
            # group rows come back kind-sorted, and max() keeps the
            # first maximal element — so ties break to the
            # lexicographically smallest kind, deterministically.
            kinds = group_aggregate(members, by="kind")
            top = max(kinds, key=lambda row: row["count"])
            rows.append((
                "control plane" if shard is None else f"shard {shard}",
                len(members),
                len(members) / span_s if span_s > 0 else 0.0,
                top["kind"],
                top["count"],
            ))
        body = _table(
            ("segment", "events", "events/s", "top kind", "top events"),
            rows,
        )
        overall = sorted(
            group_aggregate(events, by="kind"),
            key=lambda row: (-row["count"], str(row["kind"])),
        )[:8]
        body += _table(
            ("kind", "events"),
            [(row["kind"], row["count"]) for row in overall],
        )
        self.add_panel(title, body)

    # ------------------------------------------------------------------
    # Incidents
    # ------------------------------------------------------------------
    def add_incident_panel(
        self,
        incidents: Sequence[Any],
        title: str = "Incidents",
    ) -> None:
        """Alert-engine incidents (dicts or Incident objects)."""
        rows = []
        for item in incidents:
            get = item.get if isinstance(item, dict) \
                else lambda k, _i=item: getattr(_i, k, None)
            resolved = get("resolved_at")
            rows.append((
                get("rule"), get("severity"),
                f"{float(get('opened_at') or 0.0):.1f}s",
                "open" if resolved is None else f"{float(resolved):.1f}s",
                get("peak_value"), get("description"),
            ))
        self.add_panel(title, _table(
            ("rule", "severity", "opened", "resolved", "peak",
             "condition"),
            rows,
        ))

    # ------------------------------------------------------------------
    # Attribution: top victims
    # ------------------------------------------------------------------
    def add_victims_panel(
        self,
        report: Any,
        n: int = 10,
        title: str = "Top slowdown victims",
    ) -> None:
        """The requests that absorbed the most excess latency.

        ``report`` is an :class:`~repro.obs.attribution
        .AttributionReport`; rows come from
        :func:`~repro.obs.attribution.top_victims`.
        """
        from repro.obs.attribution import top_victims

        victims = top_victims(report, n=n) if report.requests else []
        rows = []
        for victim in victims:
            actions = sorted(
                victim.by_action_s.items(), key=lambda kv: (-kv[1], kv[0])
            )
            rows.append((
                victim.request_id, victim.priority or "?",
                victim.workload or "?",
                f"{victim.realized_s:.3f}",
                f"{float(victim.exact_excess):.3f}",
                actions[0][0] if actions else "-",
            ))
        self.add_panel(title, _table(
            ("request", "priority", "workload", "realized s",
             "excess s", "dominant cause"),
            rows,
        ))

    # ------------------------------------------------------------------
    # Kernel timers
    # ------------------------------------------------------------------
    def add_kernel_panel(
        self,
        stats: Sequence[Any],
        title: str = "Simulator kernel timers",
    ) -> None:
        """Per-event-kind handler cost (:func:`repro.exec.profile
        .kernel_stats` rows, or dicts with the same keys)."""
        rows = []
        normalized = []
        for stat in stats:
            if isinstance(stat, dict):
                kind = stat["kind"]
                calls = int(stat["calls"])
                seconds = float(stat["seconds"])
                mean_us = seconds / calls * 1e6 if calls else 0.0
            else:
                kind, calls = stat.kind, stat.calls
                seconds, mean_us = stat.seconds, stat.mean_us
            normalized.append((kind, calls, seconds, mean_us))
        total = sum(seconds for _, _, seconds, _ in normalized) or 1.0
        for kind, calls, seconds, mean_us in sorted(
            normalized, key=lambda row: (-row[2], row[0])
        ):
            share = seconds / total
            bar_w = max(1, round(share * 160))
            bar = (
                f'<svg viewBox="0 0 160 12" width="160" height="12" '
                f'role="img"><rect x="0" y="1" width="{bar_w}" '
                f'height="10" rx="3" fill="{PALETTE[0]}"/></svg>'
            )
            rows.append((
                kind, calls, f"{seconds:.4f}", f"{mean_us:.2f}",
                f"{share * 100.0:.1f}% {bar}",
            ))
        self.add_panel(title, _table(
            ("event kind", "calls", "seconds", "mean µs", "share"),
            rows,
        ))

    # ------------------------------------------------------------------
    # Cache / incremental savings
    # ------------------------------------------------------------------
    def add_savings_panel(
        self,
        entries: Sequence[Dict[str, Any]],
        title: str = "Cache and incremental savings",
    ) -> None:
        """Stat tiles computed from experiment-ledger entries."""
        runs = [e for e in entries if e.get("kind") == "run"]
        hits = [e for e in runs
                if (e.get("provenance") or {}).get("cache_hit")]
        executed = [e for e in runs
                    if not (e.get("provenance") or {}).get("cache_hit")]
        resumed = sum(
            1 for e in runs
            if (e.get("provenance") or {}).get("incremental_resumed")
        )
        reused = sum(
            1 for e in runs
            if (e.get("provenance") or {}).get("incremental_reused")
        )
        quarantined = sum(
            1 for e in runs
            if (e.get("provenance") or {}).get("quarantined")
        )
        retries = sum(
            int((e.get("provenance") or {}).get("retries") or 0)
            for e in runs
        )
        walls = [float(e.get("wall_s") or 0.0) for e in executed]
        mean_wall = sum(walls) / len(walls) if walls else 0.0
        saved = mean_wall * len(hits)
        self.add_panel(title, _tiles((
            ("ledger runs", len(runs)),
            ("executed", len(executed)),
            ("cache hits", len(hits)),
            ("est. seconds saved", round(saved, 3)),
            ("incremental resumes", resumed),
            ("incremental reuses", reused),
            ("retries", retries),
            ("quarantined", quarantined),
        )))

    # ------------------------------------------------------------------
    # Ledger history
    # ------------------------------------------------------------------
    def add_ledger_panel(
        self,
        entries: Sequence[Dict[str, Any]],
        title: str = "Run ledger history",
    ) -> None:
        """Per-configuration history with wall-time sparklines.

        Entries group by ``(policy, seed, duration)``; each row shows
        the group's run count, last wall time and energy, and a
        sparkline of wall times over the ledger's history.
        """
        groups: Dict[Tuple[str, Any, Any], List[Dict[str, Any]]] = {}
        for entry in entries:
            if entry.get("kind") != "run":
                continue
            key = (
                str(entry.get("policy")), entry.get("seed"),
                entry.get("duration_s"),
            )
            groups.setdefault(key, []).append(entry)
        rows = []
        for key in sorted(groups, key=lambda k: (k[0], str(k[1]))):
            history = groups[key]
            walls = [float(e.get("wall_s") or 0.0) for e in history]
            last = history[-1]
            metrics = last.get("metrics") or {}
            rows.append((
                key[0], key[1], len(history),
                f"{walls[-1]:.3f}",
                _fmt(metrics.get("total_energy_j")),
                metrics.get("power_brake_events"),
                f"<td>{render_sparkline(walls)}</td>",
            ))
        table_rows = []
        for row in rows:
            cells = "".join(
                cell if isinstance(cell, str) and cell.startswith("<td")
                else f"<td>{_fmt(cell)}</td>"
                for cell in row
            )
            table_rows.append(f"<tr>{cells}</tr>")
        if not rows:
            self.add_panel(title, '<p class="empty">ledger is empty</p>')
            return
        head = "".join(
            f"<th>{escape(h)}</th>"
            for h in ("policy", "seed", "runs", "last wall s",
                      "energy J", "brakes", "wall trend")
        )
        self.add_panel(
            title,
            f"<table><tr>{head}</tr>{''.join(table_rows)}</table>",
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full page. Pure function of the added panels."""
        sections = "".join(
            f"<section><h2>{escape(title)}</h2>{body}</section>"
            for title, body in self._panels
        )
        subtitle = (
            f'<p class="sub">{escape(self.subtitle)}</p>'
            if self.subtitle else ""
        )
        return (
            "<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">\n'
            f"<title>{escape(self.title)}</title>\n"
            f"<style>{_CSS}</style></head>\n"
            f"<body><h1>{escape(self.title)}</h1>{subtitle}"
            f"{sections}</body></html>\n"
        )

    def write(self, path: str) -> str:
        """Render to ``path``; returns the path."""
        html = self.render()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(html)
        return path
