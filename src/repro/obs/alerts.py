"""Declarative alerting over the live event stream.

The paper's operating model is an operator (human or controller) who
watches a power signal and reacts inside an actuation deadline. This
module turns that into code: a set of :class:`AlertRule`\\ s evaluated
online against the simulator's trace events by an :class:`AlertEngine`
(itself a :class:`~repro.obs.recorder.TraceRecorder`, so it attaches
anywhere a sink does — alone or teed with storage sinks).

Rule semantics follow production alerting pipelines:

* **for-duration**: a condition must hold *continuously* for ``for_s``
  simulated seconds before an incident opens (a single in-range sample
  resets the pending timer);
* **hysteresis**: an open incident resolves only when the signal falls
  to the ``clear`` threshold, which may sit below the firing threshold
  — no flapping on a signal that hovers at the line;
* **deduplication**: at most one open incident per rule; further
  breaches while open update the incident's peak instead of duplicating
  it.

Incidents carry an open → resolve lifecycle with simulation timestamps
and are JSON-round-trippable, so the simulator snapshots them into
``SimulationResult.observability["incidents"]`` and
:func:`merge_incident_snapshots` can merge them across a sweep.

:func:`default_rules` encodes the situations the rest of the repo
treats as emergencies: sustained over-budget power, brake storms,
stale-telemetry fallback flapping, cap-reissue churn, and SLO
violation rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.obs.recorder import TraceEvent, TraceRecorder

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Incident",
    "RateRule",
    "SloViolationRule",
    "ThresholdRule",
    "default_rules",
    "incident_table",
    "merge_incident_snapshots",
]

#: Recognized severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass
class Incident:
    """One alert firing, from open to (possible) resolve.

    Attributes:
        rule: Name of the rule that fired.
        severity: The rule's severity.
        opened_at: Simulation time the condition completed its
            for-duration.
        breached_at: Simulation time the condition first breached (the
            start of the sustained window).
        resolved_at: When the signal cleared (``None`` while open, or
            when the run ended with the incident still open).
        trigger_value: Signal value at open time.
        peak_value: Worst signal value observed while open.
        description: The rule's human-readable condition.
    """

    rule: str
    severity: str
    opened_at: float
    breached_at: float
    trigger_value: float
    peak_value: float
    description: str = ""
    resolved_at: Optional[float] = None

    @property
    def open(self) -> bool:
        """Whether the incident has not resolved."""
        return self.resolved_at is None

    @property
    def duration_s(self) -> Optional[float]:
        """Open-to-resolve span (``None`` while open)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.opened_at

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the snapshot/merge interchange)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "opened_at": self.opened_at,
            "breached_at": self.breached_at,
            "resolved_at": self.resolved_at,
            "trigger_value": self.trigger_value,
            "peak_value": self.peak_value,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Incident":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            opened_at=float(data["opened_at"]),
            breached_at=float(data["breached_at"]),
            resolved_at=(
                None if data.get("resolved_at") is None
                else float(data["resolved_at"])
            ),
            trigger_value=float(data["trigger_value"]),
            peak_value=float(data["peak_value"]),
            description=str(data.get("description", "")),
        )


class AlertRule:
    """Base class: a named, severity-tagged streaming condition.

    Subclasses implement :meth:`observe` (ingest one matching event)
    and :meth:`level` (current signal value, ``None`` while there is
    not enough data), plus :meth:`breached`/:meth:`cleared` threshold
    tests. The :class:`AlertEngine` owns the pending/firing state
    machine so every rule gets identical for-duration and hysteresis
    semantics.

    Attributes:
        name: Unique rule name (the incident key).
        severity: One of :data:`SEVERITIES`.
        for_s: How long the condition must hold before firing.
        description: Human-readable condition, shown on incidents.
    """

    def __init__(
        self,
        name: str,
        severity: str = "warning",
        for_s: float = 0.0,
        description: str = "",
    ) -> None:
        if not name:
            raise ConfigurationError("rules need a name")
        if severity not in SEVERITIES:
            raise ConfigurationError(
                f"severity must be one of {SEVERITIES}, got {severity!r}"
            )
        if for_s < 0:
            raise ConfigurationError("for_s cannot be negative")
        self.name = name
        self.severity = severity
        self.for_s = float(for_s)
        self.description = description

    def observe(self, t: float, event: TraceEvent) -> None:
        """Ingest one event (the engine pre-filters nothing)."""
        raise NotImplementedError

    def level(self, now: float) -> Optional[float]:
        """The signal value at ``now`` (``None`` = no data yet)."""
        raise NotImplementedError

    def breached(self, value: float) -> bool:
        """Whether ``value`` violates the firing threshold."""
        raise NotImplementedError

    def cleared(self, value: float) -> bool:
        """Whether ``value`` satisfies the resolve threshold."""
        raise NotImplementedError


class ThresholdRule(AlertRule):
    """Signal-over-threshold with for-duration and hysteresis.

    Watches ``field`` of ``kind`` events; the last observed value
    persists between events (the signal is piecewise constant from the
    monitor's point of view). Fires when the value stays above
    ``above`` for ``for_s`` seconds; an open incident resolves when the
    value drops to ``clear_below`` or lower (defaults to ``above``).

    The canonical instance is sustained over-budget row power:
    ``ThresholdRule("over-budget", kind="control", field="utilization",
    above=1.0, for_s=30.0, clear_below=0.98)``.
    """

    def __init__(
        self,
        name: str,
        *,
        kind: str,
        field: str,
        above: float,
        for_s: float = 0.0,
        clear_below: Optional[float] = None,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        clear = above if clear_below is None else float(clear_below)
        if clear > above:
            raise ConfigurationError(
                "clear_below must not exceed the firing threshold"
            )
        super().__init__(
            name, severity=severity, for_s=for_s,
            description=description
            or f"{kind}.{field} > {above} for {for_s:g}s",
        )
        self.kind = kind
        self.field = field
        self.above = float(above)
        self.clear_below = clear
        self._last: Optional[float] = None

    def observe(self, t: float, event: TraceEvent) -> None:
        if event.get("kind") != self.kind:
            return
        value = event.get(self.field)
        if value is not None:
            self._last = float(value)

    def level(self, now: float) -> Optional[float]:
        return self._last

    def breached(self, value: float) -> bool:
        return value > self.above

    def cleared(self, value: float) -> bool:
        return value <= self.clear_below


class RateRule(AlertRule):
    """Too many events of one kind inside a sliding window.

    Fires when strictly more than ``max_count`` events of ``kind``
    land within ``window_s`` seconds; resolves when the windowed count
    slides back to ``clear_count`` (default ``max_count``) or fewer.
    ``for_s`` defaults to 0: the Nth event in the window is already a
    sustained condition.

    This family covers brake storms (``brake_request``), fallback
    flapping (``fallback_enter``), and cap-reissue churn
    (``cap_reissue``) — same machinery, different event kind.
    """

    def __init__(
        self,
        name: str,
        *,
        kind: str,
        window_s: float,
        max_count: int,
        clear_count: Optional[int] = None,
        for_s: float = 0.0,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if max_count < 0:
            raise ConfigurationError("max_count cannot be negative")
        clear = max_count if clear_count is None else int(clear_count)
        if clear > max_count:
            raise ConfigurationError(
                "clear_count must not exceed max_count"
            )
        super().__init__(
            name, severity=severity, for_s=for_s,
            description=description
            or f"more than {max_count} {kind} events in {window_s:g}s",
        )
        self.kind = kind
        self.window_s = float(window_s)
        self.max_count = int(max_count)
        self.clear_count = clear
        self._times: Deque[float] = deque()

    def observe(self, t: float, event: TraceEvent) -> None:
        if event.get("kind") == self.kind:
            self._times.append(t)

    def level(self, now: float) -> Optional[float]:
        cutoff = now - self.window_s
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()
        return float(len(times))

    def breached(self, value: float) -> bool:
        return value > self.max_count

    def cleared(self, value: float) -> bool:
        return value <= self.clear_count


class SloViolationRule(AlertRule):
    """Served-request SLO violation rate over a sliding window.

    Watches ``serve`` events; a request violates when its ``latency_s``
    exceeds ``slo_latency_s``. Fires when the violating fraction of the
    last ``window_s`` seconds of serves exceeds ``max_fraction`` (with
    at least ``min_samples`` serves in the window — a single slow
    request on a quiet row is not an incident); resolves at
    ``clear_fraction`` (default ``max_fraction``) or lower.
    """

    def __init__(
        self,
        name: str,
        *,
        slo_latency_s: float,
        window_s: float,
        max_fraction: float,
        clear_fraction: Optional[float] = None,
        min_samples: int = 10,
        priority: Optional[str] = None,
        for_s: float = 0.0,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        if slo_latency_s <= 0:
            raise ConfigurationError("slo_latency_s must be positive")
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0.0 <= max_fraction <= 1.0:
            raise ConfigurationError("max_fraction must be within [0, 1]")
        clear = max_fraction if clear_fraction is None \
            else float(clear_fraction)
        if clear > max_fraction:
            raise ConfigurationError(
                "clear_fraction must not exceed max_fraction"
            )
        if min_samples < 1:
            raise ConfigurationError("min_samples must be positive")
        scope = f" ({priority})" if priority else ""
        super().__init__(
            name, severity=severity, for_s=for_s,
            description=description
            or (f"more than {max_fraction:.0%} of serves{scope} over "
                f"{slo_latency_s:g}s latency in {window_s:g}s"),
        )
        self.slo_latency_s = float(slo_latency_s)
        self.window_s = float(window_s)
        self.max_fraction = float(max_fraction)
        self.clear_fraction = clear
        self.min_samples = int(min_samples)
        self.priority = priority
        self._serves: Deque[Tuple[float, bool]] = deque()

    def observe(self, t: float, event: TraceEvent) -> None:
        if event.get("kind") != "serve":
            return
        if self.priority is not None \
                and event.get("priority") != self.priority:
            return
        latency = event.get("latency_s")
        if latency is None:
            return
        self._serves.append((t, float(latency) > self.slo_latency_s))

    def level(self, now: float) -> Optional[float]:
        cutoff = now - self.window_s
        serves = self._serves
        while serves and serves[0][0] <= cutoff:
            serves.popleft()
        if len(serves) < self.min_samples:
            return None
        violations = sum(1 for _, violated in serves if violated)
        return violations / len(serves)

    def breached(self, value: float) -> bool:
        return value > self.max_fraction

    def cleared(self, value: float) -> bool:
        return value <= self.clear_fraction


def default_rules(
    *,
    slo_latency_s: float = 60.0,
    brake_storm_window_s: float = 600.0,
    brake_storm_count: int = 2,
) -> List[AlertRule]:
    """The standing alert set for a POLCA row.

    * ``over-budget`` (critical): observed utilization above 1.0 for a
      sustained 30 s, clearing only once it falls to 0.98 — the breaker
      is being gambled with;
    * ``brake-storm`` (critical): more than ``brake_storm_count``
      brake engagements inside ``brake_storm_window_s`` — the row is
      surviving on its emergency mechanism (Figure 18's No-cap mode);
    * ``fallback-flapping`` (warning): repeated stale-telemetry
      fallback entries within 30 min — the telemetry path is sick, not
      just blipped;
    * ``cap-churn`` (warning): more than 5 cap re-issues in 10 min —
      the actuation path is eating the reliable-command budget;
    * ``slo-violations`` (warning): over 20% of served requests beyond
      ``slo_latency_s`` in a 10 min window;
    * ``trip-risk`` (critical): a protection device's thermal
      accumulator crossed its risk threshold (``trip_risk`` events from
      :mod:`repro.powerfail`) — a breaker is heating toward a trip;
      clears only when the device re-arms;
    * ``capacity-loss`` (critical): any fraction of the row's servers
      is de-energized behind a tripped breaker; clears when the last
      subtree re-energizes.
    """
    return [
        ThresholdRule(
            "over-budget", kind="control", field="utilization",
            above=1.0, for_s=30.0, clear_below=0.98, severity="critical",
        ),
        RateRule(
            "brake-storm", kind="brake_request",
            window_s=brake_storm_window_s, max_count=brake_storm_count,
            severity="critical",
        ),
        RateRule(
            "fallback-flapping", kind="fallback_enter",
            window_s=1800.0, max_count=2, severity="warning",
        ),
        RateRule(
            "cap-churn", kind="cap_reissue",
            window_s=600.0, max_count=5, severity="warning",
        ),
        SloViolationRule(
            "slo-violations", slo_latency_s=slo_latency_s,
            window_s=600.0, max_fraction=0.2, min_samples=20,
            severity="warning",
        ),
        ThresholdRule(
            "trip-risk", kind="trip_risk", field="at_risk",
            above=0.5, clear_below=0.0, severity="critical",
            description="a breaker's thermal accumulator is at risk of "
            "tripping",
        ),
        ThresholdRule(
            "capacity-loss", kind="capacity_status",
            field="offline_fraction", above=0.0, clear_below=0.0,
            severity="critical",
            description="servers are de-energized behind a tripped "
            "breaker",
        ),
    ]


@dataclass
class _RuleState:
    """Engine-side lifecycle state for one rule."""

    rule: AlertRule
    breach_since: Optional[float] = None
    incident: Optional[Incident] = None  # the open one, if any


class AlertEngine(TraceRecorder):
    """Evaluates a rule set against the event stream, live.

    Attach it like any recorder (or replay a stored trace through
    :meth:`replay`); incidents accumulate on :attr:`incidents` in open
    order. Determinism: the engine is a pure function of the event
    stream, so replaying a recorded trace yields the identical incident
    list the live run produced.
    """

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        chosen = default_rules() if rules is None else list(rules)
        names = [rule.name for rule in chosen]
        if len(set(names)) != len(names):
            raise ConfigurationError("rule names must be unique")
        self.rules: List[AlertRule] = chosen
        self.incidents: List[Incident] = []
        self._states = [_RuleState(rule) for rule in chosen]
        self._last_t: Optional[float] = None

    @property
    def open_incidents(self) -> List[Incident]:
        """Incidents that have not resolved yet."""
        return [incident for incident in self.incidents if incident.open]

    def emit(self, event: TraceEvent) -> None:
        t = event.get("t")
        if t is None:
            return  # engine (wall-clock) events carry no simulation time
        t = float(t)
        self._last_t = t
        for state in self._states:
            state.rule.observe(t, event)
            self._step(state, t)

    def _step(self, state: _RuleState, now: float) -> None:
        rule = state.rule
        value = rule.level(now)
        if value is None:
            return
        incident = state.incident
        if incident is not None:
            if value > incident.peak_value:
                incident.peak_value = value
            if rule.cleared(value):
                incident.resolved_at = now
                state.incident = None
                state.breach_since = None
            return
        if not rule.breached(value):
            state.breach_since = None  # continuity broken: timer resets
            return
        if state.breach_since is None:
            state.breach_since = now
        if now - state.breach_since >= rule.for_s:
            opened = Incident(
                rule=rule.name,
                severity=rule.severity,
                opened_at=now,
                breached_at=state.breach_since,
                trigger_value=value,
                peak_value=value,
                description=rule.description,
            )
            state.incident = opened
            self.incidents.append(opened)

    def finalize(self, t_end: float) -> None:
        """Evaluate every rule once at the end of the run.

        Sliding windows may have drained since the last event, which
        can resolve rate-based incidents; incidents whose condition
        still holds stay open (``resolved_at = None``) — a run that
        ends in trouble reports it that way.
        """
        self._last_t = t_end
        for state in self._states:
            self._step(state, t_end)

    def replay(self, events: Iterable[TraceEvent]) -> "AlertEngine":
        """Feed a stored event stream through the engine; returns self."""
        for event in events:
            self.emit(event)
        return self

    def counts(self) -> Dict[str, Any]:
        """Summary counters (by rule and severity)."""
        by_rule: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        by_severity: Dict[str, int] = {}
        open_count = 0
        for incident in self.incidents:
            by_rule[incident.rule] = by_rule.get(incident.rule, 0) + 1
            by_severity[incident.severity] = \
                by_severity.get(incident.severity, 0) + 1
            if incident.open:
                open_count += 1
        return {
            "opened": len(self.incidents),
            "resolved": len(self.incidents) - open_count,
            "open": open_count,
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        }

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        """Incidents plus summary counters, JSON-serializable."""
        return {
            "incidents": [
                incident.to_dict() for incident in self.incidents
            ],
            "alerts": self.counts(),
        }


def merge_incident_snapshots(
    snapshots: Iterable[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge per-run incident snapshots across a sweep.

    Accepts the dicts stored at ``SimulationResult.observability`` (or
    the engines' own snapshots); entries of ``None`` — or without an
    ``"incidents"`` key — are skipped. Incident lists concatenate in
    input order and the summary counters re-derive from the merged
    list, so the result has the same shape as a single snapshot.
    """
    incidents: List[Dict[str, Any]] = []
    by_rule: Dict[str, int] = {}
    by_severity: Dict[str, int] = {}
    open_count = 0
    for snapshot in snapshots:
        if not snapshot or "incidents" not in snapshot:
            continue
        for data in snapshot["incidents"]:
            incidents.append(dict(data))
            rule = str(data["rule"])
            severity = str(data["severity"])
            by_rule[rule] = by_rule.get(rule, 0) + 1
            by_severity[severity] = by_severity.get(severity, 0) + 1
            if data.get("resolved_at") is None:
                open_count += 1
    return {
        "incidents": incidents,
        "alerts": {
            "opened": len(incidents),
            "resolved": len(incidents) - open_count,
            "open": open_count,
            "by_rule": dict(sorted(by_rule.items())),
            "by_severity": dict(sorted(by_severity.items())),
        },
    }


def incident_table(
    incidents: Sequence[Any],
) -> List[str]:
    """Render incidents (objects or dicts) as aligned table lines."""
    rows = []
    for item in incidents:
        incident = item if isinstance(item, Incident) \
            else Incident.from_dict(item)
        resolved = (
            "open" if incident.resolved_at is None
            else f"{incident.resolved_at:9.1f}s"
        )
        rows.append((
            incident.rule, incident.severity,
            f"{incident.opened_at:9.1f}s", resolved,
            f"{incident.peak_value:.3g}", incident.description,
        ))
    header = ("rule", "severity", "opened", "resolved", "peak",
              "condition")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return lines
