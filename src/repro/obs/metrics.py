"""Counters, gauges, and histograms for simulation observability.

A :class:`MetricsRegistry` is a small, dependency-free metrics surface
in the style of the exporters production power-telemetry pipelines hang
off every server. The cluster simulator populates one per instrumented
run and snapshots it into ``SimulationResult.observability``; the sweep
engine keeps a long-lived one that aggregates across batches. Snapshots
are plain JSON-serializable dicts, so they survive the run-cache codec
and can be merged across runs with :func:`aggregate_snapshots`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds for utilization-like signals.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.25, 0.5, 0.625, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0, 1.05,
)

#: Bucket upper bounds (seconds) for request-latency histograms. Spans
#: the BLOOM-176B latency range of Table 6/7 — sub-second Code requests
#: up to multi-minute General completions under caps and brakes.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 300.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only count up")
        self.value += amount


class Gauge:
    """A point-in-time scalar metric (last write wins).

    A gauge that was never written holds ``value = None`` — an explicit
    unset state, distinct from "set to 0.0" — and snapshots carry that
    ``None`` through. This also makes :meth:`max` correct for
    all-negative signals: the first observation seeds the maximum
    instead of losing against an implicit 0.0.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    @property
    def is_set(self) -> bool:
        """Whether the gauge has ever been written."""
        return self.value is not None

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum of the observed values."""
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Attributes:
        bounds: Upper bucket bounds; an implicit ``+inf`` bucket catches
            everything above the last bound.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bound")
        if list(bounds) != sorted(bounds):
            raise ConfigurationError("histogram bounds must be sorted")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        # First bound >= value (bisect keeps this O(log n) in C — the
        # hot instrumentation paths observe tens of thousands of times
        # per run); everything above the last bound lands in the
        # implicit +inf bucket at index len(bounds).
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Observe a batch of values in one vectorized pass.

        Bucket counts, count, and min/max are exactly what ``len(values)``
        :meth:`observe` calls would produce; the sum is accumulated with
        numpy's pairwise summation, so it can differ from the sequential
        sum in the last ulp. The instrumented simulator batches its
        per-request latency and per-tick utilization lists through here
        at finalize instead of paying a per-event call on the hot path.
        """
        if not values:
            return
        import numpy as np  # deferred: only batch callers pay the import

        arr = np.asarray(values, dtype=float)
        buckets = np.bincount(
            np.searchsorted(self.bounds, arr, side="left"),
            minlength=len(self.counts),
        )
        counts = self.counts
        for index in np.nonzero(buckets)[0]:
            counts[index] += int(buckets[index])
        self.count += len(values)
        self.total += float(arr.sum())
        low = float(arr.min())
        high = float(arr.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    Metric accessors create on first use, so instrumentation sites never
    need registration boilerplate. Names are dotted strings
    (``"requests.served"``); a name is bound to one metric type for the
    registry's lifetime.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get (or create) the histogram ``name``.

        Raises:
            ConfigurationError: If the name exists with other bounds.
        """
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram(bounds)
        elif metric.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {name!r} already registered with bounds "
                f"{metric.bounds}"
            )
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every metric."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(metric.bounds),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }


def aggregate_snapshots(
    snapshots: Iterable[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Merge metric snapshots from many runs into one.

    Counters and histogram buckets add; gauges keep their maximum (the
    convention every gauge in this package follows is "peak observed"),
    with never-written gauges (value ``None``) kept visible but never
    outranking a run that did set them. ``None`` snapshot entries —
    uninstrumented runs — are skipped, so the result aggregates exactly
    the instrumented subset of a sweep.

    Raises:
        ConfigurationError: If two snapshots disagree on a histogram's
            bucket bounds.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Optional[float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    merged_any = False
    for snapshot in snapshots:
        if snapshot is None:
            continue
        merged_any = True
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is None:
                # Unset in this run: keep the name visible, but let any
                # run that did set the gauge win.
                gauges.setdefault(name, None)
                continue
            previous = gauges.get(name)
            gauges[name] = (
                float(value) if previous is None
                else max(previous, float(value))
            )
        for name, data in snapshot.get("histograms", {}).items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {
                    "bounds": list(data["bounds"]),
                    "counts": list(data["counts"]),
                    "count": int(data["count"]),
                    "sum": float(data["sum"]),
                    "min": data["min"],
                    "max": data["max"],
                }
                continue
            if existing["bounds"] != list(data["bounds"]):
                raise ConfigurationError(
                    f"histogram {name!r}: cannot aggregate across "
                    f"differing bucket bounds"
                )
            existing["counts"] = [
                a + b for a, b in zip(existing["counts"], data["counts"])
            ]
            existing["count"] += int(data["count"])
            existing["sum"] += float(data["sum"])
            mins: List[float] = [
                m for m in (existing["min"], data["min"]) if m is not None
            ]
            maxs: List[float] = [
                m for m in (existing["max"], data["max"]) if m is not None
            ]
            existing["min"] = min(mins) if mins else None
            existing["max"] = max(maxs) if maxs else None
    if not merged_any:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
