"""Per-request span trees reconstructed from the simulator's trace stream.

The recorder layer (:mod:`repro.obs.recorder`) sees a flat event stream;
this module folds it back into the shape operators actually debug with:
one span tree per request — arrival → queue-wait → prompt phase → token
phase → completion/drop — where every phase carries its *rate intervals*:
the maximal stretches of simulation time during which the phase ran at
one effective clock ratio. Every cap or brake landing that rescales an
in-flight phase closes the current interval and opens a new one stamped
with the action that caused it (cap priority + generation, brake version
+ source), so a span answers "why was this request slow" directly.

:class:`SpanBuilder` is itself a :class:`~repro.obs.recorder.TraceRecorder`:
attach it live (alone or inside a :class:`~repro.obs.stream.TeeRecorder`)
and it contributes ``spans`` / ``attribution`` sections to
``SimulationResult.observability``; or replay any recorded JSONL trace
post-hoc with :func:`build_spans`. Like every recorder it only observes —
it never touches simulator state, so recorded runs stay bit-identical to
unrecorded ones.

The causal stamping is derived from the builder's *own* replay of the
cap/brake state machines (not from the rescale event's trigger alone):
when a brake releases over a still-capped pool, the interval that opens
is correctly blamed on the underlying cap, and caps commanded during a
stale-telemetry fallback window are flagged so attribution can charge
them to the fallback, not the capping policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.recorder import TraceEvent, TraceRecorder

__all__ = [
    "PhaseSpan",
    "RateInterval",
    "RequestSpan",
    "SpanBuilder",
    "build_spans",
    "render_span_tree",
]


@dataclass
class RateInterval:
    """A maximal stretch of one phase at one effective clock ratio.

    Attributes:
        start: Interval start (simulation seconds).
        end: Interval end; ``None`` while still open.
        ratio: Effective clock ratio during the interval (1.0 = full
            clock; the brake and caps push it below 1.0).
        cause: ``"cap"``, ``"brake"``, or ``None`` for full clock.
        stamp: The action identity behind ``cause`` — for caps
            ``{"priority", "generation", "fallback"}``, for brakes
            ``{"version", "source"}``.
    """

    start: float
    end: Optional[float]
    ratio: float
    cause: Optional[str] = None
    stamp: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> Optional[float]:
        """Interval length, or ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start


@dataclass
class PhaseSpan:
    """One phase (prompt or token) of a request's execution.

    Attributes:
        phase: ``"prompt"`` or ``"token"``.
        phase_index: Position in the request's segment timeline.
        start: Phase start time.
        end: Phase end time; ``None`` while in flight.
        full_clock_s: The phase's duration at the maximum SM clock.
        compute_fraction: Clock sensitivity of the duration (1.0
            stretches inversely with clock, 0.0 is clock-insensitive).
        intervals: Contiguous rate intervals tiling ``[start, end]``.
    """

    phase: str
    phase_index: int
    start: float
    end: Optional[float]
    full_clock_s: float
    compute_fraction: float
    intervals: List[RateInterval] = field(default_factory=list)

    @property
    def seconds(self) -> Optional[float]:
        """Realized phase duration, or ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start


@dataclass
class RequestSpan:
    """The full lifecycle of one request, reconstructed from the trace.

    Attributes:
        request_id: Index of the request in the run's trace (the
            simulator stamps arrival order).
        arrival_t: Arrival time.
        priority: Priority-pool value (``"low"`` / ``"high"``).
        workload: Workload tier name.
        server: Server the request was routed to (``None`` if it was
            dropped at routing time).
        queued: Whether it waited in the server's one-request buffer.
        outcome: ``"served"``, ``"dropped"``, or ``"in_flight"`` (the
            trace ended first — only possible on truncated traces).
        drop_reason: ``"saturated"`` / ``"churn"`` / ``"shed"`` /
            ``"trip"`` when dropped.
        drop_device: The protection device behind a ``"trip"`` drop
            (``None`` otherwise).
        deferrals: Times the request was deferred by emergency load
            shedding before being admitted (or dropped);
            ``arrival_t`` stays the *original* arrival, so the defer
            delay lands in queue wait.
        end_t: Completion or drop time.
        latency_s: The serve event's reported latency (served only).
        phases: Executed phases in order.
    """

    request_id: int
    arrival_t: float
    priority: Optional[str] = None
    workload: Optional[str] = None
    input_tokens: Optional[int] = None
    output_tokens: Optional[int] = None
    server: Optional[str] = None
    queued: bool = False
    outcome: str = "in_flight"
    drop_reason: Optional[str] = None
    drop_device: Optional[str] = None
    deferrals: int = 0
    end_t: Optional[float] = None
    latency_s: Optional[float] = None
    phases: List[PhaseSpan] = field(default_factory=list)

    @property
    def start_t(self) -> Optional[float]:
        """When execution began (``None`` if it never got a slot)."""
        if not self.phases:
            return None
        return self.phases[0].start

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Arrival-to-first-phase wait (``None`` if never started)."""
        if not self.phases:
            return None
        return self.phases[0].start - self.arrival_t

    @property
    def realized_s(self) -> Optional[float]:
        """End-to-end latency (``None`` while in flight)."""
        if self.end_t is None:
            return None
        return self.end_t - self.arrival_t


class SpanBuilder(TraceRecorder):
    """Folds the simulator's event stream into per-request span trees.

    Use it live — pass it (or a :class:`~repro.obs.stream.TeeRecorder`
    containing it) as the simulator's recorder and read
    :meth:`build` afterwards; its :meth:`observability_snapshot`
    contributes ``spans`` and ``attribution`` sections to
    ``SimulationResult.observability`` — or post-hoc on any recorded
    trace via :func:`build_spans` / :meth:`from_source`.

    Events must arrive in stream order (nondecreasing ``t``, ties in
    emission order), which is exactly what the simulator emits and what
    :func:`repro.obs.analyze.load_events` restores from storage. Events
    of unknown kinds are ignored, so traces from newer or older
    simulators degrade gracefully.
    """

    def __init__(self) -> None:
        self.meta: Dict[str, Any] = {}
        self.t_end: Optional[float] = None
        #: Control-plane instants (cap/brake landings, fallback
        #: transitions) retained verbatim so exporters fed a live
        #: builder can still draw the row-control track.
        self.control_events: List[TraceEvent] = []
        self._spans: Dict[int, RequestSpan] = {}
        self._open_phase: Dict[int, PhaseSpan] = {}
        # Replayed cap/brake state machines for causal stamping.
        self._brake_on = False
        self._brake_version: Optional[int] = None
        self._brake_sources: Dict[int, str] = {}
        self._engage_source = "policy"
        self._cap_state: Dict[str, Tuple[float, Optional[int]]] = {}
        self._fallback_generations: Set[Tuple[str, int]] = set()
        self._in_fallback = False
        self._server_priority: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # TraceRecorder interface
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        handler = self._HANDLERS.get(event.get("kind"))
        if handler is not None:
            handler(self, event)

    def finalize(self, t_end: float) -> None:
        self.t_end = float(t_end)

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        # Local import: repro.obs.attribution imports this module.
        from repro.obs.attribution import attribute_run

        outcomes: Dict[str, int] = {}
        for span in self._spans.values():
            outcomes[span.outcome] = outcomes.get(span.outcome, 0) + 1
        return {
            "spans": {"requests": len(self._spans), "outcomes": outcomes},
            "attribution": attribute_run(self).snapshot(),
        }

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source: Any) -> "SpanBuilder":
        """Build from a JSONL path, recorder, or event sequence."""
        if isinstance(source, SpanBuilder):
            return source
        from repro.obs.analyze import load_events

        builder = cls()
        for event in load_events(source):
            builder.emit(event)
        return builder

    def build(self) -> List[RequestSpan]:
        """Every reconstructed span, ordered by request id."""
        return [self._spans[rid] for rid in sorted(self._spans)]

    def get(self, request_id: int) -> Optional[RequestSpan]:
        """The span for one request id, or ``None``."""
        return self._spans.get(request_id)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_run_meta(self, event: TraceEvent) -> None:
        self.meta = dict(event)
        servers = event.get("servers") or {}
        self._server_priority = {
            str(sid): str(priority) for sid, priority in servers.items()
        }

    def _on_req_arrival(self, event: TraceEvent) -> None:
        rid = int(event["request_id"])
        span = self._spans.get(rid)
        if span is None:
            span = RequestSpan(request_id=rid, arrival_t=float(event["t"]))
            self._spans[rid] = span
        # A span opened earlier by a shed_defer keeps its original
        # arrival_t — the defer delay must land in queue wait, matching
        # the simulator's latency accounting.
        span.priority = event.get("priority")
        span.workload = event.get("workload")
        span.input_tokens = event.get("input_tokens")
        span.output_tokens = event.get("output_tokens")
        span.server = event.get("server")
        span.queued = bool(event.get("queued", False))

    def _on_shed_defer(self, event: TraceEvent) -> None:
        rid = int(event["request_id"])
        span = self._spans.get(rid)
        if span is None:
            span = RequestSpan(
                request_id=rid,
                arrival_t=float(event["t"]),
                priority=event.get("priority"),
                workload=event.get("workload"),
            )
            self._spans[rid] = span
        span.deferrals = int(event.get("deferrals", span.deferrals + 1))

    def _require(self, event: TraceEvent) -> RequestSpan:
        rid = int(event["request_id"])
        span = self._spans.get(rid)
        if span is None:
            # Filtered trace (no req_arrival): keep what can be kept.
            span = RequestSpan(request_id=rid, arrival_t=float(event["t"]))
            self._spans[rid] = span
        return span

    def _close_phase(self, rid: int, t: float) -> None:
        phase = self._open_phase.pop(rid, None)
        if phase is None:
            return
        phase.end = t
        if phase.intervals and phase.intervals[-1].end is None:
            phase.intervals[-1].end = t

    def _on_phase_start(self, event: TraceEvent) -> None:
        span = self._require(event)
        t = float(event["t"])
        self._close_phase(span.request_id, t)
        if span.server is None:
            span.server = event.get("server")
        ratio = float(event["ratio"])
        cause, stamp = self._current_cause(event.get("server"), ratio)
        phase = PhaseSpan(
            phase=str(event["phase"]),
            phase_index=int(event.get("phase_index", len(span.phases))),
            start=t,
            end=None,
            full_clock_s=float(event.get("full_clock_s", 0.0)),
            compute_fraction=float(event.get("compute_fraction", 1.0)),
            intervals=[
                RateInterval(
                    start=t, end=None, ratio=ratio,
                    cause=cause, stamp=stamp,
                )
            ],
        )
        span.phases.append(phase)
        self._open_phase[span.request_id] = phase

    def _on_phase_rescale(self, event: TraceEvent) -> None:
        phase = self._open_phase.get(int(event["request_id"]))
        if phase is None:
            return
        t = float(event["t"])
        if phase.intervals and phase.intervals[-1].end is None:
            phase.intervals[-1].end = t
        ratio = float(event["new_ratio"])
        # The cause comes from the replayed state machines, not from the
        # rescale's trigger: a brake *release* over a capped pool opens
        # an interval owed to the cap, not to the brake.
        cause, stamp = self._current_cause(event.get("server"), ratio)
        phase.intervals.append(
            RateInterval(start=t, end=None, ratio=ratio,
                         cause=cause, stamp=stamp)
        )

    def _on_serve(self, event: TraceEvent) -> None:
        if "request_id" not in event:
            return  # a pre-span trace: nothing to anchor the span to
        span = self._require(event)
        t = float(event["t"])
        self._close_phase(span.request_id, t)
        span.outcome = "served"
        span.end_t = t
        span.latency_s = event.get("latency_s")

    def _on_drop(self, event: TraceEvent) -> None:
        if "request_id" not in event:
            return
        span = self._require(event)
        t = float(event["t"])
        self._close_phase(span.request_id, t)
        span.outcome = "dropped"
        span.drop_reason = event.get("reason")
        span.drop_device = event.get("device")
        span.end_t = t

    def _on_brake_request(self, event: TraceEvent) -> None:
        self._engage_source = str(event.get("source", "policy"))
        self._brake_sources[int(event["version"])] = self._engage_source

    def _on_brake_cancel_release(self, event: TraceEvent) -> None:
        # The brake never disengaged; the new version inherits the
        # original engagement's source.
        self._brake_sources[int(event["version"])] = self._engage_source

    def _on_brake_land(self, event: TraceEvent) -> None:
        self.control_events.append(dict(event))
        if event.get("on"):
            self._brake_on = True
            self._brake_version = int(event["version"])
        else:
            self._brake_on = False

    def _on_cap_issue(self, event: TraceEvent) -> None:
        if int(event.get("attempts", 0)) == 0 and self._in_fallback:
            self._fallback_generations.add(
                (str(event["priority"]), int(event["generation"]))
            )

    def _on_cap_land(self, event: TraceEvent) -> None:
        self.control_events.append(dict(event))
        ratio = event.get("ratio")
        if ratio is None:
            if event.get("clock_mhz") is not None:
                return  # pre-span trace without the ratio field
            ratio = 1.0
        self._cap_state[str(event["priority"])] = (
            float(ratio), int(event["generation"])
        )

    def _on_fallback_enter(self, event: TraceEvent) -> None:
        self.control_events.append(dict(event))
        self._in_fallback = True

    def _on_fallback_exit(self, event: TraceEvent) -> None:
        self.control_events.append(dict(event))
        self._in_fallback = False

    def _current_cause(
        self, server: Any, ratio: float
    ) -> Tuple[Optional[str], Dict[str, Any]]:
        """Who is responsible for running at ``ratio`` right now."""
        if ratio >= 1.0:
            return None, {}
        if self._brake_on:
            version = self._brake_version
            source = "policy"
            if version is not None:
                source = self._brake_sources.get(version, "policy")
            return "brake", {"version": version, "source": source}
        priority = self._server_priority.get(str(server))
        state = None
        if priority is not None:
            state = self._cap_state.get(priority)
        else:
            # No run_meta (filtered trace): match the capped pool whose
            # commanded ratio equals the observed one.
            for pool, pool_state in self._cap_state.items():
                if pool_state[0] == ratio:
                    priority, state = pool, pool_state
                    break
        if state is None:
            return "cap", {
                "priority": priority, "generation": None, "fallback": False,
            }
        generation = state[1]
        in_fallback = (priority, generation) in self._fallback_generations
        return "cap", {
            "priority": priority,
            "generation": generation,
            "fallback": in_fallback,
        }

    _HANDLERS = {
        "run_meta": _on_run_meta,
        "req_arrival": _on_req_arrival,
        "shed_defer": _on_shed_defer,
        "phase_start": _on_phase_start,
        "phase_rescale": _on_phase_rescale,
        "serve": _on_serve,
        "drop": _on_drop,
        "brake_request": _on_brake_request,
        "brake_cancel_release": _on_brake_cancel_release,
        "brake_land": _on_brake_land,
        "cap_issue": _on_cap_issue,
        "cap_land": _on_cap_land,
        "fallback_enter": _on_fallback_enter,
        "fallback_exit": _on_fallback_exit,
    }


def build_spans(source: Any) -> List[RequestSpan]:
    """Reconstruct every request span from a recorded trace.

    ``source`` is anything :func:`repro.obs.analyze.load_events`
    accepts — a JSONL path, a recorder with an ``events`` list, or an
    event sequence — or an already-fed :class:`SpanBuilder`.
    """
    return SpanBuilder.from_source(source).build()


def _describe_cause(interval: RateInterval) -> str:
    if interval.cause == "brake":
        version = interval.stamp.get("version")
        source = interval.stamp.get("source", "policy")
        return f" <- brake v{version} ({source})"
    if interval.cause == "cap":
        pool = interval.stamp.get("priority") or "?"
        generation = interval.stamp.get("generation")
        text = f" <- cap {pool} gen {generation}"
        if interval.stamp.get("fallback"):
            text += " [fallback]"
        return text
    return ""


def render_span_tree(span: RequestSpan) -> List[str]:
    """Printable lines for one request's span tree."""
    tier = f"{span.priority or '?'}/{span.workload or '?'}"
    lines = [f"request {span.request_id} [{tier}] - {span.outcome}"]
    routed = span.server if span.server is not None else "unrouted"
    buffered = " (buffered)" if span.queued else ""
    lines.append(
        f"  arrival  t={span.arrival_t:10.3f}s  -> {routed}{buffered}"
    )
    if span.deferrals:
        lines.append(f"  deferred {span.deferrals}x by load shedding")
    wait = span.queue_wait_s
    if wait is not None:
        lines.append(f"  queue-wait {wait:.3f}s")
    for phase in span.phases:
        end = f"{phase.end:.3f}s" if phase.end is not None else "..."
        took = (
            f" ({phase.seconds:.3f}s, full-clock {phase.full_clock_s:.3f}s)"
            if phase.end is not None
            else f" (full-clock {phase.full_clock_s:.3f}s)"
        )
        lines.append(
            f"  {phase.phase:<7}t={phase.start:10.3f}s  -> {end}{took}"
        )
        for interval in phase.intervals:
            iv_end = (
                f"{interval.end:.3f}s" if interval.end is not None else "..."
            )
            lines.append(
                f"    ratio {interval.ratio:5.3f}  "
                f"t={interval.start:10.3f}s -> {iv_end}"
                f"{_describe_cause(interval)}"
            )
    if span.outcome == "served" and span.end_t is not None:
        lines.append(
            f"  served   t={span.end_t:10.3f}s  "
            f"(latency {span.realized_s:.3f}s)"
        )
    elif span.outcome == "dropped" and span.end_t is not None:
        device = f" @ {span.drop_device}" if span.drop_device else ""
        lines.append(
            f"  dropped  t={span.end_t:10.3f}s  ({span.drop_reason}{device})"
        )
    return lines
