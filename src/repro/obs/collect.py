"""Distributed trace collection: spool, sample, roll up, and merge.

The scalable execution paths — :class:`~repro.cluster.sharded
.ShardedSimulator` shards, :class:`~repro.exec.engine.SweepEngine` pool
workers, incremental resumes — run simulations the caller's recorder
never sees directly: shard cores live in forked processes, pool workers
execute whole runs remotely, resumed cores replay from checkpoints that
deliberately exclude the recorder. This module makes those paths
observable without changing a single simulated bit:

* **spooling** — each shard/worker records into its own local sink (a
  :class:`~repro.obs.recorder.MemoryRecorder` in process, a
  :class:`~repro.obs.recorder.JsonlRecorder` segment file across a fork
  boundary), and the parent merges the segments afterwards;
* **deterministic merging** — :func:`merge_segments` interleaves
  segments by the stable ``(time_s, shard_id, seq)`` key, so the merged
  trace is a pure function of the simulated events. Duplicate emissions
  across planes (every shard applies the same broadcast cap/brake
  landings; every core emits ``run_meta``) are elided at the spool via
  :func:`shard_suppressed_kinds`, which keeps exactly one copy of each
  — the copy whose local ordering matches a serial recording, so a
  recorded ``n_shards=1`` run merges to the byte-identical serial
  trace;
* **overhead bounding** — :class:`SamplingRecorder` keeps a
  deterministic hash-selected fraction of each kind (sha256 of the
  event identity; no RNG state, so the sampled trace is an exact
  subsequence of the full trace) with an exact ``dropped_by_kind``
  census, and :class:`RollupRecorder` folds high-rate kinds into
  fixed-epoch aggregate events;
* **engine fan-out** — :class:`TraceCollector` hands pool workers
  picklable :class:`TraceJob` recipes (file handles do not cross fork
  boundaries) and reads the per-digest segments back in the parent.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.obs.recorder import (
    JsonlRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "PARENT_SHARD",
    "RollupRecorder",
    "SamplingRecorder",
    "SuppressKindsRecorder",
    "TraceCollector",
    "TraceJob",
    "hash_fraction",
    "merge_segments",
    "shard_suppressed_kinds",
]

#: Segment id of the control-plane parent in a sharded run. Sorts
#: before every shard, so at equal times control-plane emissions
#: (control decisions, issues) precede serve-plane ones.
PARENT_SHARD = -1

#: Landing events every shard emits identically (the parent broadcasts
#: each cap/brake landing to all shards). Exactly one copy survives
#: the merge: shard 0's, whose local ordering interleaves landings
#: with their own rescale followers exactly as a serial run does.
_DUPLICATED_LANDINGS = frozenset({"cap_land", "brake_land"})


def shard_suppressed_kinds(shard: int) -> FrozenSet[str]:
    """The kinds segment ``shard`` of a sharded run must not spool.

    The parent (:data:`PARENT_SHARD`) applies broadcast landings to its
    own idle core, so its ``cap_land``/``brake_land`` copies are
    duplicates of the serving shards' — and its copies sit at the wrong
    position relative to the shards' ``phase_rescale`` followers, so
    the shard-side copies are the ones kept. Shard 0 keeps landings and
    drops only its ``run_meta`` (the parent's identical copy survives);
    every other shard drops landings too.
    """
    if shard == PARENT_SHARD:
        return _DUPLICATED_LANDINGS
    if shard == 0:
        return frozenset({"run_meta"})
    return frozenset({"run_meta"}) | _DUPLICATED_LANDINGS


class SuppressKindsRecorder(TraceRecorder):
    """Forwards to an inner recorder, dropping the given kinds.

    The dropped events are counted exactly (``suppressed_by_kind``) so
    nothing ever disappears silently; everything else — close,
    finalize, the observability snapshot — delegates to ``inner``.
    """

    def __init__(
        self, inner: TraceRecorder, suppress: Iterable[str]
    ) -> None:
        self.inner = inner
        self.suppress = frozenset(suppress)
        self.suppressed_by_kind: Dict[str, int] = {}

    def emit(self, event: TraceEvent) -> None:
        kind = event.get("kind")
        if kind in self.suppress:
            self.suppressed_by_kind[kind] = \
                self.suppressed_by_kind.get(kind, 0) + 1
            return
        self.inner.emit(event)

    def wants(self, kind: str) -> bool:
        # Suppressed kinds are censused, so they must still be seen.
        return kind in self.suppress or self.inner.wants(kind)

    def close(self) -> None:
        self.inner.close()

    def finalize(self, t_end: float) -> None:
        self.inner.finalize(t_end)

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        return self.inner.observability_snapshot()


def merge_segments(
    segments: Mapping[int, Sequence[TraceEvent]],
) -> List[TraceEvent]:
    """Deterministically merge per-shard event segments.

    Stable sort by ``(time_s, shard_id, seq)``: events order by
    simulation time; at equal times the lower shard id wins (the
    control-plane parent is :data:`PARENT_SHARD` ``= -1``); within one
    segment the original emission order (``seq``) is preserved.
    Events without a ``t`` (engine events) sort first.

    Args:
        segments: ``shard_id -> events`` in each segment's emission
            order.
    """
    tagged: List[Tuple[float, int, TraceEvent]] = []
    for shard in sorted(segments):
        for event in segments[shard]:
            tagged.append(
                (float(event.get("t", float("-inf"))), shard, event)
            )
    tagged.sort(key=lambda item: (item[0], item[1]))
    return [event for _t, _shard, event in tagged]


# ----------------------------------------------------------------------
# Overhead-bounded recording
# ----------------------------------------------------------------------
_sha256 = hashlib.sha256
_from_bytes = int.from_bytes


def hash_fraction(event: TraceEvent) -> float:
    """A deterministic ``[0, 1)`` fraction of an event's identity.

    sha256 over the event's compact identity — its kind plus the
    fields that make instances of a kind distinct (``t``,
    ``request_id``, ``server``). No RNG state, no emission-order or
    key-order dependence, so the keep/drop decision for an event is a
    pure function of its payload and a sampled trace is an exact
    subsequence of the full trace. The identity is deliberately small:
    sampling is applied to the highest-rate kinds, and hashing a short
    string instead of the full serialized payload keeps the per-event
    cost within the recording overhead budget.
    """
    ident = "%s|%r|%r|%r" % (
        event.get("kind"), event.get("t"),
        event.get("request_id"), event.get("server"),
    )
    digest = _sha256(ident.encode("utf-8")).digest()
    return _from_bytes(digest[:8], "big") / 2.0 ** 64


def _validate_rate(rate: float, label: str) -> float:
    rate = float(rate)
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(
            f"{label} must be within [0, 1], got {rate}"
        )
    return rate


class SamplingRecorder(TraceRecorder):
    """Deterministic hash-based per-kind sampling with an exact census.

    An event of kind ``k`` is kept iff its rate is 1.0 or
    :func:`hash_fraction` of the event falls below the rate; dropped
    events are counted exactly in ``dropped_by_kind``. The census is
    surfaced in the observability snapshot under ``trace_sampling``.

    Attributes:
        rates: Per-kind keep fraction; kinds not listed use
            ``default_rate``.
        kept: Events forwarded to the inner recorder.
        dropped_by_kind: Exact count of sampled-out events per kind.
    """

    def __init__(
        self,
        inner: TraceRecorder,
        rates: Optional[Mapping[str, float]] = None,
        default_rate: float = 1.0,
    ) -> None:
        self.inner = inner
        self.rates = {
            str(kind): _validate_rate(rate, f"sampling rate for {kind!r}")
            for kind, rate in (rates or {}).items()
        }
        self.default_rate = _validate_rate(default_rate, "default_rate")
        self.kept = 0
        self.dropped_by_kind: Dict[str, int] = {}

    @property
    def dropped(self) -> int:
        """Total sampled-out events across all kinds."""
        return sum(self.dropped_by_kind.values())

    def emit(self, event: TraceEvent) -> None:
        kind = event.get("kind")
        if not isinstance(kind, str):
            kind = str(kind)
        rate = self.rates.get(kind, self.default_rate)
        if rate < 1.0:
            # rate 0.0 drops everything — no need to hash first.
            if rate <= 0.0 or hash_fraction(event) >= rate:
                self.dropped_by_kind[kind] = \
                    self.dropped_by_kind.get(kind, 0) + 1
                return
        self.kept += 1
        self.inner.emit(event)

    def wants(self, kind: str) -> bool:
        # A partially sampled kind must be seen: the keep/drop census
        # is exact, so dropped events are still counted here.
        rate = self.rates.get(kind, self.default_rate)
        if rate >= 1.0:
            return self.inner.wants(kind)
        return True

    def close(self) -> None:
        self.inner.close()

    def finalize(self, t_end: float) -> None:
        self.inner.finalize(t_end)

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        snapshot = dict(self.inner.observability_snapshot() or {})
        snapshot["trace_sampling"] = {
            "kept": self.kept,
            "dropped": self.dropped,
            "dropped_by_kind": {
                kind: count
                for kind, count in sorted(self.dropped_by_kind.items())
            },
        }
        return snapshot


class RollupRecorder(TraceRecorder):
    """Folds high-rate kinds into fixed-epoch aggregate events.

    Events whose kind is in ``kinds`` are absorbed into one ``rollup``
    event per ``(kind, epoch)``: an exact count plus sum/min/max of
    every numeric field. Other kinds pass through untouched. Rollups
    flush in deterministic ``(epoch, kind)`` order as soon as the
    (time-ordered) stream moves past their epoch, and the remainder
    flushes at :meth:`finalize` — so the inner sink still receives a
    time-ordered stream.
    """

    def __init__(
        self,
        inner: TraceRecorder,
        kinds: Iterable[str],
        epoch_s: float = 60.0,
    ) -> None:
        self.inner = inner
        self.kinds = frozenset(str(kind) for kind in kinds)
        if not self.kinds:
            raise ConfigurationError("rollup kinds cannot be empty")
        if epoch_s <= 0.0:
            raise ConfigurationError("rollup epoch_s must be positive")
        self.epoch_s = float(epoch_s)
        self.rolled_by_kind: Dict[str, int] = {}
        self._open: Dict[Tuple[int, str], Dict[str, Any]] = {}
        self._min_open_epoch: Optional[int] = None
        # One-entry accumulator cache: events of a rolled kind arrive
        # in long same-epoch streaks, so the common case skips the
        # tuple-keyed lookup entirely.
        self._last_epoch: Optional[int] = None
        self._last_kind: Optional[str] = None
        self._last_acc: Optional[Dict[str, Any]] = None

    def emit(self, event: TraceEvent) -> None:
        kind = event.get("kind")
        t = event.get("t")
        timed = isinstance(t, (int, float)) and not isinstance(t, bool)
        if timed:
            epoch = int(t // self.epoch_s)
            # Any timed event moving past an open epoch flushes it —
            # rolled or not — so rollups always precede later-epoch
            # events at the inner sink. The min-open-epoch check keeps
            # the common case (nothing due) to one comparison.
            if self._min_open_epoch is not None \
                    and epoch > self._min_open_epoch:
                self._flush_before(epoch)
        if not timed or kind not in self.kinds:
            self.inner.emit(event)
            return
        if epoch == self._last_epoch and kind == self._last_kind:
            acc = self._last_acc
        else:
            acc = self._open.setdefault(
                (epoch, kind), {"n": 0, "fields": {}}
            )
            self._last_epoch = epoch
            self._last_kind = kind
            self._last_acc = acc
            if self._min_open_epoch is None \
                    or epoch < self._min_open_epoch:
                self._min_open_epoch = epoch
        acc["n"] += 1
        self.rolled_by_kind[kind] = self.rolled_by_kind.get(kind, 0) + 1
        fields = acc["fields"]
        for name, value in event.items():
            cls = value.__class__
            if (cls is not float and cls is not int) or name == "t":
                continue
            stats = fields.get(name)
            if stats is None:
                fields[name] = {"sum": value, "min": value, "max": value}
            else:
                stats["sum"] += value
                stats["min"] = min(stats["min"], value)
                stats["max"] = max(stats["max"], value)

    def _render(self, key: Tuple[int, str]) -> TraceEvent:
        epoch, kind = key
        acc = self._open[key]
        return {
            "t": epoch * self.epoch_s,
            "kind": "rollup",
            "source": kind,
            "epoch_s": self.epoch_s,
            "n": acc["n"],
            "fields": {
                name: acc["fields"][name]
                for name in sorted(acc["fields"])
            },
        }

    def _flush_before(self, epoch: Optional[int]) -> None:
        due = sorted(
            key for key in self._open
            if epoch is None or key[0] < epoch
        )
        for key in due:
            self.inner.emit(self._render(key))
            del self._open[key]
        self._min_open_epoch = (
            min(key[0] for key in self._open) if self._open else None
        )
        # The cached accumulator may just have been flushed.
        self._last_epoch = None
        self._last_kind = None
        self._last_acc = None

    def wants(self, kind: str) -> bool:
        # Rolled-up kinds feed the epoch aggregates.
        return kind in self.kinds or self.inner.wants(kind)

    def close(self) -> None:
        self.inner.close()

    def finalize(self, t_end: float) -> None:
        self._flush_before(None)
        self.inner.finalize(t_end)

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        snapshot = dict(self.inner.observability_snapshot() or {})
        snapshot["trace_rollup"] = {
            "rolled_up": sum(self.rolled_by_kind.values()),
            "by_kind": {
                kind: count
                for kind, count in sorted(self.rolled_by_kind.items())
            },
        }
        return snapshot


# ----------------------------------------------------------------------
# Engine-level collection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceJob:
    """A picklable recipe for one per-run spool recorder.

    Pool workers receive the recipe and build the recorder chain
    locally — file handles do not cross fork boundaries, and the
    :class:`~repro.obs.recorder.JsonlRecorder` truncates its segment on
    open, so a retried run after a worker crash overwrites the partial
    segment cleanly.
    """

    path: str
    kinds: Optional[Tuple[str, ...]] = None
    sample: Optional[Tuple[Tuple[str, float], ...]] = None
    default_rate: float = 1.0
    rollup_kinds: Optional[Tuple[str, ...]] = None
    rollup_epoch_s: float = 60.0

    def open(self) -> TraceRecorder:
        """Build the recorder chain: sampling -> rollup -> JSONL."""
        recorder: TraceRecorder = JsonlRecorder(self.path, kinds=self.kinds)
        if self.rollup_kinds:
            recorder = RollupRecorder(
                recorder, self.rollup_kinds, self.rollup_epoch_s
            )
        if self.sample is not None or self.default_rate < 1.0:
            recorder = SamplingRecorder(
                recorder, dict(self.sample or ()), self.default_rate
            )
        return recorder


class TraceCollector:
    """Per-run trace spool for engine-executed sweeps.

    One JSONL segment per run digest under ``directory``. The
    :class:`~repro.exec.engine.SweepEngine` asks for a :meth:`job` per
    simulated spec — on the serial path, in every pool worker, and on
    the retry/quarantine path — and the parent reads the artifacts
    back via :meth:`events`. Sampling/rollup settings apply uniformly
    to every segment, so overhead bounds hold across the whole sweep.

    Args:
        directory: Segment directory (created if absent).
        kinds: Optional kind filter applied at the JSONL sink.
        sample: Per-kind sampling rates (see :class:`SamplingRecorder`).
        default_rate: Keep fraction for kinds not listed in ``sample``.
        rollup_kinds: Kinds folded into fixed-epoch aggregates.
        rollup_epoch_s: Aggregation epoch for ``rollup_kinds``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        kinds: Optional[Iterable[str]] = None,
        sample: Optional[Mapping[str, float]] = None,
        default_rate: float = 1.0,
        rollup_kinds: Optional[Iterable[str]] = None,
        rollup_epoch_s: float = 60.0,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.kinds = tuple(sorted(kinds)) if kinds is not None else None
        if self.kinds is not None and not self.kinds:
            raise ConfigurationError("kinds filter cannot be empty")
        self.sample = tuple(
            (str(kind), _validate_rate(rate, f"sampling rate for {kind!r}"))
            for kind, rate in sorted((sample or {}).items())
        ) if sample is not None else None
        self.default_rate = _validate_rate(default_rate, "default_rate")
        self.rollup_kinds = (
            tuple(sorted(str(k) for k in rollup_kinds))
            if rollup_kinds is not None else None
        )
        if self.rollup_kinds is not None and not self.rollup_kinds:
            raise ConfigurationError("rollup kinds cannot be empty")
        if rollup_epoch_s <= 0.0:
            raise ConfigurationError("rollup epoch_s must be positive")
        self.rollup_epoch_s = float(rollup_epoch_s)

    def segment_path(self, digest: str) -> Path:
        """The JSONL segment file for one run digest."""
        return self.directory / f"{digest}.jsonl"

    def has(self, digest: str) -> bool:
        """Whether a segment for this digest has been spooled."""
        return self.segment_path(digest).exists()

    def job(self, digest: str) -> TraceJob:
        """The picklable spool recipe for one run."""
        return TraceJob(
            path=str(self.segment_path(digest)),
            kinds=self.kinds,
            sample=self.sample,
            default_rate=self.default_rate,
            rollup_kinds=self.rollup_kinds,
            rollup_epoch_s=self.rollup_epoch_s,
        )

    def events(self, digest: str) -> List[TraceEvent]:
        """Load one run's spooled trace.

        Raises:
            ConfigurationError: If no segment exists for the digest.
        """
        path = self.segment_path(digest)
        if not path.exists():
            raise ConfigurationError(f"no trace segment for {digest!r}")
        return read_jsonl(str(path))

    def digests(self) -> List[str]:
        """Every digest with a spooled segment, sorted."""
        return sorted(path.stem for path in self.directory.glob("*.jsonl"))
