"""The cross-run experiment ledger: an append-only JSONL run journal.

PRs 3-5 made every *single* run fully observable — traces, metrics,
spans, attribution — but each run's story still ended when its process
exited. The ledger is the memory across runs: every execution the sweep
engine performs (including cache hits, incremental resumes, retries,
and quarantines) can append one schema-versioned JSON line capturing

* *what* ran — the spec's content digest, its configuration+trace
  family digest, the trace digest, policy name and thresholds, seed,
  duration, and cluster size;
* *how* it ran — wall time, executing worker pid, provenance flags
  (cache hit / incremental resume / shard count / retries /
  quarantine), and the worker's ``resource.getrusage`` footprint
  (max RSS, CPU time) plumbed back through the process pool;
* *what it produced* — the headline result metrics (energy, peak
  utilization, brakes, caps, served/dropped, over-budget exposure,
  incidents, trips);
* *where* it ran — an environment stamp (python/numpy versions,
  platform, codec ``SCHEMA_VERSION``, spec ``DIGEST_VERSION``).

Like every recorder before it, the ledger is **off by default** and
purely observational: it never touches simulator state or RNG streams,
so a ledgered run is bit-identical to an unledgered one (asserted on
the six reference configs). The file is opened in append mode and each
entry is one ``write`` call, so concurrent sweeps interleave whole
lines and a crash never leaves a torn record.

:mod:`repro.obs.regress` diffs ledger entries against committed
baselines; :mod:`repro.obs.dashboard` renders ledger history as
sparklines; ``examples/trace_inspect.py ledger`` prints the journal.
"""

from __future__ import annotations

import json
import platform
import resource
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.cluster.metrics import SimulationResult
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "ExperimentLedger",
    "environment_stamp",
    "headline_metrics",
    "read_ledger",
    "rusage_snapshot",
]

#: Bump when the entry layout changes incompatibly. Readers reject
#: newer-than-known schemas instead of misreading them.
LEDGER_SCHEMA_VERSION = 1


def environment_stamp() -> Dict[str, Any]:
    """Where and with what a run executed (embedded in every entry).

    Captures the interpreter and numpy versions, the platform string,
    and the repo's two compatibility dials: the result codec
    ``SCHEMA_VERSION`` and the spec ``DIGEST_VERSION``. Two ledger
    entries with different stamps are not comparable bit-for-bit —
    the regression sentinel checks this before diffing metrics.
    """
    import numpy

    # Imported lazily: repro.obs must stay importable without the exec
    # layer (the same rule repro.obs.diff follows).
    from repro.exec.codec import SCHEMA_VERSION
    from repro.exec.runspec import DIGEST_VERSION

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "schema_version": SCHEMA_VERSION,
        "digest_version": DIGEST_VERSION,
    }


def rusage_snapshot() -> Dict[str, float]:
    """This process's resource footprint (``RUSAGE_SELF``).

    ``max_rss_kb`` is the high-water mark in kilobytes (Linux units;
    macOS reports bytes — the stamp records what the kernel said).
    CPU times are cumulative for the process, so per-run deltas are
    the caller's job (:func:`rusage_delta`).
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "max_rss_kb": float(usage.ru_maxrss),
        "cpu_user_s": float(usage.ru_utime),
        "cpu_system_s": float(usage.ru_stime),
    }


def rusage_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-run CPU deltas; max RSS stays the (monotone) high-water mark."""
    return {
        "max_rss_kb": after["max_rss_kb"],
        "cpu_user_s": after["cpu_user_s"] - before["cpu_user_s"],
        "cpu_system_s": after["cpu_system_s"] - before["cpu_system_s"],
    }


def headline_metrics(result: SimulationResult) -> Dict[str, Any]:
    """The result metrics worth tracking run over run.

    Deterministic for a deterministic simulation — these are the
    exact-compare section of a ledger entry (wall time and rusage are
    the noisy section). Counts are per priority tier; the optional
    report sections degrade to zeros when the run had no fault plan,
    no protection hierarchy, or no live alert engine.
    """
    observability = result.observability or {}
    incidents = observability.get("incidents") or []
    metrics: Dict[str, Any] = {
        "total_energy_j": result.total_energy_j,
        "peak_utilization": result.peak_utilization,
        "mean_utilization": result.mean_utilization,
        "power_brake_events": result.power_brake_events,
        "capping_actions": result.capping_actions,
        "served": {
            priority.value: result.per_priority[priority].served
            for priority in Priority
            if priority in result.per_priority
        },
        "dropped": {
            priority.value: result.per_priority[priority].dropped
            for priority in Priority
            if priority in result.per_priority
        },
        "over_budget_s": (
            result.robustness.time_at_risk_s
            if result.robustness is not None else 0.0
        ),
        "incidents": len(incidents),
        "trips": (
            result.powerfail.trips if result.powerfail is not None else 0
        ),
    }
    return metrics


def _policy_payload(policy: Any) -> Tuple[str, Optional[Dict[str, Any]]]:
    """``(name, thresholds-dict-or-None)`` for a PolicySpec."""
    thresholds = getattr(policy, "thresholds", None)
    if thresholds is None:
        return policy.name, None
    from dataclasses import fields

    return policy.name, {
        f.name: getattr(thresholds, f.name) for f in fields(thresholds)
    }


def _trace_digest(spec: Any) -> str:
    """Content digest of the request trace a spec replays."""
    import hashlib

    from repro.exec.runspec import _canonical

    payload = json.dumps(
        {"trace_key": _canonical(spec.trace_key())},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ExperimentLedger:
    """Append-only journal of executed runs.

    Attributes:
        path: Destination JSONL file (opened in append mode — an
            existing ledger grows; it is never truncated), or ``None``
            for an in-memory ledger.
        entries: Every entry recorded *by this instance*, in order
            (a file-backed ledger's previous lives are on disk, not
            here — use :func:`read_ledger` for the full history).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = None if path is None else str(path)
        self.entries: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = (
            open(self.path, "a", encoding="utf-8")
            if self.path is not None else None
        )
        self._env = environment_stamp()

    def record(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Append one raw entry (stamped with the schema version)."""
        if self.path is not None and self._handle is None:
            raise ConfigurationError(
                f"ExperimentLedger({self.path!r}) is closed"
            )
        stamped = {"schema": LEDGER_SCHEMA_VERSION, **entry}
        if self._handle is not None:
            # One write call per entry: serialization happens (and can
            # fail) before anything touches the file, and appends of
            # whole lines interleave safely across processes.
            self._handle.write(json.dumps(stamped, sort_keys=True) + "\n")
            self._handle.flush()
        self.entries.append(stamped)
        return stamped

    def record_run(
        self,
        spec: Any,
        result: SimulationResult,
        *,
        wall_s: float = 0.0,
        worker: Optional[int] = None,
        rusage: Optional[Dict[str, float]] = None,
        cache_hit: bool = False,
        incremental_resumed: bool = False,
        incremental_reused: bool = False,
        retries: int = 0,
        quarantined: bool = False,
        shards: int = 1,
    ) -> Dict[str, Any]:
        """Append the standard entry for one executed (or recalled) run.

        ``spec`` is a :class:`~repro.exec.runspec.RunSpec`; the imports
        are lazy so :mod:`repro.obs` keeps its no-exec-dependency rule.
        """
        from repro.exec.incremental import family_digest

        policy_name, thresholds = _policy_payload(spec.policy)
        entry = {
            "kind": "run",
            "digest": spec.digest(),
            "family": family_digest(spec),
            "trace": _trace_digest(spec),
            "policy": policy_name,
            "thresholds": thresholds,
            "seed": spec.config.seed,
            "n_servers": spec.config.n_servers,
            "duration_s": spec.duration_s,
            "wall_s": wall_s,
            "worker": worker,
            "provenance": {
                "cache_hit": cache_hit,
                "incremental_resumed": incremental_resumed,
                "incremental_reused": incremental_reused,
                "retries": retries,
                "quarantined": quarantined,
                "shards": shards,
            },
            "rusage": rusage,
            "metrics": headline_metrics(result),
            "env": self._env,
        }
        return self.record(entry)

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ExperimentLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.entries)


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Load a ledger file, validating the schema of every entry.

    Raises:
        ConfigurationError: If a line is not a JSON object or carries a
            schema version newer than this reader understands.
    """
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: invalid ledger line: {exc}"
                ) from None
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: ledger entries must be JSON objects"
                )
            schema = entry.get("schema")
            if not isinstance(schema, int) \
                    or schema > LEDGER_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"{path}:{lineno}: ledger schema {schema!r} is newer "
                    f"than supported ({LEDGER_SCHEMA_VERSION})"
                )
            entries.append(entry)
    return entries
