"""Cross-run regression sentinel: diff fresh runs against baselines.

CI has emitted ``BENCH_*.json`` artifacts since PR 2, but nothing ever
*looked* at them — a 2x slowdown or a changed brake count would ship
silently. This module is the gate: it compares a freshly produced
benchmark report (or experiment-ledger entry) against a committed
baseline under **per-metric tolerance policies**:

* deterministic result metrics — run counts, brake events, trip
  censuses, served/dropped, energy joules — compare **exact**: the
  simulator is bit-stable, so any drift is a real behavior change;
* wall times, throughputs, and rusage compare **relative with a noise
  floor**: a measurement within ``rel_tol`` of the baseline (or within
  ``noise_floor`` absolute units) passes, anything slower/faster is
  flagged;
* machine identity (cpu counts, worker pids, platform strings) is
  **ignored**.

Policies are ``(glob-pattern, Tolerance)`` pairs matched against the
dotted path of each leaf (``serial.wall_s``, ``grid.unique_runs``), the
same addresses :func:`repro.obs.diff.diff_dicts` reports — the sentinel
reuses that walker for its first-divergent-metric headline.

Entry points:

* :func:`check_bench` — one current report vs one baseline file;
* :func:`check_bench_dir` — every ``benchmarks/baselines/*.json``
  against its freshly produced sibling (what CI runs), with
  ``update=True`` refreshing the baselines instead (the
  ``check_bench --update`` workflow for intentional changes);
* :func:`check_ledger` — latest ledger entry per (family, policy,
  seed) key vs a baseline ledger;
* ``python -m repro.obs.regress`` — the CLI over all of the above
  (exit 0 in-tolerance, 1 regressions, 2 usage/IO error).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.obs.diff import Divergence, diff_dicts

__all__ = [
    "DEFAULT_NOISE_FLOOR",
    "DEFAULT_POLICIES",
    "DEFAULT_REL_TOL",
    "MetricDiff",
    "RegressionReport",
    "Tolerance",
    "check_bench",
    "check_bench_dir",
    "check_ledger",
    "compare_metrics",
    "main",
]

#: Default relative tolerance for noisy (timing/memory) metrics. Kept
#: below 10% so a genuine 10% wall-time regression is always flagged.
DEFAULT_REL_TOL = 0.05

#: Absolute slack under which a noisy metric never flags (seconds for
#: wall times; the same floor is harmless for per-second rates).
DEFAULT_NOISE_FLOOR = 0.25


@dataclass(frozen=True)
class Tolerance:
    """How one metric is allowed to move between runs.

    Attributes:
        mode: ``"exact"`` (bit-equal), ``"relative"`` (within
            ``rel_tol`` of the baseline, with an absolute
            ``noise_floor`` under which nothing flags), or ``"ignore"``
            (machine identity — never compared).
        rel_tol: Allowed relative deviation for ``"relative"``.
        noise_floor: Absolute deviation that never flags.
    """

    mode: str = "exact"
    rel_tol: float = 0.0
    noise_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "relative", "ignore"):
            raise ConfigurationError(
                f"unknown tolerance mode {self.mode!r}"
            )
        if self.rel_tol < 0 or self.noise_floor < 0:
            raise ConfigurationError(
                "rel_tol and noise_floor cannot be negative"
            )

    @classmethod
    def exact(cls) -> "Tolerance":
        return cls("exact")

    @classmethod
    def relative(
        cls,
        rel_tol: float = DEFAULT_REL_TOL,
        noise_floor: float = DEFAULT_NOISE_FLOOR,
    ) -> "Tolerance":
        return cls("relative", rel_tol=rel_tol, noise_floor=noise_floor)

    @classmethod
    def ignore(cls) -> "Tolerance":
        return cls("ignore")

    def within(self, baseline: Any, current: Any) -> bool:
        """Whether ``current`` is an acceptable value of ``baseline``."""
        if self.mode == "ignore":
            return True
        if self.mode == "exact" or not _both_numeric(baseline, current):
            return baseline == current
        delta = abs(float(current) - float(baseline))
        if delta <= self.noise_floor:
            return True
        scale = abs(float(baseline))
        if scale == 0.0:
            return delta == 0.0
        return delta / scale <= self.rel_tol


def _both_numeric(a: Any, b: Any) -> bool:
    return (
        isinstance(a, (int, float)) and not isinstance(a, bool)
        and isinstance(b, (int, float)) and not isinstance(b, bool)
    )


#: Pattern → tolerance, first match wins; unmatched paths compare
#: exact. Patterns are ``fnmatch`` globs over the dotted leaf path.
DEFAULT_POLICIES: Tuple[Tuple[str, Tolerance], ...] = (
    ("cpu_count", Tolerance.ignore()),
    ("*worker", Tolerance.ignore()),
    ("*env.python", Tolerance.ignore()),
    ("*env.numpy", Tolerance.ignore()),
    ("*env.platform", Tolerance.ignore()),
    ("*wall_s", Tolerance.relative()),
    ("*_per_s", Tolerance.relative()),
    ("*speedup*", Tolerance.relative()),
    ("*rusage*", Tolerance.relative()),
    ("*cpu_user_s", Tolerance.relative()),
    ("*cpu_system_s", Tolerance.relative()),
    ("*max_rss_kb", Tolerance.relative()),
)


def resolve_tolerance(
    path: str,
    policies: Sequence[Tuple[str, Tolerance]] = DEFAULT_POLICIES,
) -> Tolerance:
    """The tolerance governing one dotted metric path."""
    for pattern, tolerance in policies:
        if fnmatchcase(path, pattern):
            return tolerance
    return Tolerance.exact()


@dataclass(frozen=True)
class MetricDiff:
    """One leaf metric's verdict.

    Attributes:
        path: Dotted address into the report (``serial.wall_s``).
        baseline: Value in the committed baseline (``None`` if added).
        current: Value in the fresh report (``None`` if missing).
        status: ``"ok"``, ``"drift"`` (outside tolerance),
            ``"missing"`` (baseline metric absent from the fresh
            report), or ``"added"`` (new metric with no baseline —
            informational, not a regression).
        mode: The tolerance mode that judged it.
    """

    path: str
    baseline: Any
    current: Any
    status: str
    mode: str = "exact"

    @property
    def is_regression(self) -> bool:
        return self.status in ("drift", "missing")

    def describe(self) -> str:
        if self.status == "missing":
            return f"{self.path}: missing (baseline {self.baseline!r})"
        if self.status == "added":
            return f"{self.path}: added (current {self.current!r})"
        detail = f"baseline {self.baseline!r} -> current {self.current!r}"
        if _both_numeric(self.baseline, self.current) \
                and float(self.baseline) != 0.0:
            ratio = float(self.current) / float(self.baseline)
            detail += f" (x{ratio:.3f})"
        return f"{self.path} [{self.mode}]: {detail}"


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison.

    Attributes:
        name: What was compared (usually the baseline file name).
        checked: Leaf metrics examined (ignored paths excluded).
        diffs: Every out-of-tolerance / missing / added leaf.
        baseline: The baseline structure (for first-divergence).
        current: The fresh structure.
    """

    name: str
    checked: int = 0
    diffs: List[MetricDiff] = field(default_factory=list)
    baseline: Optional[Dict[str, Any]] = None
    current: Optional[Dict[str, Any]] = None

    @property
    def regressions(self) -> List[MetricDiff]:
        return [d for d in self.diffs if d.is_regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def first_divergence(self) -> Optional[Divergence]:
        """The raw first-divergent-leaf, via :mod:`repro.obs.diff`.

        Tolerance-blind: this answers "where do the files differ at
        all", the same question the trace differ answers for event
        streams — useful when a drift verdict needs root-causing.
        """
        if self.baseline is None or self.current is None:
            return None
        return diff_dicts(self.baseline, self.current)

    def summary_lines(self) -> List[str]:
        verdict = "ok" if self.ok else (
            f"{len(self.regressions)} regression(s)"
        )
        lines = [f"{self.name}: {self.checked} metric(s) checked, "
                 f"{verdict}"]
        for diff in self.diffs:
            marker = "!" if diff.is_regression else "+"
            lines.append(f"  {marker} {diff.describe()}")
        return lines


def _leaves(value: Any, path: str = "") -> Iterator[Tuple[str, Any]]:
    """Depth-first ``(dotted-path, leaf)`` pairs in sorted-key order."""
    if isinstance(value, dict):
        for key in sorted(value):
            child = f"{path}.{key}" if path else str(key)
            yield from _leaves(value[key], child)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from _leaves(item, f"{path}[{index}]")
    else:
        yield path, value


def compare_metrics(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    policies: Sequence[Tuple[str, Tolerance]] = DEFAULT_POLICIES,
    name: str = "report",
) -> RegressionReport:
    """Judge every leaf of ``current`` against ``baseline``.

    Baseline leaves missing from ``current`` are regressions
    (``"missing"``); leaves only in ``current`` are informational
    (``"added"`` — a new metric cannot regress).
    """
    base_leaves = dict(_leaves(baseline))
    cur_leaves = dict(_leaves(current))
    report = RegressionReport(
        name=name, baseline=baseline, current=current,
    )
    for path in sorted(set(base_leaves) | set(cur_leaves)):
        tolerance = resolve_tolerance(path, policies)
        if tolerance.mode == "ignore":
            continue
        if path not in cur_leaves:
            report.diffs.append(MetricDiff(
                path, base_leaves[path], None, "missing", tolerance.mode,
            ))
            continue
        if path not in base_leaves:
            report.diffs.append(MetricDiff(
                path, None, cur_leaves[path], "added", tolerance.mode,
            ))
            continue
        report.checked += 1
        if not tolerance.within(base_leaves[path], cur_leaves[path]):
            report.diffs.append(MetricDiff(
                path, base_leaves[path], cur_leaves[path], "drift",
                tolerance.mode,
            ))
    return report


def _load_json(path: Path) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    return data


def check_bench(
    current_path: str,
    baseline_path: str,
    policies: Sequence[Tuple[str, Tolerance]] = DEFAULT_POLICIES,
) -> RegressionReport:
    """Compare one fresh ``BENCH_*.json`` against its baseline.

    Raises:
        ConfigurationError: If either file is unreadable or not JSON.
    """
    baseline = _load_json(Path(baseline_path))
    current = _load_json(Path(current_path))
    return compare_metrics(
        baseline, current, policies, name=Path(baseline_path).name,
    )


def check_bench_dir(
    bench_dir: str = ".",
    baselines_dir: str = "benchmarks/baselines",
    policies: Sequence[Tuple[str, Tolerance]] = DEFAULT_POLICIES,
    names: Optional[Sequence[str]] = None,
    update: bool = False,
) -> List[RegressionReport]:
    """Run the sentinel over every committed baseline.

    Each ``<baselines_dir>/*.json`` is compared against the same-named
    freshly produced report in ``bench_dir`` (the repo root, where the
    benchmarks write them). A baseline whose fresh report is absent is
    itself a regression — the benchmark stopped producing it. With
    ``update=True`` the fresh reports are copied over the baselines
    instead (the intentional-change workflow); absent fresh reports
    leave their baseline untouched.

    Raises:
        ConfigurationError: If ``baselines_dir`` is missing or matches
            nothing.
    """
    root = Path(baselines_dir)
    if not root.is_dir():
        raise ConfigurationError(f"no baselines directory {root}")
    selected = sorted(
        path for path in root.glob("*.json")
        if names is None or path.name in names
    )
    if not selected:
        raise ConfigurationError(f"no baselines matched under {root}")
    reports: List[RegressionReport] = []
    for baseline_path in selected:
        current_path = Path(bench_dir) / baseline_path.name
        if update:
            if current_path.exists():
                shutil.copyfile(current_path, baseline_path)
                reports.append(RegressionReport(
                    name=baseline_path.name, checked=0,
                ))
            continue
        if not current_path.exists():
            reports.append(RegressionReport(
                name=baseline_path.name,
                diffs=[MetricDiff(
                    "<report-file>", str(baseline_path), None, "missing",
                )],
            ))
            continue
        reports.append(check_bench(
            str(current_path), str(baseline_path), policies,
        ))
    return reports


def ledger_key(entry: Dict[str, Any]) -> Tuple[Any, ...]:
    """The identity under which ledger entries supersede each other."""
    return (
        entry.get("family"),
        entry.get("policy"),
        json.dumps(entry.get("thresholds"), sort_keys=True),
        entry.get("seed"),
        entry.get("duration_s"),
    )


def _latest_by_key(
    entries: Sequence[Dict[str, Any]],
) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
    latest: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for entry in entries:
        if entry.get("kind") == "run":
            latest[ledger_key(entry)] = entry
    return latest


def _comparable_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """The sections of a ledger entry the sentinel judges."""
    env = entry.get("env") or {}
    return {
        "digest": entry.get("digest"),
        "metrics": entry.get("metrics"),
        "wall_s": entry.get("wall_s"),
        "rusage": entry.get("rusage"),
        "env": {
            "schema_version": env.get("schema_version"),
            "digest_version": env.get("digest_version"),
        },
    }


def check_ledger(
    current: Sequence[Dict[str, Any]],
    baseline: Sequence[Dict[str, Any]],
    policies: Sequence[Tuple[str, Tolerance]] = DEFAULT_POLICIES,
) -> RegressionReport:
    """Diff the latest run per key of two ledgers.

    Entries pair up by :func:`ledger_key` (family digest, policy,
    thresholds, seed, duration); for each key present in both, the
    *latest* entry's digest, headline metrics, wall time, rusage, and
    schema stamps are judged under the tolerance policies. Keys only in
    the baseline count as missing runs; keys only in the current ledger
    are additions.
    """
    base_latest = _latest_by_key(baseline)
    cur_latest = _latest_by_key(current)
    baseline_view = {
        "|".join(str(part) for part in key): _comparable_entry(entry)
        for key, entry in base_latest.items()
    }
    current_view = {
        "|".join(str(part) for part in key): _comparable_entry(entry)
        for key, entry in cur_latest.items()
    }
    return compare_metrics(
        baseline_view, current_view, policies, name="ledger",
    )


def _policies_for(
    rel_tol: float, noise_floor: float,
) -> Tuple[Tuple[str, Tolerance], ...]:
    return tuple(
        (pattern, Tolerance.relative(rel_tol, noise_floor)
         if tolerance.mode == "relative" else tolerance)
        for pattern, tolerance in DEFAULT_POLICIES
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.regress`` — the CI entry point.

    Exit codes: 0 = every metric within tolerance (or baselines
    updated), 1 = regressions found, 2 = usage/IO error.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare fresh BENCH_*.json reports (and optionally "
                    "a run ledger) against committed baselines with "
                    "per-metric tolerance policies.",
    )
    parser.add_argument(
        "names", nargs="*",
        help="baseline file names to check (default: all *.json under "
             "the baselines directory)",
    )
    parser.add_argument(
        "--baselines", default="benchmarks/baselines",
        help="committed baselines directory (default: "
             "benchmarks/baselines)",
    )
    parser.add_argument(
        "--bench-dir", default=".",
        help="where the fresh reports live (default: repo root)",
    )
    parser.add_argument(
        "--ledger", default=None,
        help="fresh ledger JSONL to check against --ledger-baseline",
    )
    parser.add_argument(
        "--ledger-baseline", default=None,
        help="committed baseline ledger JSONL",
    )
    parser.add_argument(
        "--rel-tol", type=float, default=DEFAULT_REL_TOL,
        help=f"relative tolerance for noisy metrics "
             f"(default {DEFAULT_REL_TOL})",
    )
    parser.add_argument(
        "--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR,
        help=f"absolute slack that never flags "
             f"(default {DEFAULT_NOISE_FLOOR})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="refresh the baselines from the fresh reports instead of "
             "checking (the intentional-change workflow)",
    )
    args = parser.parse_args(argv)
    policies = _policies_for(args.rel_tol, args.noise_floor)
    failed = False
    try:
        reports = check_bench_dir(
            bench_dir=args.bench_dir,
            baselines_dir=args.baselines,
            policies=policies,
            names=args.names or None,
            update=args.update,
        )
        if args.update:
            for report in reports:
                print(f"updated {report.name}")
            return 0
        for report in reports:
            for line in report.summary_lines():
                print(line)
            if not report.ok:
                failed = True
                divergence = report.first_divergence()
                if divergence is not None:
                    print(f"  first divergent leaf: {divergence.field}")
        if args.ledger is not None or args.ledger_baseline is not None:
            if args.ledger is None or args.ledger_baseline is None:
                parser.error(
                    "--ledger and --ledger-baseline go together"
                )
            from repro.obs.ledger import read_ledger

            report = check_ledger(
                read_ledger(args.ledger),
                read_ledger(args.ledger_baseline),
                policies,
            )
            for line in report.summary_lines():
                print(line)
            if not report.ok:
                failed = True
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
