"""repro.obs — observability for the simulator and the sweep engine.

The paper's argument is made of *visible* power behaviour: per-row
telemetry series (Figure 16), cap/brake event timelines (Figure 18),
and the controller's view of both under faults. This package records
that behaviour from live runs without perturbing them:

* :class:`~repro.obs.recorder.TraceRecorder` sinks — in-memory, JSONL,
  CSV — receive structured events from hook points threaded through
  :class:`~repro.cluster.simulator.ClusterSimulator` (control decisions,
  cap/brake issue→land→verify lifecycles, fallback entry/exit, churn,
  request drops) and :class:`~repro.exec.engine.SweepEngine` (per-run
  wall time, cache hits, worker ids, digests). The default
  :data:`~repro.obs.recorder.NULL_RECORDER` reports ``enabled = False``
  and every hook is guarded by that flag, so an uninstrumented run is
  bit-identical to the pre-observability simulator;
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges,
  and histograms is snapshotted into
  ``SimulationResult.observability`` for instrumented runs and can be
  aggregated across a sweep with
  :func:`~repro.obs.metrics.aggregate_snapshots`;
* :mod:`repro.obs.analyze` reconstructs brake/cap timelines from a
  trace and :func:`~repro.obs.analyze.cross_check`\\ s every reported
  counter against the event stream, making the trace a self-validating
  artifact (``examples/trace_inspect.py`` renders it).
"""

from repro.obs.analyze import (
    BrakeSpan,
    CapCommand,
    CheckItem,
    CrossCheckReport,
    brake_timeline,
    cap_timeline,
    cross_check,
    fallback_windows,
    load_events,
    summarize_trace,
    utilization_points,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    CsvRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "BrakeSpan",
    "CapCommand",
    "CheckItem",
    "Counter",
    "CrossCheckReport",
    "CsvRecorder",
    "Gauge",
    "Histogram",
    "JsonlRecorder",
    "MemoryRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceEvent",
    "TraceRecorder",
    "aggregate_snapshots",
    "brake_timeline",
    "cap_timeline",
    "cross_check",
    "fallback_windows",
    "load_events",
    "read_jsonl",
    "summarize_trace",
    "utilization_points",
]
