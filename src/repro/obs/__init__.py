"""repro.obs — observability for the simulator and the sweep engine.

The paper's argument is made of *visible* power behaviour: per-row
telemetry series (Figure 16), cap/brake event timelines (Figure 18),
and the controller's view of both under faults. This package records
that behaviour from live runs without perturbing them:

* :class:`~repro.obs.recorder.TraceRecorder` sinks — in-memory, JSONL,
  CSV — receive structured events from hook points threaded through
  :class:`~repro.cluster.simulator.ClusterSimulator` (control decisions,
  cap/brake issue→land→verify lifecycles, fallback entry/exit, churn,
  request drops) and :class:`~repro.exec.engine.SweepEngine` (per-run
  wall time, cache hits, worker ids, digests). The default
  :data:`~repro.obs.recorder.NULL_RECORDER` reports ``enabled = False``
  and every hook is guarded by that flag, so an uninstrumented run is
  bit-identical to the pre-observability simulator;
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges,
  and histograms is snapshotted into
  ``SimulationResult.observability`` for instrumented runs and can be
  aggregated across a sweep with
  :func:`~repro.obs.metrics.aggregate_snapshots`;
* :mod:`repro.obs.analyze` reconstructs brake/cap timelines from a
  trace and :func:`~repro.obs.analyze.cross_check`\\ s every reported
  counter against the event stream, making the trace a self-validating
  artifact (``examples/trace_inspect.py`` renders it);
* the live layer (``repro.obs.live`` in the docs) consumes the same
  stream *online*: :mod:`repro.obs.stream` provides per-event windowed
  aggregators (:class:`~repro.obs.stream.Ewma`, rolling rates,
  sliding-window max/quantile) behind a
  :class:`~repro.obs.stream.StreamMonitor`, with
  :class:`~repro.obs.stream.TeeRecorder` composing monitors with
  storage sinks; :mod:`repro.obs.alerts` evaluates declarative
  :class:`~repro.obs.alerts.AlertRule`\\ s (for-duration, hysteresis,
  dedup) into :class:`~repro.obs.alerts.Incident` lifecycles that the
  simulator snapshots into ``SimulationResult.observability``;
  :mod:`repro.obs.export` renders snapshots as OpenMetrics text; and
  :mod:`repro.obs.diff` localizes the first divergent event between
  two traces (or results) for one-command root-causing;
* the causal layer answers "*why* was this request slow":
  :mod:`repro.obs.spans` folds the stream into per-request span trees
  (arrival → queue-wait → prompt → token → completion/drop, each phase
  carrying its cap/brake rate intervals) via the
  :class:`~repro.obs.spans.SpanBuilder` recorder;
  :mod:`repro.obs.attribution` computes exact (Fraction-arithmetic)
  counterfactual full-clock latencies and decomposes realized latency
  into queue-wait / service / cap-slowdown / brake-stall / fallback
  seconds and excess energy, attributed to the specific cap generation
  or brake version at fault (:func:`~repro.obs.attribution.attribute_run`,
  :func:`~repro.obs.attribution.top_victims`); and
  :func:`~repro.obs.export.render_chrome_trace` exports any trace in
  the Chrome trace-event / Perfetto JSON format for visual inspection;
* the cross-run layer is the memory between executions:
  :mod:`repro.obs.ledger` journals every engine run (provenance,
  rusage, headline metrics, environment stamp) into an append-only
  JSONL :class:`~repro.obs.ledger.ExperimentLedger`;
  :mod:`repro.obs.regress` diffs fresh benchmark reports and ledgers
  against committed baselines under per-metric tolerance policies
  (exact for deterministic metrics, relative-with-noise-floor for
  timings — the CI regression sentinel); and
  :mod:`repro.obs.dashboard` renders sweeps, timelines, incidents,
  attribution, kernel timers, and ledger history into one
  deterministic dependency-free static HTML page.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    Incident,
    RateRule,
    SloViolationRule,
    ThresholdRule,
    default_rules,
    incident_table,
    merge_incident_snapshots,
)
from repro.obs.analyze import (
    BrakeSpan,
    CapCommand,
    CheckItem,
    CrossCheckReport,
    brake_timeline,
    cap_timeline,
    cross_check,
    fallback_windows,
    load_events,
    summarize_trace,
    utilization_points,
)
from repro.obs.attribution import (
    COMPONENTS,
    AttributionReport,
    RequestAttribution,
    attribute_run,
    attribution_table,
    top_victims,
)
from repro.obs.collect import (
    PARENT_SHARD,
    RollupRecorder,
    SamplingRecorder,
    SuppressKindsRecorder,
    TraceCollector,
    TraceJob,
    hash_fraction,
    merge_segments,
    shard_suppressed_kinds,
)
from repro.obs.dashboard import (
    PALETTE,
    Dashboard,
    render_sparkline,
)
from repro.obs.diff import (
    Divergence,
    diff_dicts,
    diff_results,
    diff_traces,
    format_divergence,
)
from repro.obs.export import (
    render_chrome_trace,
    render_openmetrics,
    sanitize_metric_name,
    write_chrome_trace,
    write_textfile,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    ExperimentLedger,
    environment_stamp,
    headline_metrics,
    read_ledger,
    rusage_snapshot,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
)
from repro.obs.regress import (
    DEFAULT_POLICIES,
    MetricDiff,
    RegressionReport,
    Tolerance,
    check_bench,
    check_bench_dir,
    check_ledger,
    compare_metrics,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    CsvRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)
from repro.obs.query import (
    filter_events,
    group_aggregate,
    parse_agg,
    project,
    quantile,
    shard_of_server,
    span_join,
)
from repro.obs.spans import (
    PhaseSpan,
    RateInterval,
    RequestSpan,
    SpanBuilder,
    build_spans,
    render_span_tree,
)
from repro.obs.stream import (
    Ewma,
    RollingRate,
    StreamMonitor,
    TeeRecorder,
    WindowMax,
    WindowQuantile,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "AttributionReport",
    "BrakeSpan",
    "COMPONENTS",
    "CapCommand",
    "CheckItem",
    "Counter",
    "CrossCheckReport",
    "CsvRecorder",
    "DEFAULT_POLICIES",
    "Dashboard",
    "Divergence",
    "Ewma",
    "ExperimentLedger",
    "Gauge",
    "Histogram",
    "Incident",
    "JsonlRecorder",
    "LATENCY_BUCKETS",
    "LEDGER_SCHEMA_VERSION",
    "MemoryRecorder",
    "MetricDiff",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PALETTE",
    "PARENT_SHARD",
    "PhaseSpan",
    "RateInterval",
    "RateRule",
    "RegressionReport",
    "RequestAttribution",
    "RequestSpan",
    "RollingRate",
    "RollupRecorder",
    "SamplingRecorder",
    "SloViolationRule",
    "SpanBuilder",
    "StreamMonitor",
    "SuppressKindsRecorder",
    "TeeRecorder",
    "ThresholdRule",
    "Tolerance",
    "TraceCollector",
    "TraceEvent",
    "TraceJob",
    "TraceRecorder",
    "WindowMax",
    "WindowQuantile",
    "aggregate_snapshots",
    "attribute_run",
    "attribution_table",
    "brake_timeline",
    "build_spans",
    "cap_timeline",
    "check_bench",
    "check_bench_dir",
    "check_ledger",
    "compare_metrics",
    "cross_check",
    "default_rules",
    "diff_dicts",
    "diff_results",
    "diff_traces",
    "environment_stamp",
    "fallback_windows",
    "filter_events",
    "format_divergence",
    "group_aggregate",
    "hash_fraction",
    "headline_metrics",
    "incident_table",
    "load_events",
    "merge_incident_snapshots",
    "merge_segments",
    "parse_agg",
    "project",
    "quantile",
    "read_jsonl",
    "read_ledger",
    "render_chrome_trace",
    "render_openmetrics",
    "render_span_tree",
    "render_sparkline",
    "rusage_snapshot",
    "sanitize_metric_name",
    "shard_of_server",
    "shard_suppressed_kinds",
    "span_join",
    "summarize_trace",
    "top_victims",
    "utilization_points",
    "write_chrome_trace",
    "write_textfile",
]
