"""repro.obs — observability for the simulator and the sweep engine.

The paper's argument is made of *visible* power behaviour: per-row
telemetry series (Figure 16), cap/brake event timelines (Figure 18),
and the controller's view of both under faults. This package records
that behaviour from live runs without perturbing them:

* :class:`~repro.obs.recorder.TraceRecorder` sinks — in-memory, JSONL,
  CSV — receive structured events from hook points threaded through
  :class:`~repro.cluster.simulator.ClusterSimulator` (control decisions,
  cap/brake issue→land→verify lifecycles, fallback entry/exit, churn,
  request drops) and :class:`~repro.exec.engine.SweepEngine` (per-run
  wall time, cache hits, worker ids, digests). The default
  :data:`~repro.obs.recorder.NULL_RECORDER` reports ``enabled = False``
  and every hook is guarded by that flag, so an uninstrumented run is
  bit-identical to the pre-observability simulator;
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges,
  and histograms is snapshotted into
  ``SimulationResult.observability`` for instrumented runs and can be
  aggregated across a sweep with
  :func:`~repro.obs.metrics.aggregate_snapshots`;
* :mod:`repro.obs.analyze` reconstructs brake/cap timelines from a
  trace and :func:`~repro.obs.analyze.cross_check`\\ s every reported
  counter against the event stream, making the trace a self-validating
  artifact (``examples/trace_inspect.py`` renders it);
* the live layer (``repro.obs.live`` in the docs) consumes the same
  stream *online*: :mod:`repro.obs.stream` provides per-event windowed
  aggregators (:class:`~repro.obs.stream.Ewma`, rolling rates,
  sliding-window max/quantile) behind a
  :class:`~repro.obs.stream.StreamMonitor`, with
  :class:`~repro.obs.stream.TeeRecorder` composing monitors with
  storage sinks; :mod:`repro.obs.alerts` evaluates declarative
  :class:`~repro.obs.alerts.AlertRule`\\ s (for-duration, hysteresis,
  dedup) into :class:`~repro.obs.alerts.Incident` lifecycles that the
  simulator snapshots into ``SimulationResult.observability``;
  :mod:`repro.obs.export` renders snapshots as OpenMetrics text; and
  :mod:`repro.obs.diff` localizes the first divergent event between
  two traces (or results) for one-command root-causing.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    Incident,
    RateRule,
    SloViolationRule,
    ThresholdRule,
    default_rules,
    incident_table,
    merge_incident_snapshots,
)
from repro.obs.analyze import (
    BrakeSpan,
    CapCommand,
    CheckItem,
    CrossCheckReport,
    brake_timeline,
    cap_timeline,
    cross_check,
    fallback_windows,
    load_events,
    summarize_trace,
    utilization_points,
)
from repro.obs.diff import (
    Divergence,
    diff_results,
    diff_traces,
    format_divergence,
)
from repro.obs.export import (
    render_openmetrics,
    sanitize_metric_name,
    write_textfile,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    CsvRecorder,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)
from repro.obs.stream import (
    Ewma,
    RollingRate,
    StreamMonitor,
    TeeRecorder,
    WindowMax,
    WindowQuantile,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BrakeSpan",
    "CapCommand",
    "CheckItem",
    "Counter",
    "CrossCheckReport",
    "CsvRecorder",
    "Divergence",
    "Ewma",
    "Gauge",
    "Histogram",
    "Incident",
    "JsonlRecorder",
    "MemoryRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RateRule",
    "RollingRate",
    "SloViolationRule",
    "StreamMonitor",
    "TeeRecorder",
    "ThresholdRule",
    "TraceEvent",
    "TraceRecorder",
    "WindowMax",
    "WindowQuantile",
    "aggregate_snapshots",
    "brake_timeline",
    "cap_timeline",
    "cross_check",
    "default_rules",
    "diff_results",
    "diff_traces",
    "fallback_windows",
    "format_divergence",
    "incident_table",
    "load_events",
    "merge_incident_snapshots",
    "read_jsonl",
    "render_openmetrics",
    "sanitize_metric_name",
    "summarize_trace",
    "utilization_points",
    "write_textfile",
]
