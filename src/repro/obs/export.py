"""Exporters: OpenMetrics text and Chrome trace-event (Perfetto) JSON.

Production power-management pipelines are operated through exporters:
every server's telemetry daemon renders counters into a text format a
scraper aggregates. This module does the same for the simulator's
:class:`~repro.obs.metrics.MetricsRegistry` snapshots (and the alert
engine's incident counters), producing the OpenMetrics text exposition
format:

* counters become ``<name>_total``, gauges plain samples, histograms
  the ``_bucket{le=...}`` / ``_sum`` / ``_count`` family with
  *cumulative* bucket counts and a ``+Inf`` bucket;
* metric names are sanitized (``requests.served`` →
  ``repro_requests_served``); an optional label set is stamped on every
  sample (used by sweeps to distinguish runs);
* output ends with ``# EOF`` per the OpenMetrics spec, and parses with
  any Prometheus-compatible scraper.

:func:`render_openmetrics` is pure; :func:`write_textfile` is the
node-exporter-textfile-style convenience. The sweep engine exposes
both through :meth:`~repro.exec.engine.SweepEngine.export_metrics`.

:func:`render_chrome_trace` renders a recorded run in the Chrome
trace-event JSON format (the format Perfetto and ``chrome://tracing``
open): one process track per server with request phases as complete
(``"X"``) slices on per-slot lanes, queue waits on a buffer lane, and
cap/brake landings as instant (``"i"``) events on a row-control track —
any simulator trace becomes visually inspectable with
``python examples/trace_inspect.py perfetto trace.jsonl out.json`` or
:func:`write_chrome_trace`.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = [
    "render_chrome_trace",
    "render_openmetrics",
    "sanitize_metric_name",
    "write_chrome_trace",
    "write_textfile",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Turn a dotted registry name into a legal metric name.

    Dots and other invalid characters become underscores; a leading
    digit is prefixed with an underscore. With a ``prefix``, the two
    are joined by an underscore (``repro`` + ``requests.served`` →
    ``repro_requests_served``).

    Raises:
        ConfigurationError: If the result is empty.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if prefix:
        cleaned = f"{_INVALID_CHARS.sub('_', prefix)}_{cleaned}"
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    if not cleaned or not _NAME_OK.match(cleaned):
        raise ConfigurationError(
            f"cannot derive a metric name from {name!r}"
        )
    return cleaned


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID_CHARS.sub("_", key)}='
        f'"{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def render_openmetrics(
    snapshot: Optional[Dict[str, Any]],
    prefix: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render an observability snapshot as OpenMetrics text.

    ``snapshot`` is the dict stored at
    ``SimulationResult.observability`` (or any
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`): the
    ``counters`` / ``gauges`` / ``histograms`` sections render as their
    metric families (unset gauges — value ``None`` — are skipped), and
    if the snapshot carries an ``incidents`` section (see
    :mod:`repro.obs.alerts`) it renders as
    ``<prefix>_incidents_total{rule=...,severity=...}`` plus an
    ``<prefix>_incidents_open`` gauge. ``None`` renders as an empty
    (but still terminated) exposition.
    """
    labels = dict(labels or {})
    label_text = _render_labels(labels)
    lines: List[str] = []
    snapshot = snapshot or {}

    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total{label_text} {int(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue  # explicit unset state: nothing to expose
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_text} {_format_value(value)}")

    for name, data in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += int(count)
            bucket_labels = _render_labels(
                {**labels, "le": _format_value(bound)}
            )
            lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
        inf_labels = _render_labels({**labels, "le": "+Inf"})
        lines.append(f"{metric}_bucket{inf_labels} {int(data['count'])}")
        lines.append(
            f"{metric}_sum{label_text} {_format_value(data['sum'])}"
        )
        lines.append(f"{metric}_count{label_text} {int(data['count'])}")

    incidents = snapshot.get("incidents")
    if incidents is not None:
        metric = sanitize_metric_name("incidents", prefix)
        totals: Dict[tuple, int] = {}
        open_count = 0
        for incident in incidents:
            key = (str(incident["rule"]), str(incident["severity"]))
            totals[key] = totals.get(key, 0) + 1
            if incident.get("resolved_at") is None:
                open_count += 1
        lines.append(f"# TYPE {metric} counter")
        for (rule, severity), count in sorted(totals.items()):
            incident_labels = _render_labels(
                {**labels, "rule": rule, "severity": severity}
            )
            lines.append(f"{metric}_total{incident_labels} {count}")
        open_metric = sanitize_metric_name("incidents_open", prefix)
        lines.append(f"# TYPE {open_metric} gauge")
        lines.append(f"{open_metric}{label_text} {open_count}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_textfile(
    path: str,
    snapshot: Optional[Dict[str, Any]],
    prefix: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render ``snapshot`` and write it to ``path``; returns the text."""
    text = render_openmetrics(snapshot, prefix=prefix, labels=labels)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


# ----------------------------------------------------------------------
# Chrome trace-event (Perfetto) export
# ----------------------------------------------------------------------
_US = 1e6  # trace-event timestamps are microseconds


def _instant_name(event: Mapping[str, Any]) -> Optional[str]:
    kind = event.get("kind")
    if kind == "cap_land":
        clock = event.get("clock_mhz")
        target = "uncap" if clock is None else f"{clock:.0f} MHz"
        return f"cap {event.get('priority')}: {target}"
    if kind == "brake_land":
        return "brake on" if event.get("on") else "brake off"
    if kind == "fallback_enter":
        return "fallback enter"
    if kind == "fallback_exit":
        return "fallback exit"
    return None


def render_chrome_trace(source: Any) -> Dict[str, Any]:
    """Render a recorded run as a Chrome trace-event JSON object.

    ``source`` is anything :func:`repro.obs.analyze.load_events`
    accepts (JSONL path, recorder, event sequence) or an already-fed
    :class:`~repro.obs.spans.SpanBuilder`. The layout:

    * ``pid 0`` — the row-control track: cap/brake landings and
      fallback transitions as instant events;
    * one process per server (``pid 1..N``): ``tid 0`` is the buffer
      lane (queue-wait slices of buffered requests), ``tid 1..`` are
      greedily assigned request lanes; each executed phase is a
      complete (``"X"``) slice, with an instant marking every cap/brake
      rescale that repriced it mid-flight.

    Spans still open at the end of the trace are clamped to the last
    event time. ``traceEvents`` is sorted by timestamp (metadata
    first), so per-track timestamps are monotonic. The result is
    JSON-serializable; Perfetto and ``chrome://tracing`` open it
    directly.
    """
    from repro.obs.analyze import load_events
    from repro.obs.spans import SpanBuilder

    if isinstance(source, SpanBuilder):
        builder = source
        instants = list(builder.control_events)
        timed = [float(e["t"]) for e in instants if "t" in e]
    else:
        events = load_events(source)
        builder = SpanBuilder()
        for event in events:
            builder.emit(event)
        instants = events
        timed = [float(e["t"]) for e in events if "t" in e]
    spans = builder.build()
    for span in spans:
        timed.append(span.arrival_t)
        if span.end_t is not None:
            timed.append(span.end_t)
        for phase in span.phases:
            timed.append(phase.end if phase.end is not None else phase.start)
    if builder.t_end is not None:
        timed.append(builder.t_end)
    t_clamp = max(timed) if timed else 0.0

    trace_events: List[Dict[str, Any]] = []
    trace_events.append({
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0, "ts": 0,
        "args": {"name": "row control"},
    })
    servers = sorted(
        {span.server for span in spans if span.server is not None}
        | set(builder.meta.get("servers") or {})
    )
    pids = {server: index + 1 for index, server in enumerate(servers)}
    for server, pid in pids.items():
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": f"server {server}"},
        })

    for event in instants:
        name = _instant_name(event)
        if name is None:
            continue
        trace_events.append({
            "ph": "i", "s": "g", "name": name, "cat": "control",
            "ts": float(event["t"]) * _US, "pid": 0, "tid": 0,
            "args": {
                key: value for key, value in event.items()
                if key not in ("t", "kind")
            },
        })

    # Greedy lane assignment per server: a request takes the first lane
    # whose previous occupant finished by its start.
    lanes: Dict[str, List[float]] = {}
    for span in sorted(
        spans, key=lambda s: (s.start_t if s.start_t is not None else
                              s.arrival_t)
    ):
        if span.server is None or not span.phases:
            continue
        pid = pids[span.server]
        start = span.phases[0].start
        end = span.end_t if span.end_t is not None else t_clamp
        if span.queued and start > span.arrival_t:
            trace_events.append({
                "ph": "X", "name": f"queued r{span.request_id}",
                "cat": "queue", "ts": span.arrival_t * _US,
                "dur": (start - span.arrival_t) * _US,
                "pid": pid, "tid": 0,
                "args": {"request_id": span.request_id},
            })
        server_lanes = lanes.setdefault(span.server, [])
        for lane, busy_until in enumerate(server_lanes):
            if busy_until <= start:
                break
        else:
            server_lanes.append(0.0)
            lane = len(server_lanes) - 1
        server_lanes[lane] = end
        tid = lane + 1
        for phase in span.phases:
            phase_end = phase.end if phase.end is not None else t_clamp
            trace_events.append({
                "ph": "X",
                "name": f"{phase.phase} r{span.request_id}",
                "cat": "phase",
                "ts": phase.start * _US,
                "dur": max(0.0, phase_end - phase.start) * _US,
                "pid": pid, "tid": tid,
                "args": {
                    "request_id": span.request_id,
                    "priority": span.priority,
                    "workload": span.workload,
                    "full_clock_s": phase.full_clock_s,
                    "ratios": [iv.ratio for iv in phase.intervals],
                },
            })
            for interval in phase.intervals:
                if interval.cause is None:
                    continue
                trace_events.append({
                    "ph": "i", "s": "t",
                    "name": f"{interval.cause} -> {interval.ratio:.2f}",
                    "cat": "rescale",
                    "ts": interval.start * _US, "pid": pid, "tid": tid,
                    "args": dict(interval.stamp),
                })

    trace_events.sort(
        key=lambda e: (0 if e["ph"] == "M" else 1, e["ts"])
    )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, source: Any) -> Dict[str, Any]:
    """Render ``source`` as a Chrome trace and write it to ``path``."""
    trace = render_chrome_trace(source)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return trace
