"""OpenMetrics / Prometheus text rendering of observability snapshots.

Production power-management pipelines are operated through exporters:
every server's telemetry daemon renders counters into a text format a
scraper aggregates. This module does the same for the simulator's
:class:`~repro.obs.metrics.MetricsRegistry` snapshots (and the alert
engine's incident counters), producing the OpenMetrics text exposition
format:

* counters become ``<name>_total``, gauges plain samples, histograms
  the ``_bucket{le=...}`` / ``_sum`` / ``_count`` family with
  *cumulative* bucket counts and a ``+Inf`` bucket;
* metric names are sanitized (``requests.served`` →
  ``repro_requests_served``); an optional label set is stamped on every
  sample (used by sweeps to distinguish runs);
* output ends with ``# EOF`` per the OpenMetrics spec, and parses with
  any Prometheus-compatible scraper.

:func:`render_openmetrics` is pure; :func:`write_textfile` is the
node-exporter-textfile-style convenience. The sweep engine exposes
both through :meth:`~repro.exec.engine.SweepEngine.export_metrics`.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = [
    "render_openmetrics",
    "sanitize_metric_name",
    "write_textfile",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """Turn a dotted registry name into a legal metric name.

    Dots and other invalid characters become underscores; a leading
    digit is prefixed with an underscore. With a ``prefix``, the two
    are joined by an underscore (``repro`` + ``requests.served`` →
    ``repro_requests_served``).

    Raises:
        ConfigurationError: If the result is empty.
    """
    cleaned = _INVALID_CHARS.sub("_", name)
    if prefix:
        cleaned = f"{_INVALID_CHARS.sub('_', prefix)}_{cleaned}"
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    if not cleaned or not _NAME_OK.match(cleaned):
        raise ConfigurationError(
            f"cannot derive a metric name from {name!r}"
        )
    return cleaned


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_INVALID_CHARS.sub("_", key)}='
        f'"{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def render_openmetrics(
    snapshot: Optional[Dict[str, Any]],
    prefix: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render an observability snapshot as OpenMetrics text.

    ``snapshot`` is the dict stored at
    ``SimulationResult.observability`` (or any
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`): the
    ``counters`` / ``gauges`` / ``histograms`` sections render as their
    metric families (unset gauges — value ``None`` — are skipped), and
    if the snapshot carries an ``incidents`` section (see
    :mod:`repro.obs.alerts`) it renders as
    ``<prefix>_incidents_total{rule=...,severity=...}`` plus an
    ``<prefix>_incidents_open`` gauge. ``None`` renders as an empty
    (but still terminated) exposition.
    """
    labels = dict(labels or {})
    label_text = _render_labels(labels)
    lines: List[str] = []
    snapshot = snapshot or {}

    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total{label_text} {int(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue  # explicit unset state: nothing to expose
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{label_text} {_format_value(value)}")

    for name, data in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += int(count)
            bucket_labels = _render_labels(
                {**labels, "le": _format_value(bound)}
            )
            lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
        inf_labels = _render_labels({**labels, "le": "+Inf"})
        lines.append(f"{metric}_bucket{inf_labels} {int(data['count'])}")
        lines.append(
            f"{metric}_sum{label_text} {_format_value(data['sum'])}"
        )
        lines.append(f"{metric}_count{label_text} {int(data['count'])}")

    incidents = snapshot.get("incidents")
    if incidents is not None:
        metric = sanitize_metric_name("incidents", prefix)
        totals: Dict[tuple, int] = {}
        open_count = 0
        for incident in incidents:
            key = (str(incident["rule"]), str(incident["severity"]))
            totals[key] = totals.get(key, 0) + 1
            if incident.get("resolved_at") is None:
                open_count += 1
        lines.append(f"# TYPE {metric} counter")
        for (rule, severity), count in sorted(totals.items()):
            incident_labels = _render_labels(
                {**labels, "rule": rule, "severity": severity}
            )
            lines.append(f"{metric}_total{incident_labels} {count}")
        open_metric = sanitize_metric_name("incidents_open", prefix)
        lines.append(f"# TYPE {open_metric} gauge")
        lines.append(f"{open_metric}{label_text} {open_count}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_textfile(
    path: str,
    snapshot: Optional[Dict[str, Any]],
    prefix: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render ``snapshot`` and write it to ``path``; returns the text."""
    text = render_openmetrics(snapshot, prefix=prefix, labels=labels)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
