"""Turn a simulation trace into timelines and a self-validating artifact.

The trace a :class:`~repro.obs.recorder.TraceRecorder` captures is only
trustworthy if it agrees with the simulator's own accounting. This
module reconstructs the brake and cap lifecycles (the Figure 18 event
timeline) and the fallback windows from the raw event stream, and
:func:`cross_check` re-derives every counter the simulator reports —
``power_brake_events``, ``capping_actions``, the full
:class:`~repro.faults.report.RobustnessReport` ledger, per-tier
served/dropped counts — from the trace alone, comparing them entry by
entry against the :class:`~repro.cluster.metrics.SimulationResult`. A
trace that passes is a faithful record; a mismatch means either a
filtered trace (see the recorders' ``kinds`` option) or an
instrumentation bug worth failing a test over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, SimulationError
from repro.obs.recorder import TraceEvent, read_jsonl
from repro.workloads.spec import Priority

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import
    # cycle: the simulator imports repro.obs for its default recorder)
    from repro.cluster.metrics import SimulationResult

__all__ = [
    "BrakeSpan",
    "CapCommand",
    "CheckItem",
    "CrossCheckReport",
    "brake_timeline",
    "cap_timeline",
    "cross_check",
    "fallback_windows",
    "load_events",
    "summarize_trace",
    "utilization_points",
]


def load_events(source: Any) -> List[TraceEvent]:
    """Normalize a trace source into an event list.

    Accepts a JSONL path, a :class:`~repro.obs.recorder.MemoryRecorder`,
    or an already-loaded event sequence. Events are returned sorted by
    ``t`` (stable, so same-time events keep emission order; engine
    events without ``t`` sort first).
    """
    if isinstance(source, str):
        events: Sequence[TraceEvent] = read_jsonl(source)
    elif hasattr(source, "events"):
        events = source.events
    else:
        events = list(source)
    return sorted(events, key=lambda e: float(e.get("t", float("-inf"))))


def _count(events: Sequence[TraceEvent], kind: str, **match: Any) -> int:
    total = 0
    for event in events:
        if event.get("kind") != kind:
            continue
        if all(event.get(key) == value for key, value in match.items()):
            total += 1
    return total


# ----------------------------------------------------------------------
# Timeline reconstruction
# ----------------------------------------------------------------------
@dataclass
class BrakeSpan:
    """One brake engagement, from request to release.

    Attributes:
        requested_at: When the controller decided to engage.
        source: ``"policy"`` (utilization spike) or ``"fallback"``
            (persistent telemetry staleness).
        engaged_at: When the brake landed row-wide (``None`` if the run
            ended first).
        release_requested_at: When a release was last requested.
        released_at: When the release landed (``None`` while engaged).
        cancelled_releases: Pending releases cancelled by a fresh spike
            (the re-engage race path — not new engagements).
    """

    requested_at: float
    source: str
    engaged_at: Optional[float] = None
    release_requested_at: Optional[float] = None
    released_at: Optional[float] = None
    cancelled_releases: int = 0

    @property
    def engaged_duration_s(self) -> Optional[float]:
        """Landed-to-released span (``None`` if either end is open)."""
        if self.engaged_at is None or self.released_at is None:
            return None
        return self.released_at - self.engaged_at


def brake_timeline(events: Sequence[TraceEvent]) -> List[BrakeSpan]:
    """Reconstruct brake engagements from the event stream.

    The simulator emits lifecycle events only when they take effect
    (superseded landings are filtered at the source), so the
    reconstruction is a direct replay of the brake state machine.
    """
    spans: List[BrakeSpan] = []
    open_span: Optional[BrakeSpan] = None
    for event in events:
        kind = event.get("kind")
        if kind == "brake_request":
            open_span = BrakeSpan(
                requested_at=float(event["t"]),
                source=str(event.get("source", "policy")),
            )
            spans.append(open_span)
        elif open_span is None:
            continue
        elif kind == "brake_land":
            if event.get("on"):
                open_span.engaged_at = float(event["t"])
            else:
                open_span.released_at = float(event["t"])
                open_span = None
        elif kind == "brake_release_request":
            open_span.release_requested_at = float(event["t"])
        elif kind == "brake_cancel_release":
            open_span.cancelled_releases += 1
            open_span.release_requested_at = None
    return spans


@dataclass
class CapCommand:
    """One frequency-cap command lifecycle for a priority group.

    Attributes:
        issued_at: First dispatch time.
        priority: Target priority pool.
        clock_mhz: Commanded SM clock (``None`` = uncap).
        generation: The group's command generation stamp.
        landed_at: When the (first effective) landing applied.
        verified: Verify outcome (``None`` when verification is elided —
            perfect actuation paths skip it).
        reissues: Re-dispatches by the reliable-command layer.
    """

    issued_at: float
    priority: str
    clock_mhz: Optional[float]
    generation: int
    landed_at: Optional[float] = None
    verified: Optional[bool] = None
    reissues: int = 0


def cap_timeline(events: Sequence[TraceEvent]) -> List[CapCommand]:
    """Reconstruct cap-command lifecycles, in issue order."""
    by_key: Dict[Tuple[str, int], CapCommand] = {}
    commands: List[CapCommand] = []
    for event in events:
        kind = event.get("kind")
        if kind not in ("cap_issue", "cap_land", "cap_verify", "cap_reissue"):
            continue
        key = (str(event["priority"]), int(event["generation"]))
        if kind == "cap_issue":
            if int(event.get("attempts", 0)) == 0:
                command = CapCommand(
                    issued_at=float(event["t"]),
                    priority=key[0],
                    clock_mhz=event.get("clock_mhz"),
                    generation=key[1],
                )
                by_key[key] = command
                commands.append(command)
            continue
        command = by_key.get(key)
        if command is None:
            continue
        if kind == "cap_land" and command.landed_at is None:
            command.landed_at = float(event["t"])
        elif kind == "cap_verify":
            command.verified = bool(event["ok"])
        elif kind == "cap_reissue":
            command.reissues += 1
    return commands


def fallback_windows(
    events: Sequence[TraceEvent],
) -> List[Tuple[float, Optional[float]]]:
    """Stale-telemetry fallback windows as ``(entered, exited)`` pairs.

    An exit of ``None`` means the run ended inside the window.
    """
    windows: List[Tuple[float, Optional[float]]] = []
    entered: Optional[float] = None
    for event in events:
        kind = event.get("kind")
        if kind == "fallback_enter" and entered is None:
            entered = float(event["t"])
        elif kind == "fallback_exit" and entered is not None:
            windows.append((entered, float(event["t"])))
            entered = None
    if entered is not None:
        windows.append((entered, None))
    return windows


def utilization_points(
    events: Sequence[TraceEvent],
) -> List[Tuple[float, float]]:
    """The ``(t, observed utilization)`` series the policy actually saw.

    This is the controller's view — after telemetry noise, spikes,
    freezes, and delivery delay — not the true row power; compare it
    against ``SimulationResult.power_series`` to visualize exactly what
    the fault plan hid from the policy.
    """
    return [
        (float(event["t"]), float(event["utilization"]))
        for event in events
        if event.get("kind") == "control"
    ]


# ----------------------------------------------------------------------
# Trace-vs-result cross-checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckItem:
    """One reconstructed-vs-reported comparison."""

    name: str
    expected: Any
    actual: Any

    @property
    def ok(self) -> bool:
        return self.expected == self.actual


@dataclass
class CrossCheckReport:
    """Outcome of replaying a trace against a simulation result.

    Attributes:
        checks: Every comparison performed (reported value first).
    """

    checks: List[CheckItem] = field(default_factory=list)

    @property
    def mismatches(self) -> List[CheckItem]:
        """The comparisons that disagreed."""
        return [check for check in self.checks if not check.ok]

    @property
    def ok(self) -> bool:
        """True when the trace reproduces every reported counter."""
        return not self.mismatches

    def require_ok(self) -> None:
        """Raise with a readable diff when any comparison disagreed.

        Raises:
            SimulationError: Listing every mismatched counter.
        """
        if self.ok:
            return
        lines = ", ".join(
            f"{c.name}: result={c.expected!r} trace={c.actual!r}"
            for c in self.mismatches
        )
        raise SimulationError(f"trace does not match result: {lines}")

    def summary_lines(self) -> List[str]:
        """Human-readable check-by-check report."""
        lines = [
            f"{len(self.checks)} checks, {len(self.mismatches)} mismatches"
        ]
        for check in self.checks:
            marker = "ok " if check.ok else "FAIL"
            lines.append(
                f"  [{marker}] {check.name}: result={check.expected!r} "
                f"trace={check.actual!r}"
            )
        return lines


def cross_check(
    source: Any, result: SimulationResult
) -> CrossCheckReport:
    """Re-derive the result's counters from its trace and compare.

    Every count below is computed twice by independent code paths — once
    by the simulator's inline accounting, once from the recorded event
    stream — so agreement validates both. Requires an unfiltered trace
    (recorders' ``kinds`` option elides events these checks need).

    Raises:
        ConfigurationError: If the result carries no robustness report
            (it always does when produced by :class:`ClusterSimulator`).
    """
    events = load_events(source)
    report = result.robustness
    if report is None:
        raise ConfigurationError(
            "cross_check needs a result with a robustness report"
        )
    checks: List[CheckItem] = []

    def check(name: str, expected: Any, actual: Any) -> None:
        checks.append(CheckItem(name=name, expected=expected, actual=actual))

    issue_events = [
        e for e in events if e.get("kind") in ("cap_issue", "brake_issue")
    ]
    verify_events = [
        e for e in events if e.get("kind") in ("cap_verify", "brake_verify")
    ]

    check(
        "power_brake_events",
        result.power_brake_events,
        _count(events, "brake_request"),
    )
    check(
        "capping_actions",
        result.capping_actions,
        _count(events, "cap_issue", attempts=0),
    )
    check("commands_issued", report.commands_issued, len(issue_events))
    check(
        "silent_actuation_failures",
        report.silent_actuation_failures,
        sum(1 for e in issue_events if e.get("silent")),
    )
    check(
        "reissues",
        report.reissues,
        _count(events, "cap_reissue") + _count(events, "brake_reissue"),
    )
    check(
        "commands_verified",
        report.commands_verified,
        sum(1 for e in verify_events if e.get("ok")),
    )
    check(
        "failures_detected",
        report.failures_detected,
        sum(1 for e in verify_events if not e.get("ok")),
    )
    check(
        "commands_recovered",
        report.commands_recovered,
        sum(
            1 for e in verify_events
            if e.get("ok") and int(e.get("attempts", 0)) > 0
        ),
    )
    check(
        "commands_unrecovered",
        report.commands_unrecovered,
        sum(1 for e in verify_events if e.get("abandoned")),
    )
    check(
        "fallback_entries",
        report.fallback_entries,
        _count(events, "fallback_enter"),
    )
    check(
        "fallback_brakes",
        report.fallback_brakes,
        _count(events, "brake_request", source="fallback"),
    )
    check(
        "telemetry_dropped_ticks",
        report.telemetry_dropped_ticks,
        _count(events, "telemetry_fault", fate="dropped"),
    )
    check(
        "telemetry_frozen_ticks",
        report.telemetry_frozen_ticks,
        _count(events, "telemetry_fault", fate="frozen"),
    )
    check(
        "server_failures",
        report.server_failures,
        _count(events, "server_fail"),
    )
    check(
        "server_recoveries",
        report.server_recoveries,
        _count(events, "server_recover"),
    )
    check(
        "requests_lost_to_churn",
        report.requests_lost_to_churn,
        _count(events, "drop", reason="churn"),
    )
    check("total_served", result.total_served, _count(events, "serve"))
    for priority in Priority:
        metrics = result.per_priority[priority]
        check(
            f"served[{priority.value}]",
            metrics.served,
            _count(events, "serve", priority=priority.value),
        )
        check(
            f"dropped[{priority.value}]",
            metrics.dropped,
            _count(events, "drop", priority=priority.value),
        )
    # The brake timeline must agree with the flat count too: every
    # reconstructed span is one engagement.
    check(
        "brake_timeline_spans",
        result.power_brake_events,
        len(brake_timeline(events)),
    )
    snapshot = result.observability
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        check(
            "observability.requests_served",
            result.total_served,
            counters.get("requests.served"),
        )
        check(
            "observability.brake_engagements",
            result.power_brake_events,
            counters.get("brake.engagements"),
        )
        check(
            "observability.capping_actions",
            result.capping_actions,
            counters.get("commands.cap_actions"),
        )
    # --- Power-delivery protection audit (only when the run carried a
    # protection spec). Each ledger counter is re-derived from the trip,
    # shed, and re-energization events the protection layer emitted.
    powerfail = result.powerfail
    if powerfail is not None:
        check("powerfail.trips", powerfail.trips, _count(events, "trip"))
        check(
            "powerfail.cascade_trips",
            powerfail.cascade_trips,
            _count(events, "trip", cascaded=True),
        )
        check(
            "powerfail.shed_engagements",
            powerfail.shed_engagements,
            _count(events, "shed_engage"),
        )
        check(
            "powerfail.requests_dropped_shed",
            powerfail.requests_dropped_shed,
            _count(events, "drop", reason="shed"),
        )
        check(
            "powerfail.requests_deferred",
            powerfail.requests_deferred,
            _count(events, "shed_defer"),
        )
        check(
            "powerfail.requests_lost_to_trips",
            powerfail.requests_lost_to_trips,
            _count(events, "drop", reason="trip"),
        )
        check(
            "powerfail.reenergizations",
            powerfail.reenergizations,
            _count(events, "reenergize_done"),
        )
    # --- Span/attribution audit (only when the trace carries spans;
    # traces recorded before the span layer skip it). Conservation must
    # hold *exactly*: per served request, the attributed components sum
    # to the realized latency, and the realized latency re-derived from
    # span boundaries equals the serve event's reported one, bitwise.
    if any(e.get("kind") == "phase_start" for e in events):
        # Local import: repro.obs.attribution builds on repro.obs.spans,
        # which imports this module for load_events.
        from repro.obs.attribution import attribute_run

        attribution = attribute_run(events)
        check(
            "attribution.spans_served",
            result.total_served,
            len(attribution.requests),
        )
        check(
            "attribution.spans_dropped",
            sum(m.dropped for m in result.per_priority.values()),
            attribution.dropped,
        )
        check("attribution.spans_unfinished", 0, attribution.unfinished)
        check(
            "attribution.conservation_violations",
            0,
            len(attribution.conservation_violations),
        )
        check(
            "attribution.latency_mismatches",
            0,
            attribution.latency_mismatches,
        )
    return CrossCheckReport(checks=checks)


# ----------------------------------------------------------------------
# Human-readable rendering (the trace_inspect CLI's engine)
# ----------------------------------------------------------------------
def summarize_trace(source: Any) -> List[str]:
    """Render a trace as a compact timeline summary.

    Returns printable lines: event census, brake spans, cap commands,
    and fallback windows — the Figure 18 story of one run, from the
    artifact alone.
    """
    events = load_events(source)
    lines: List[str] = []
    census: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind"))
        census[kind] = census.get(kind, 0) + 1
    timed = [e for e in events if "t" in e]
    if timed:
        lines.append(
            f"{len(events)} events spanning "
            f"t={float(timed[0]['t']):.1f}s .. "
            f"t={float(timed[-1]['t']):.1f}s"
        )
    else:
        lines.append(f"{len(events)} events (no simulation-time events)")
    lines.append(
        "event census: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(census.items())
        )
    )

    spans = brake_timeline(events)
    lines.append(f"brake engagements: {len(spans)}")
    for index, span in enumerate(spans):
        engaged = (
            f"landed t={span.engaged_at:.1f}s"
            if span.engaged_at is not None else "never landed"
        )
        if span.released_at is not None:
            released = f"released t={span.released_at:.1f}s"
        else:
            released = "still engaged at end"
        extra = (
            f", {span.cancelled_releases} cancelled release(s)"
            if span.cancelled_releases else ""
        )
        lines.append(
            f"  [{index}] {span.source} request t={span.requested_at:.1f}s, "
            f"{engaged}, {released}{extra}"
        )

    commands = cap_timeline(events)
    lines.append(f"cap commands: {len(commands)}")
    for command in commands:
        target = (
            "uncap" if command.clock_mhz is None
            else f"{command.clock_mhz:.0f} MHz"
        )
        landed = (
            f"landed t={command.landed_at:.1f}s"
            if command.landed_at is not None else "never landed"
        )
        verified = {True: "verified", False: "NOT verified", None: ""}[
            command.verified
        ]
        reissued = (
            f", {command.reissues} reissue(s)" if command.reissues else ""
        )
        suffix = f" [{verified}]" if verified else ""
        lines.append(
            f"  t={command.issued_at:7.1f}s {command.priority:>4} -> "
            f"{target:>9} (gen {command.generation}), {landed}"
            f"{reissued}{suffix}"
        )

    windows = fallback_windows(events)
    if windows:
        lines.append(f"stale-telemetry fallback windows: {len(windows)}")
        for entered, exited in windows:
            end = f"{exited:.1f}s" if exited is not None else "end of run"
            lines.append(f"  t={entered:.1f}s .. {end}")
    return lines
