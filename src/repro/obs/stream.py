"""Streaming (online) aggregation over the live trace-event stream.

PR 3's observability is post-hoc: record a trace, then reconstruct
timelines offline. Operating an oversubscribed row the way the paper
(and the oversubscription literature it builds on) describes requires
the opposite — *online* windowed aggregation updated per event, with no
second pass:

* :class:`Ewma` — continuous-time exponentially weighted moving average
  with a half-life in simulation seconds (irregular sampling is handled
  by decaying per elapsed time, not per sample);
* :class:`RollingRate` — event arrivals per second over a sliding
  window;
* :class:`WindowMax` — sliding-window maximum in O(1) amortized time
  (monotonic deque);
* :class:`WindowQuantile` — sliding-window quantile over a sorted
  window (bisect insertion / removal).

:class:`StreamMonitor` is a :class:`~repro.obs.recorder.TraceRecorder`
that feeds these aggregators from named probes (event kind + field), so
it can sit directly on the simulator's hook points; :class:`TeeRecorder`
fans one event stream out to several recorders, composing monitors and
alert engines with the plain Jsonl/Csv/Memory sinks.

All consumers observe only: attaching them never perturbs the
simulation (the bit-identical guarantee of :mod:`repro.obs` extends to
every class here, asserted in ``tests/test_obs_stream.py``). Every
window convention is half-open ``(now - window_s, now]``, and every
streaming value equals the brute-force recomputation over the recorded
trace (property-tested with hypothesis).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.recorder import TraceEvent, TraceRecorder

__all__ = [
    "Ewma",
    "RollingRate",
    "StreamMonitor",
    "TeeRecorder",
    "WindowMax",
    "WindowQuantile",
]


class Ewma:
    """Continuous-time EWMA: older samples decay by elapsed time.

    On a sample ``x`` at time ``t``, the previous average is decayed by
    ``0.5 ** (dt / halflife_s)`` and the new sample supplies the
    remaining weight. A sample with ``dt == 0`` therefore carries zero
    weight (the average is already "current" at that instant) — a
    deliberate, deterministic convention for same-timestamp events.

    Attributes:
        halflife_s: Time for a sample's weight to halve.
    """

    __slots__ = ("halflife_s", "_value", "_last_t")

    def __init__(self, halflife_s: float) -> None:
        if halflife_s <= 0:
            raise ConfigurationError("halflife_s must be positive")
        self.halflife_s = float(halflife_s)
        self._value: Optional[float] = None
        self._last_t: Optional[float] = None

    def observe(self, t: float, value: float) -> None:
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            decay = 0.5 ** ((t - self._last_t) / self.halflife_s)
            self._value = decay * self._value + (1.0 - decay) * value
        self._last_t = t

    def current(self, now: Optional[float] = None) -> Optional[float]:
        """The smoothed value (``None`` before the first sample).

        ``now`` is accepted for interface uniformity with the window
        aggregators; an EWMA does not evict, so it is unused.
        """
        return self._value


class RollingRate:
    """Event arrivals per second over a sliding window.

    Attributes:
        window_s: Window width in seconds.
    """

    __slots__ = ("window_s", "_times")

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.window_s = float(window_s)
        self._times: Deque[float] = deque()

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        times = self._times
        while times and times[0] <= cutoff:
            times.popleft()

    def observe(self, t: float, value: float = 1.0) -> None:
        """Count one arrival at ``t`` (``value`` ignored: rates count)."""
        self._times.append(t)
        self._evict(t)

    def count(self, now: float) -> int:
        """Arrivals inside ``(now - window_s, now]``."""
        self._evict(now)
        return len(self._times)

    def current(self, now: float) -> float:
        """Arrivals per second over the window ending at ``now``."""
        return self.count(now) / self.window_s


class WindowMax:
    """Sliding-window maximum via a monotonically decreasing deque."""

    __slots__ = ("window_s", "_window")

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.window_s = float(window_s)
        self._window: Deque[Tuple[float, float]] = deque()

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        window = self._window
        while window and window[0][0] <= cutoff:
            window.popleft()

    def observe(self, t: float, value: float) -> None:
        value = float(value)
        window = self._window
        # Values dominated by the newcomer can never be the max again.
        while window and window[-1][1] <= value:
            window.pop()
        window.append((t, value))
        self._evict(t)

    def current(self, now: float) -> Optional[float]:
        """Maximum over the window (``None`` when the window is empty)."""
        self._evict(now)
        if not self._window:
            return None
        return self._window[0][1]


class WindowQuantile:
    """Sliding-window quantile (numpy-style linear interpolation).

    Keeps the window twice: an arrival-ordered deque for eviction and a
    sorted list for O(log n) rank queries.

    Attributes:
        window_s: Window width in seconds.
        q: Quantile in [0, 1] (0.5 = median).
    """

    __slots__ = ("window_s", "q", "_window", "_sorted")

    def __init__(self, window_s: float, q: float) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("q must be within [0, 1]")
        self.window_s = float(window_s)
        self.q = float(q)
        self._window: Deque[Tuple[float, float]] = deque()
        self._sorted: List[float] = []

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        window = self._window
        while window and window[0][0] <= cutoff:
            _, stale = window.popleft()
            # Removes one occurrence; duplicates are fine.
            del self._sorted[bisect_left(self._sorted, stale)]

    def observe(self, t: float, value: float) -> None:
        value = float(value)
        self._window.append((t, value))
        insort(self._sorted, value)
        self._evict(t)

    def current(self, now: float) -> Optional[float]:
        """The windowed quantile (``None`` when the window is empty)."""
        self._evict(now)
        values = self._sorted
        if not values:
            return None
        rank = self.q * (len(values) - 1)
        lower = int(rank)
        frac = rank - lower
        if frac == 0.0 or lower + 1 >= len(values):
            return values[lower]
        return values[lower] + frac * (values[lower + 1] - values[lower])


@dataclass
class _Probe:
    """One named signal: events of ``kind`` feed ``aggregate``."""

    name: str
    kind: str
    field: Optional[str]
    aggregate: Any


class StreamMonitor(TraceRecorder):
    """A recorder that maintains online aggregates instead of a log.

    Probes bind an event kind (and optionally a payload field) to an
    aggregator; :meth:`emit` routes matching events as they happen, so
    the monitor's values are live at any point of the run — no post-hoc
    pass over a stored trace. Events without a simulation time ``t``
    (engine events) are ignored.

    Example::

        monitor = StreamMonitor()
        monitor.ewma("power", kind="control",
                     field="observed_power_w", halflife_s=60.0)
        monitor.rate("brakes", kind="brake_request", window_s=600.0)
        ClusterSimulator(config, policy, recorder=monitor).run(...)
        monitor.value("power")   # live smoothed row power
    """

    def __init__(self) -> None:
        self._probes: Dict[str, _Probe] = {}
        self._by_kind: Dict[str, List[_Probe]] = {}
        self._last_t: Optional[float] = None

    def _register(self, probe: _Probe) -> Any:
        if probe.name in self._probes:
            raise ConfigurationError(
                f"probe {probe.name!r} already registered"
            )
        self._probes[probe.name] = probe
        self._by_kind.setdefault(probe.kind, []).append(probe)
        return probe.aggregate

    def ewma(
        self, name: str, *, kind: str, field: str, halflife_s: float
    ) -> Ewma:
        """Register an EWMA over ``field`` of ``kind`` events."""
        return self._register(
            _Probe(name, kind, field, Ewma(halflife_s))
        )

    def rate(self, name: str, *, kind: str, window_s: float) -> RollingRate:
        """Register an event-rate probe counting ``kind`` events."""
        return self._register(
            _Probe(name, kind, None, RollingRate(window_s))
        )

    def window_max(
        self, name: str, *, kind: str, field: str, window_s: float
    ) -> WindowMax:
        """Register a sliding-window max over ``field`` of ``kind``."""
        return self._register(
            _Probe(name, kind, field, WindowMax(window_s))
        )

    def quantile(
        self, name: str, *, kind: str, field: str, window_s: float, q: float
    ) -> WindowQuantile:
        """Register a sliding-window quantile over ``field`` of ``kind``."""
        return self._register(
            _Probe(name, kind, field, WindowQuantile(window_s, q))
        )

    def emit(self, event: TraceEvent) -> None:
        t = event.get("t")
        if t is None:
            return
        t = float(t)
        self._last_t = t
        probes = self._by_kind.get(event.get("kind"))
        if not probes:
            return
        for probe in probes:
            if probe.field is None:
                probe.aggregate.observe(t, 1.0)
            else:
                value = event.get(probe.field)
                if value is not None:
                    probe.aggregate.observe(t, float(value))

    def finalize(self, t_end: float) -> None:
        self._last_t = t_end

    def value(self, name: str, now: Optional[float] = None) -> Optional[Any]:
        """Current value of probe ``name`` (``None`` with no data yet).

        ``now`` defaults to the latest event time seen, so window
        aggregates are evaluated at the stream's frontier.

        Raises:
            ConfigurationError: For an unknown probe name.
        """
        probe = self._probes.get(name)
        if probe is None:
            raise ConfigurationError(f"no probe named {name!r}")
        when = now if now is not None else self._last_t
        if when is None:
            return None
        return probe.aggregate.current(when)

    def values(self, now: Optional[float] = None) -> Dict[str, Any]:
        """All probe values by name (see :meth:`value`)."""
        return {
            name: self.value(name, now) for name in sorted(self._probes)
        }

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        """Final probe values, under a ``"stream"`` key."""
        if not self._probes:
            return None
        return {"stream": self.values()}


class TeeRecorder(TraceRecorder):
    """Fans one event stream out to several recorders.

    This is how live consumers compose with the storage sinks: tee a
    :class:`~repro.obs.recorder.JsonlRecorder` (the durable artifact)
    with a :class:`StreamMonitor` and an alert engine, and hand the tee
    to the simulator. Children whose ``enabled`` is ``False`` are
    skipped entirely; a tee of only disabled children is itself
    disabled (the simulator's hook guard short-circuits as usual).
    """

    def __init__(self, children: Sequence[TraceRecorder]) -> None:
        self.children: Tuple[TraceRecorder, ...] = tuple(children)
        self._active = tuple(c for c in self.children if c.enabled)
        self.enabled = bool(self._active)

    def emit(self, event: TraceEvent) -> None:
        for child in self._active:
            child.emit(event)

    def finalize(self, t_end: float) -> None:
        for child in self._active:
            child.finalize(t_end)

    def observability_snapshot(self) -> Optional[Dict[str, Any]]:
        """Shallow merge of the children's snapshots, in child order.

        Top-level dict values merge key-wise (later children win on
        key conflicts); non-dict values from later children replace
        earlier ones.
        """
        merged: Dict[str, Any] = {}
        for child in self._active:
            snapshot = child.observability_snapshot()
            if not snapshot:
                continue
            for key, value in snapshot.items():
                if isinstance(value, dict) \
                        and isinstance(merged.get(key), dict):
                    merged[key] = {**merged[key], **value}
                else:
                    merged[key] = value
        return merged or None

    def close(self) -> None:
        for child in self.children:
            child.close()
