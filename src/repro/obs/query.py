"""Trace query engine: filter, project, aggregate, and join.

A small relational layer over trace event streams (lists of plain
dicts, as produced by every :class:`~repro.obs.recorder.TraceRecorder`
and by :func:`~repro.obs.collect.merge_segments`). Everything here is
deterministic: output ordering is a pure function of the input events,
quantiles use linear interpolation over the sorted values, and group
rows sort by their group key — so query results feed byte-identical
dashboard renders and stable CLI output.

The same engine backs three consumers: library callers, the
``trace_inspect query`` subcommand, and the dashboard's per-shard
panels. Invalid query specifications raise
:class:`~repro.errors.ConfigurationError` (the CLI maps that to its
usage-error exit code).
"""

from __future__ import annotations

import re
from collections import OrderedDict, deque
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.obs.recorder import TraceEvent

__all__ = [
    "filter_events",
    "group_aggregate",
    "parse_agg",
    "project",
    "quantile",
    "shard_of_server",
    "span_join",
]

_SERVER_INDEX = re.compile(r"(\d+)$")


def shard_of_server(server: Any, n_shards: int) -> Optional[int]:
    """The round-robin shard that owns a server id.

    Server ids are ``"s{index}"`` (:mod:`repro.cluster.simulator`) and
    :class:`~repro.cluster.sharded.ShardedSimulator` assigns servers to
    shards round-robin, so ``"s12"`` with 5 shards lives on shard 2.
    Returns ``None`` for values that carry no server index (``None``,
    names without digits) — such events belong to no serve shard.
    """
    if n_shards < 1:
        raise ConfigurationError(
            f"n_shards must be positive, got {n_shards}"
        )
    if server is None:
        return None
    if isinstance(server, bool):
        return None
    if isinstance(server, int):
        return server % n_shards
    match = _SERVER_INDEX.search(str(server))
    if match is None:
        return None
    return int(match.group(1)) % n_shards


def filter_events(
    events: Iterable[TraceEvent],
    kinds: Optional[Iterable[str]] = None,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    server: Optional[str] = None,
    shard: Optional[int] = None,
    n_shards: Optional[int] = None,
    where: Optional[Mapping[str, Any]] = None,
) -> List[TraceEvent]:
    """Select events by kind, time window, server, shard, and fields.

    The time window is half-open: ``t_min <= t < t_max``; events
    without a ``t`` are excluded whenever a time bound is given. The
    ``shard`` filter keeps events whose ``server`` field maps to that
    shard under :func:`shard_of_server` (it requires ``n_shards``);
    events without a server belong to no shard and are excluded.
    ``where`` is field-equality over the event payload. Input order is
    preserved.
    """
    if (shard is None) != (n_shards is None):
        raise ConfigurationError(
            "shard and n_shards must be given together"
        )
    if shard is not None and n_shards is not None:
        if not 0 <= shard < n_shards:
            raise ConfigurationError(
                f"shard must be within [0, {n_shards}), got {shard}"
            )
    kind_set = None
    if kinds is not None:
        kind_set = frozenset(str(kind) for kind in kinds)
        if not kind_set:
            raise ConfigurationError("kinds filter cannot be empty")

    selected: List[TraceEvent] = []
    for event in events:
        if kind_set is not None and event.get("kind") not in kind_set:
            continue
        if t_min is not None or t_max is not None:
            t = event.get("t")
            if not isinstance(t, (int, float)) or isinstance(t, bool):
                continue
            if t_min is not None and t < t_min:
                continue
            if t_max is not None and t >= t_max:
                continue
        if server is not None and event.get("server") != server:
            continue
        if shard is not None and n_shards is not None:
            if shard_of_server(event.get("server"), n_shards) != shard:
                continue
        if where is not None and any(
            event.get(field) != value for field, value in where.items()
        ):
            continue
        selected.append(event)
    return selected


def project(
    events: Iterable[TraceEvent], fields: Sequence[str]
) -> List[Dict[str, Any]]:
    """Keep only the named fields of each event (missing stay absent)."""
    if not fields:
        raise ConfigurationError("projection fields cannot be empty")
    names = [str(field) for field in fields]
    return [
        {name: event[name] for name in names if name in event}
        for event in events
    ]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of the values (q in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    if not values:
        raise ConfigurationError("quantile of no values")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


_QUANTILE_SPEC = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


def parse_agg(spec: str) -> Tuple[str, Optional[str], Optional[float]]:
    """Parse an aggregation spec string.

    ``"count"`` needs no field; ``"sum:f"``/``"mean:f"``/``"min:f"``/
    ``"max:f"`` aggregate numeric field ``f``; ``"pNN:f"`` (e.g.
    ``p95:latency_s``) is the NN-th percentile. Returns
    ``(op, field, q)``; invalid specs raise
    :class:`~repro.errors.ConfigurationError`.
    """
    spec = str(spec).strip()
    if spec == "count":
        return ("count", None, None)
    op, sep, field = spec.partition(":")
    if not sep or not field:
        raise ConfigurationError(
            f"aggregation {spec!r} needs a field (e.g. 'mean:latency_s')"
        )
    if op in ("sum", "mean", "min", "max"):
        return (op, field, None)
    match = _QUANTILE_SPEC.match(op)
    if match is not None:
        return ("quantile", field, float(match.group(1)) / 100.0)
    raise ConfigurationError(
        f"unknown aggregation {op!r}; expected count, sum, mean, min, "
        f"max, or pNN"
    )


def _numeric_values(
    group: Sequence[TraceEvent], field: str
) -> List[float]:
    values = []
    for event in group:
        value = event.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return values


def _apply_agg(
    group: Sequence[TraceEvent],
    op: str,
    field: Optional[str],
    q: Optional[float],
) -> Optional[float]:
    if op == "count":
        return len(group)
    assert field is not None
    values = _numeric_values(group, field)
    if not values:
        return None
    if op == "sum":
        return sum(values)
    if op == "mean":
        return sum(values) / len(values)
    if op == "min":
        return min(values)
    if op == "max":
        return max(values)
    assert op == "quantile" and q is not None
    return quantile(values, q)


def group_aggregate(
    events: Iterable[TraceEvent],
    by: Union[str, Sequence[str]],
    aggs: Sequence[str] = ("count",),
) -> List[Dict[str, Any]]:
    """Group events by field values and aggregate each group.

    Args:
        events: The event stream.
        by: A field name or sequence of field names; events missing a
            field group under ``None``.
        aggs: Aggregation spec strings (see :func:`parse_agg`); each
            spec becomes a column named by the spec itself.

    Returns:
        One row per group — the group-by fields plus one column per
        spec — deterministically sorted by group key (``None`` last).
        Non-count aggregations over a group with no numeric values of
        the field yield ``None``.
    """
    by_fields = [by] if isinstance(by, str) else [str(f) for f in by]
    if not by_fields:
        raise ConfigurationError("group-by fields cannot be empty")
    if not aggs:
        raise ConfigurationError("aggregations cannot be empty")
    parsed = [(str(spec), parse_agg(spec)) for spec in aggs]

    groups: "OrderedDict[Tuple[Any, ...], List[TraceEvent]]" = \
        OrderedDict()
    for event in events:
        key = tuple(event.get(field) for field in by_fields)
        groups.setdefault(key, []).append(event)

    def sort_key(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple((value is None, str(value)) for value in key)

    rows: List[Dict[str, Any]] = []
    for key in sorted(groups, key=sort_key):
        row: Dict[str, Any] = dict(zip(by_fields, key))
        for spec, (op, field, q) in parsed:
            row[spec] = _apply_agg(groups[key], op, field, q)
        rows.append(row)
    return rows


def span_join(
    events: Iterable[TraceEvent],
    open_kind: str,
    close_kind: str,
    key: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Pair open/close events sharing key fields into span rows.

    Each close event closes the earliest still-open event with the
    same key-field values (FIFO, matching how the simulator's own
    paired events nest). Rows appear in open order and carry the key
    fields, ``t_start``/``t_end``/``duration_s`` (``None`` while
    unclosed), and the full ``open``/``close`` events for drill-down.
    """
    open_kind = str(open_kind)
    close_kind = str(close_kind)
    if open_kind == close_kind:
        raise ConfigurationError(
            "span open and close kinds must differ"
        )
    key_fields = [str(field) for field in key]
    rows: List[Dict[str, Any]] = []
    pending: Dict[Tuple[Any, ...], "deque[Dict[str, Any]]"] = {}
    for event in events:
        kind = event.get("kind")
        if kind == open_kind:
            row: Dict[str, Any] = {
                field: event.get(field) for field in key_fields
            }
            row.update(
                t_start=event.get("t"), t_end=None, duration_s=None,
                open=event, close=None,
            )
            rows.append(row)
            group_key = tuple(event.get(f) for f in key_fields)
            pending.setdefault(group_key, deque()).append(row)
        elif kind == close_kind:
            group_key = tuple(event.get(f) for f in key_fields)
            queue = pending.get(group_key)
            if not queue:
                continue
            row = queue.popleft()
            row["t_end"] = event.get("t")
            row["close"] = event
            if isinstance(row["t_start"], (int, float)) \
                    and isinstance(row["t_end"], (int, float)):
                row["duration_s"] = \
                    float(row["t_end"]) - float(row["t_start"])
    return rows
