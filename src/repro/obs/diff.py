"""Root-causing divergent runs: find the *first* differing event.

The repo leans hard on bit-identical guarantees — recorded vs
unrecorded, parallel vs serial, cached vs fresh, all-zeros fault plan
vs none. When two runs that should match do not, the useful question is
never "do they differ" (a digest answers that) but *where first*: two
simulations share every event up to the first divergence, after which
everything downstream is noise. This module localizes that point:

* :func:`diff_traces` walks two recorded event streams in lockstep and
  returns the first :class:`Divergence` — event index, simulation time,
  event kind, the specific field, and both values (or an end-of-trace
  marker when one stream is a prefix of the other);
* :func:`diff_results` does the same over two
  :class:`~repro.cluster.metrics.SimulationResult`\\ s via their codec
  dict forms, reporting a dotted path (``power_series.values[17]``)
  into the first differing leaf;
* :func:`format_divergence` renders either for humans (the engine of
  ``examples/trace_inspect.py diff``).

Traces are compared in recorded order (the simulator's event order is
deterministic), so the first reported divergence really is the first
causally divergent decision of the two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.obs.recorder import TraceEvent

__all__ = [
    "Divergence",
    "diff_dicts",
    "diff_results",
    "diff_traces",
    "format_divergence",
]


@dataclass(frozen=True)
class Divergence:
    """The first point where two streams disagree.

    Attributes:
        index: 0-based event index (for traces) or -1 (result diffs).
        t: Simulation time of the divergent event, when it carries one.
        kind: Event kind at the divergence, when applicable.
        field: The differing field — an event payload key, a dotted
            result path, or one of the markers ``"<kind>"`` (the events
            are of different kinds), ``"<end-of-trace>"`` (one stream
            ended early), ``"<missing>"`` (a key present on one side
            only).
        a: Value on the first stream (``None`` when absent).
        b: Value on the second stream (``None`` when absent).
    """

    index: int
    field: str
    a: Any
    b: Any
    t: Optional[float] = None
    kind: Optional[str] = None


def _event_time(event: TraceEvent) -> Optional[float]:
    t = event.get("t")
    return None if t is None else float(t)


def diff_traces(
    a: Sequence[TraceEvent], b: Sequence[TraceEvent]
) -> Optional[Divergence]:
    """First divergent event between two traces (``None`` if identical).

    Compares in recorded order. For the first differing event pair the
    divergence names the first differing field in sorted key order
    (kind mismatches win over payload mismatches); if one trace is a
    strict prefix of the other, the divergence is an
    ``"<end-of-trace>"`` marker carrying the surviving event's kind and
    time.
    """
    for index, (ea, eb) in enumerate(zip(a, b)):
        if ea == eb:
            continue
        kind_a, kind_b = ea.get("kind"), eb.get("kind")
        if kind_a != kind_b:
            return Divergence(
                index=index, field="<kind>", a=kind_a, b=kind_b,
                t=_event_time(ea), kind=kind_a,
            )
        for key in sorted(set(ea) | set(eb)):
            if key in ea and key in eb:
                if ea[key] != eb[key]:
                    return Divergence(
                        index=index, field=key, a=ea[key], b=eb[key],
                        t=_event_time(ea), kind=kind_a,
                    )
            else:
                return Divergence(
                    index=index, field="<missing>",
                    a=ea.get(key, f"<no {key!r}>"),
                    b=eb.get(key, f"<no {key!r}>"),
                    t=_event_time(ea), kind=kind_a,
                )
    if len(a) != len(b):
        index = min(len(a), len(b))
        survivor = a[index] if len(a) > len(b) else b[index]
        return Divergence(
            index=index, field="<end-of-trace>",
            a=len(a), b=len(b),
            t=_event_time(survivor), kind=survivor.get("kind"),
        )
    return None


def _walk(path: str, a: Any, b: Any) -> Optional[Tuple[str, Any, Any]]:
    """Depth-first search for the first differing leaf."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return (
                    f"{path}.{key}" if path else str(key),
                    a.get(key, "<absent>"),
                    b.get(key, "<absent>"),
                )
            found = _walk(
                f"{path}.{key}" if path else str(key), a[key], b[key]
            )
            if found is not None:
                return found
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        for i, (va, vb) in enumerate(zip(a, b)):
            found = _walk(f"{path}[{i}]", va, vb)
            if found is not None:
                return found
        if len(a) != len(b):
            return (f"{path}.length", len(a), len(b))
        return None
    if a != b:
        return (path, a, b)
    return None


def diff_dicts(a: Any, b: Any) -> Optional[Divergence]:
    """First divergent leaf between two JSON-like structures.

    The generic core of :func:`diff_results`, exposed for callers that
    already hold plain dict/list data — benchmark reports, ledger
    entries, observability snapshots. The divergence's ``field`` is a
    dotted path (``serial.wall_s``, ``grid.combos[2]``) into the first
    differing leaf in sorted-key, depth-first order.
    """
    found = _walk("", a, b)
    if found is None:
        return None
    path, value_a, value_b = found
    return Divergence(index=-1, field=path, a=value_a, b=value_b)


def diff_results(result_a: Any, result_b: Any) -> Optional[Divergence]:
    """First divergent field between two simulation results.

    Results are compared through their codec dict form
    (:func:`repro.exec.codec.result_to_dict`), so every reported
    quantity — power series samples, latency lists, robustness
    counters, observability snapshots — is covered, and the divergence
    path is a stable dotted address into that form.
    """
    # Imported here: codec imports cluster.metrics, which this module
    # must not require at import time (repro.obs has no exec dependency).
    from repro.exec.codec import result_to_dict

    found = _walk("", result_to_dict(result_a), result_to_dict(result_b))
    if found is None:
        return None
    path, a, b = found
    return Divergence(index=-1, field=path, a=a, b=b)


def format_divergence(
    divergence: Optional[Divergence],
    label_a: str = "A",
    label_b: str = "B",
) -> List[str]:
    """Human-readable lines for a divergence (or its absence)."""
    if divergence is None:
        return ["streams are identical"]
    lines: List[str] = []
    if divergence.field == "<end-of-trace>":
        shorter = label_a if divergence.a < divergence.b else label_b
        lines.append(
            f"{shorter} ends early: {label_a} has {divergence.a} events, "
            f"{label_b} has {divergence.b}"
        )
        if divergence.kind is not None:
            where = f" (t={divergence.t:.3f}s)" if divergence.t is not None \
                else ""
            lines.append(
                f"first unmatched event: [{divergence.index}] "
                f"{divergence.kind}{where}"
            )
        return lines
    where = f" t={divergence.t:.3f}s" if divergence.t is not None else ""
    kind = f" kind={divergence.kind}" if divergence.kind is not None else ""
    if divergence.index >= 0:
        lines.append(
            f"first divergence at event [{divergence.index}]{where}{kind}"
        )
    else:
        lines.append("results diverge")
    lines.append(f"  field: {divergence.field}")
    lines.append(f"  {label_a}: {divergence.a!r}")
    lines.append(f"  {label_b}: {divergence.b!r}")
    return lines
