"""The comparison policies from Section 6.6.

POLCA is compared against three baselines, each still carrying the power
brake as the power-failure safety net:

* **1-Thresh-Low-Pri** — a single threshold at 89% that caps only
  low-priority servers, directly to the deep 1110 MHz cap ("does not
  gradually reduce their frequency", so it misses low-priority SLOs);
* **1-Thresh-All** — a single threshold at 89% capping *all* servers
  aggressively, breaching both tiers' p99 SLOs;
* **No-cap** — no frequency capping at all; comparable to POLCA under
  standard conditions but unprotected against workload power growth, so
  it degrades to power brakes (hurting p99/p100) when models change.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.errors import ConfigurationError


class SingleThresholdLowPriPolicy(PowerPolicy):
    """One threshold, low-priority servers capped directly to the deep cap."""

    def __init__(
        self,
        threshold: float = 0.89,
        uncap_margin: float = 0.05,
        lp_clock_mhz: float = 1110.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold
        self.uncap_margin = uncap_margin
        self.lp_clock_mhz = lp_clock_mhz
        self.name = "1-Thresh-Low-Pri"
        self._capped = False

    def reset(self) -> None:
        """Return to the uncapped state."""
        self._capped = False

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Cap low priority straight to the deep clock above the threshold."""
        if utilization >= self.threshold:
            self._capped = True
        elif utilization < self.threshold - self.uncap_margin:
            self._capped = False
        if self._capped:
            return GroupCaps(low_clock_mhz=self.lp_clock_mhz)
        return GroupCaps.uncapped()


class SingleThresholdAllPolicy(PowerPolicy):
    """One threshold, every server capped aggressively."""

    def __init__(
        self,
        threshold: float = 0.89,
        uncap_margin: float = 0.05,
        clock_mhz: float = 1110.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(f"threshold {threshold} outside (0, 1]")
        self.threshold = threshold
        self.uncap_margin = uncap_margin
        self.clock_mhz = clock_mhz
        self.name = "1-Thresh-All"
        self._capped = False

    def reset(self) -> None:
        """Return to the uncapped state."""
        self._capped = False

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Cap both priority groups aggressively above the threshold."""
        if utilization >= self.threshold:
            self._capped = True
        elif utilization < self.threshold - self.uncap_margin:
            self._capped = False
        if self._capped:
            return GroupCaps(
                low_clock_mhz=self.clock_mhz, high_clock_mhz=self.clock_mhz
            )
        return GroupCaps.uncapped()


class NoCapPolicy(PowerPolicy):
    """No frequency capping; only the brake stands between the row and the
    breaker."""

    def __init__(self) -> None:
        self.name = "No-cap"

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Never cap anything."""
        return GroupCaps.uncapped()


class UnmanagedPolicy(PowerPolicy):
    """No power management at all: no caps *and* no power brake.

    The pre-POLCA row Section 3 argues against. Where ``NoCapPolicy``
    still carries the brake safety net, this baseline models the
    unprotected deployment whose sustained oversubscription overload
    reaches the breaker itself — the tripping baseline of the
    ``repro.powerfail`` study (an oversubscribed row under this policy
    heats the row breaker's thermal accumulator until it trips, while
    POLCA at the Figure 13 thresholds never overloads it).
    """

    #: The brake never engages at any finite utilization.
    brake_threshold: float = float("inf")

    def __init__(self) -> None:
        self.name = "Unmanaged"

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Never cap anything."""
        return GroupCaps.uncapped()


def all_policies() -> Dict[str, Callable[[], PowerPolicy]]:
    """Factories for the four policies of Figures 17-18, by name.

    ``UnmanagedPolicy`` is deliberately absent: it exists for the
    power-safety study (:mod:`repro.powerfail`), not for the figure
    sweeps that iterate this registry. The sweep engine still builds it
    via ``PolicySpec("Unmanaged")``.
    """
    from repro.core.policy import DualThresholdPolicy

    return {
        "POLCA": DualThresholdPolicy,
        "1-Thresh-Low-Pri": SingleThresholdLowPriPolicy,
        "1-Thresh-All": SingleThresholdAllPolicy,
        "No-cap": NoCapPolicy,
    }
