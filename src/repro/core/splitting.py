"""Prompt/token phase splitting across GPU pools (Section 5.2).

"It would be interesting to separate prompt computation and token
processing on different GPUs, which enables us to only power cap GPUs
that run the token phases. Such separation would require transferring
intermediate state between the prompt and token GPUs, which is promising
given the high-bandwidth Infiniband interconnects in LLM clusters."

(The same authors later built exactly this as *Splitwise*.) This module
models a split deployment analytically:

* a **prompt pool** sized to the offered prompt-compute load, running at
  the full clock (prompt latency is user-visible time-to-first-token);
* a **token pool** sized to the decode load, frequency-locked — safe,
  because token throughput is bandwidth-bound (Insight 7);
* a per-request **KV-cache transfer** between the pools over the
  cluster interconnect.

The payoff is provisioning: the token pool can be provisioned at its
*capped* peak rather than the prompt spike, so a split cluster packs more
serving capacity under the same breaker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.datatypes import FP16
from repro.models.performance import RooflineLatencyModel
from repro.models.power_profile import PhasePowerProfile
from repro.models.registry import LlmSpec, get_model
from repro.server.dgx import HostPowerModel
from repro.units import gigabytes_per_second

#: Effective per-server interconnect bandwidth for KV transfers
#: (InfiniBand HDR-class fabric, as in the paper's clusters).
DEFAULT_INTERCONNECT_BW = gigabytes_per_second(25)


@dataclass(frozen=True)
class SplitDeployment:
    """Sizing and power of a phase-split serving deployment.

    Attributes:
        model_name: The model served.
        request_rate: Offered load in requests/second.
        prompt_servers: Servers in the (uncapped) prompt pool.
        token_servers: Servers in the (frequency-locked) token pool.
        token_clock_mhz: Clock the token pool is locked to.
        provisioned_power_w: Power to provision for the split deployment
            (prompt pool at spike power, token pool at locked peak).
        transfer_seconds: Added per-request KV-transfer latency.
        latency_increase: End-to-end latency change vs an unsplit server
            (transfer overhead plus the token pool's residual slowdown).
    """

    model_name: str
    request_rate: float
    prompt_servers: int
    token_servers: int
    token_clock_mhz: float
    provisioned_power_w: float
    transfer_seconds: float
    latency_increase: float

    @property
    def total_servers(self) -> int:
        """Servers across both pools."""
        return self.prompt_servers + self.token_servers


def _server_power(gpu: GpuSpec, activity: float, clock_mhz: float,
                  n_gpus: int = 8) -> float:
    power_model = GpuPowerModel(gpu)
    host = HostPowerModel()
    per_gpu = power_model.power(activity, clock_mhz)
    dynamic = (per_gpu - gpu.idle_w) / (gpu.transient_peak_w - gpu.idle_w)
    return n_gpus * per_gpu + host.power(min(1.0, max(0.0, dynamic)))


def plan_split_deployment(
    model_name: str = "BLOOM-176B",
    request_rate: float = 2.0,
    input_tokens: int = 2048,
    output_tokens: int = 256,
    token_clock_mhz: float = 1110.0,
    concurrency: int = 4,
    interconnect_bw: float = DEFAULT_INTERCONNECT_BW,
    gpu: GpuSpec = A100_80GB,
) -> SplitDeployment:
    """Size a phase-split deployment for an offered request rate.

    Pool sizes come from per-phase service demands (Little's law with a
    20% utilization margin); the KV transfer ships the prompt's cache
    (``kv_bytes_per_token x input_tokens``) between pools.

    Raises:
        ConfigurationError: On a non-positive request rate.
    """
    if request_rate <= 0:
        raise ConfigurationError("request_rate must be positive")
    spec: LlmSpec = get_model(model_name)
    gpu.validate_clock(token_clock_mhz)
    latency = RooflineLatencyModel(model=spec, gpu=gpu)
    profile = PhasePowerProfile(model=spec)
    ratio = token_clock_mhz / gpu.max_sm_clock_mhz

    phases = latency.request_latency(input_tokens, output_tokens)
    token_locked = latency.request_latency(
        input_tokens, output_tokens, clock_ratio=ratio
    ).token_seconds

    # Service demand per request on each pool, in server-seconds.
    margin = 1.25
    prompt_demand = phases.prompt_seconds
    token_demand = token_locked / concurrency
    prompt_servers = max(1, math.ceil(request_rate * prompt_demand * margin))
    token_servers = max(1, math.ceil(request_rate * token_demand * margin))

    # Power to provision: prompt pool at the spike, token pool at the
    # locked token peak — the whole point of the split.
    prompt_peak = _server_power(
        gpu, profile.prompt_activity(input_tokens), gpu.max_sm_clock_mhz
    )
    token_peak = _server_power(
        gpu, profile.token_activity(concurrency), token_clock_mhz
    )
    provisioned = prompt_servers * prompt_peak + token_servers * token_peak

    kv_bytes = spec.architecture.kv_cache_bytes(FP16, input_tokens, 1)
    transfer = kv_bytes / interconnect_bw
    base_total = phases.total_seconds
    split_total = phases.prompt_seconds + transfer + token_locked
    return SplitDeployment(
        model_name=model_name,
        request_rate=request_rate,
        prompt_servers=prompt_servers,
        token_servers=token_servers,
        token_clock_mhz=token_clock_mhz,
        provisioned_power_w=provisioned,
        transfer_seconds=transfer,
        latency_increase=split_total / base_total - 1.0,
    )


def plan_unsplit_deployment(
    model_name: str = "BLOOM-176B",
    request_rate: float = 2.0,
    input_tokens: int = 2048,
    output_tokens: int = 256,
    concurrency: int = 4,
    gpu: GpuSpec = A100_80GB,
) -> SplitDeployment:
    """The conventional deployment, sized for the same offered load.

    Every server must be provisioned for the prompt spike because any
    server may be processing a prompt at any time.
    """
    if request_rate <= 0:
        raise ConfigurationError("request_rate must be positive")
    spec = get_model(model_name)
    latency = RooflineLatencyModel(model=spec, gpu=gpu)
    profile = PhasePowerProfile(model=spec)
    phases = latency.request_latency(input_tokens, output_tokens)
    margin = 1.25
    demand = phases.prompt_seconds + phases.token_seconds / concurrency
    servers = max(1, math.ceil(request_rate * demand * margin))
    spike_power = _server_power(
        gpu, profile.prompt_activity(input_tokens), gpu.max_sm_clock_mhz
    )
    return SplitDeployment(
        model_name=model_name,
        request_rate=request_rate,
        prompt_servers=servers,
        token_servers=0,
        token_clock_mhz=gpu.max_sm_clock_mhz,
        provisioned_power_w=servers * spike_power,
        transfer_seconds=0.0,
        latency_increase=0.0,
    )


def split_power_saving(
    model_name: str = "BLOOM-176B",
    request_rate: float = 2.0,
    **kwargs,
) -> float:
    """Fractional provisioned-power saving of splitting vs not.

    The headline of the Section 5.2 proposal: the token pool's capped
    provisioning more than pays for the extra transfer latency.
    """
    split = plan_split_deployment(model_name, request_rate, **kwargs)
    unsplit = plan_unsplit_deployment(
        model_name, request_rate,
        input_tokens=kwargs.get("input_tokens", 2048),
        output_tokens=kwargs.get("output_tokens", 256),
        concurrency=kwargs.get("concurrency", 4),
    )
    return 1.0 - split.provisioned_power_w / unsplit.provisioned_power_w
