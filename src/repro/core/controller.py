"""A standalone POLCA controller over telemetry and actuation (Figure 12).

Figure 12 shows POLCA's control flow: the PDU feeds row-level telemetry
to the rack-level power manager, which applies the Table 5 thresholds and
pushes per-GPU caps through the BMC/SMBPBI. The discrete-event simulator
embeds this loop for evaluation; :class:`PolcaController` is the same
loop factored as a reusable component over the :mod:`repro.telemetry` and
:mod:`repro.control` substrates, for driving *any* power signal (e.g. a
recorded trace, a live testbed adapter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List

from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.control.actions import ControlAction
from repro.control.actuator import Actuator, AppliedAction, OobActuator
from repro.errors import ConfigurationError
from repro.telemetry.row_manager import RowManager


@dataclass
class PolcaController:
    """Threshold control loop: telemetry in, capping commands out.

    Attributes:
        policy: The capping policy (POLCA or a baseline).
        provisioned_power_w: The row budget utilization is measured
            against.
        low_priority_servers / high_priority_servers: Target sets for the
            per-group commands.
        actuator: Command pipeline; defaults to the OOB actuator with the
            paper's latencies.
        row_manager: Telemetry source configuration (2 s period).
    """

    policy: PowerPolicy
    provisioned_power_w: float
    low_priority_servers: FrozenSet[str]
    high_priority_servers: FrozenSet[str]
    actuator: Actuator = field(default_factory=OobActuator)
    row_manager: RowManager = field(default_factory=RowManager)
    #: Guardrail against silently dropped OOB commands (Section 3.3: they
    #: "may sometimes fail without signaling completion or errors"): while
    #: any cap is commanded, the controller re-issues the full desired
    #: state at this period. Re-issuing a cap that already landed is
    #: idempotent; re-issuing one that was dropped repairs it. Set to 0 to
    #: disable.
    refresh_interval_s: float = 120.0
    _commanded: GroupCaps = field(init=False, default_factory=GroupCaps.uncapped)
    _braked: bool = field(init=False, default=False)
    _last_issue_time: float = field(init=False, default=-float("inf"))
    brake_events: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.provisioned_power_w <= 0:
            raise ConfigurationError("provisioned power must be positive")
        if not self.low_priority_servers or not self.high_priority_servers:
            raise ConfigurationError("both priority groups need servers")
        if self.refresh_interval_s < 0:
            raise ConfigurationError("refresh interval cannot be negative")
        self.policy.reset()

    def step(self, now: float, row_power_w: float) -> List[AppliedAction]:
        """Process one telemetry reading; returns the commands issued."""
        utilization = row_power_w / self.provisioned_power_w
        issued: List[AppliedAction] = []

        if not self._braked and self.policy.wants_brake(utilization):
            self._braked = True
            self.brake_events += 1
            issued.append(self.actuator.issue(now, ControlAction.power_brake(
                self.low_priority_servers | self.high_priority_servers,
                reason=f"utilization {utilization:.2f} at breaker",
            )))
        elif self._braked and self.policy.brake_release_ok(utilization):
            self._braked = False
            issued.append(self.actuator.issue(now, ControlAction.brake_release(
                self.low_priority_servers | self.high_priority_servers,
                reason="power receded",
            )))

        desired = self.policy.desired_caps(utilization, now)
        refresh = (
            self.refresh_interval_s > 0
            and desired != GroupCaps.uncapped()
            and now - self._last_issue_time >= self.refresh_interval_s
        )
        issued.extend(self._reconcile(now, desired, force=refresh))
        if issued:
            self._last_issue_time = now
        self._commanded = desired
        return issued

    def _reconcile(self, now: float, desired: GroupCaps, force: bool = False
                   ) -> List[AppliedAction]:
        """Issue the commands that change the commanded state (all of the
        desired state when ``force`` refreshes against silent drops)."""
        issued: List[AppliedAction] = []
        for group, targets, new, old in (
            ("low", self.low_priority_servers,
             desired.low_clock_mhz, self._commanded.low_clock_mhz),
            ("high", self.high_priority_servers,
             desired.high_clock_mhz, self._commanded.high_clock_mhz),
        ):
            if new == old and not (force and new is not None):
                continue
            if new is None:
                action = ControlAction.frequency_unlock(
                    targets, reason=f"{group}-priority uncap"
                )
            else:
                action = ControlAction.frequency_lock(
                    targets, new, reason=f"{group}-priority cap"
                )
            issued.append(self.actuator.issue(now, action))
        return issued

    def run_over_signal(
        self,
        power_signal: Callable[[float], float],
        start: float,
        end: float,
    ) -> List[AppliedAction]:
        """Drive the loop over a continuous power signal.

        Samples the signal at the row manager's 2-second period — the
        offline-replay mode for recorded traces.

        Raises:
            ConfigurationError: If the window is empty.
        """
        if end <= start:
            raise ConfigurationError("end must be after start")
        issued: List[AppliedAction] = []
        t = start
        while t < end:
            sample = self.row_manager.read(t, power_signal)
            issued.extend(self.step(sample.time, sample.value))
            t += self.row_manager.interval
        return issued

    @property
    def commanded_caps(self) -> GroupCaps:
        """The caps most recently commanded (possibly still in flight)."""
        return self._commanded

    @property
    def brake_engaged(self) -> bool:
        """Whether the controller currently holds the brake."""
        return self._braked
