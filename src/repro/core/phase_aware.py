"""Phase-aware power management (the paper's Section 5.2 proposal).

"Adapting GPU capping based on the inference phase could yield additional
benefits. For example, using lower frequencies during the token phase
could help reduce power consumption without substantially impacting
performance."

This module analyzes that proposal: an application owner with in-band
control (Section 3.3 notes VM customers retain IB access, which lands in
milliseconds — fast enough to switch per phase) locks the clock down for
token sampling and restores it for prompt processing. We compute the
resulting energy, average power, and latency changes per model and
configuration, which the ablation benchmark turns into a table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.inference import InferenceRequest, request_timeline
from repro.models.registry import LlmSpec, get_model


@dataclass(frozen=True)
class PhaseAwareOutcome:
    """Effect of clocking the token phase down to ``token_clock_mhz``.

    Attributes:
        model_name: The model analyzed.
        token_clock_mhz: SM clock used during token sampling (prompt
            processing stays at the maximum clock).
        energy_saving: Fractional reduction of per-request GPU energy.
        mean_power_saving: Fractional reduction of mean power during the
            request.
        latency_increase: Fractional end-to-end latency increase.
        peak_power_unchanged: Always true — the prompt spike still runs
            at the full clock, so provisioned peak power does not move.
    """

    model_name: str
    token_clock_mhz: float
    energy_saving: float
    mean_power_saving: float
    latency_increase: float

    @property
    def peak_power_unchanged(self) -> bool:
        """Phase-aware capping leaves the prompt-phase peak untouched."""
        return True

    @property
    def efficiency_gain(self) -> float:
        """Energy saved per unit of latency given up (the knob's value)."""
        if self.latency_increase <= 0:
            return float("inf")
        return self.energy_saving / self.latency_increase


def phase_aware_outcome(
    model_name: str,
    token_clock_mhz: float,
    input_tokens: int = 2048,
    output_tokens: int = 256,
    batch_size: int = 1,
    gpu: GpuSpec = A100_80GB,
) -> PhaseAwareOutcome:
    """Analyze token-phase-only frequency locking for one configuration.

    Raises:
        FrequencyError: If the clock is outside the lockable range.
    """
    gpu.validate_clock(token_clock_mhz)
    spec: LlmSpec = get_model(model_name)
    request = InferenceRequest(model_name, input_tokens, output_tokens,
                               batch_size)
    timeline = request_timeline(spec, gpu, request)
    power_model = GpuPowerModel(gpu)
    ratio = token_clock_mhz / gpu.max_sm_clock_mhz

    base_energy = base_time = aware_energy = aware_time = 0.0
    for segment in timeline.segments:
        full_duration = segment.duration_at(1.0)
        full_power = power_model.power(segment.activity,
                                       gpu.max_sm_clock_mhz)
        base_energy += full_duration * full_power
        base_time += full_duration
        if segment.phase == "token":
            slow_duration = segment.duration_at(ratio)
            slow_power = power_model.power(segment.activity, token_clock_mhz)
            aware_energy += slow_duration * slow_power
            aware_time += slow_duration
        else:
            aware_energy += full_duration * full_power
            aware_time += full_duration
    base_mean = base_energy / base_time
    aware_mean = aware_energy / aware_time
    return PhaseAwareOutcome(
        model_name=model_name,
        token_clock_mhz=token_clock_mhz,
        energy_saving=1.0 - aware_energy / base_energy,
        mean_power_saving=1.0 - aware_mean / base_mean,
        latency_increase=aware_time / base_time - 1.0,
    )


def compare_with_full_lock(
    model_name: str,
    clock_mhz: float,
    input_tokens: int = 2048,
    output_tokens: int = 256,
) -> dict:
    """Contrast phase-aware vs whole-request frequency locking.

    Whole-request locking (what POLCA's OOB path can do) also slows the
    prompt phase; phase-aware locking preserves prompt speed and the
    time-to-first-token, at the cost of leaving the peak power untouched.

    Raises:
        ConfigurationError: On an invalid configuration.
    """
    if clock_mhz <= 0:
        raise ConfigurationError("clock must be positive")
    gpu = A100_80GB
    spec = get_model(model_name)
    request = InferenceRequest(model_name, input_tokens, output_tokens)
    timeline = request_timeline(spec, gpu, request)
    power_model = GpuPowerModel(gpu)
    ratio = clock_mhz / gpu.max_sm_clock_mhz
    aware = phase_aware_outcome(model_name, clock_mhz, input_tokens,
                                output_tokens)
    full_time = timeline.total_seconds(ratio)
    base_time = timeline.total_seconds(1.0)
    peak_activity = timeline.peak_activity()
    return {
        "phase_aware_latency_increase": aware.latency_increase,
        "full_lock_latency_increase": full_time / base_time - 1.0,
        "phase_aware_peak_reduction": 0.0,
        "full_lock_peak_reduction": power_model.peak_power_reduction(
            peak_activity, clock_mhz
        ),
        "phase_aware_energy_saving": aware.energy_saving,
    }
