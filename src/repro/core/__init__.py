"""POLCA: power oversubscription for LLM inference clusters (Section 6).

The paper's primary artifact: a dual-threshold, priority-aware frequency
capping policy operating on 2-second row telemetry with a power-brake
safety net, able to host ~30% more servers in an existing inference row
with zero brakes and SLO-compliant latency.

This package provides the POLCA policy (Table 5), the comparison baselines
(Section 6.6), threshold selection from historical traces, SLO evaluation
(Table 6), and the sweep drivers behind Figures 13-18.
"""

from repro.core.policy import POLCA_DEFAULTS, DualThresholdPolicy, PolcaThresholds
from repro.core.baselines import (
    NoCapPolicy,
    SingleThresholdAllPolicy,
    SingleThresholdLowPriPolicy,
    UnmanagedPolicy,
    all_policies,
)
from repro.core.thresholds import ThresholdRecommendation, select_thresholds
from repro.core.controller import PolcaController
from repro.core.splitting import (
    SplitDeployment,
    plan_split_deployment,
    plan_unsplit_deployment,
    split_power_saving,
)
from repro.core.workload_aware import (
    WorkloadCapPlan,
    deepest_safe_cap,
    uniform_vs_aware_reclaim,
    workload_aware_plan,
)
from repro.core.phase_aware import (
    PhaseAwareOutcome,
    compare_with_full_lock,
    phase_aware_outcome,
)
from repro.core.slo import SloReport, evaluate_slos
from repro.core.sweeps import (
    EvaluationHarness,
    PolicyComparison,
    SweepPoint,
    added_servers_sweep,
    compare_policies,
    threshold_search,
)

__all__ = [
    "DualThresholdPolicy",
    "EvaluationHarness",
    "NoCapPolicy",
    "POLCA_DEFAULTS",
    "PhaseAwareOutcome",
    "PolcaController",
    "PolcaThresholds",
    "PolicyComparison",
    "SingleThresholdAllPolicy",
    "SingleThresholdLowPriPolicy",
    "SloReport",
    "SplitDeployment",
    "SweepPoint",
    "ThresholdRecommendation",
    "UnmanagedPolicy",
    "WorkloadCapPlan",
    "added_servers_sweep",
    "all_policies",
    "compare_policies",
    "compare_with_full_lock",
    "deepest_safe_cap",
    "evaluate_slos",
    "phase_aware_outcome",
    "plan_split_deployment",
    "plan_unsplit_deployment",
    "select_thresholds",
    "split_power_saving",
    "threshold_search",
    "uniform_vs_aware_reclaim",
    "workload_aware_plan",
]
