"""POLCA's dual-threshold, priority-aware capping policy (Table 5).

The policy has four escalating modes driven by row power utilization
against two thresholds (Section 6.3, Table 5):

=============  =====================  ======================
Mode           Low priority           High priority
=============  =====================  ======================
Uncapped       uncapped               uncapped
Threshold T1   freq cap 1275 MHz      uncapped
Threshold T2   freq cap 1110 MHz      freq cap 1305 MHz
Power brake    288 MHz                288 MHz
=============  =====================  ======================

T1 (80%) proactively slows low-priority work; T2 (89%) is "based on the
observed value of maximum power spike in 40s (the OOB capping delay)" so
that even the worst in-flight spike cannot reach the breaker before a cap
lands. Breaching T2 first deepens the low-priority cap; only "if the power
is still above the threshold" does POLCA touch high-priority workloads,
and then with a near-free cap (1305 MHz ≈ <2% performance; Insight 7).
Uncap thresholds sit 5% below their cap thresholds to avoid hysteresis
(Section 6.3, "Selecting thresholds").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PolcaThresholds:
    """The tunable constants of the POLCA policy.

    Attributes:
        t1: Low threshold as a fraction of provisioned power (0.80).
        t2: High threshold (0.89); chosen from the max 40 s spike.
        uncap_margin: How far below a threshold power must fall before
            the corresponding cap lifts (0.05 per the parameter sweeps).
        lp_t1_clock_mhz: Low-priority cap at T1 (A100 base clock).
        lp_t2_clock_mhz: Deeper low-priority cap at T2.
        hp_t2_clock_mhz: High-priority cap at T2 (negligible impact).
    """

    t1: float = 0.80
    t2: float = 0.89
    uncap_margin: float = 0.05
    lp_t1_clock_mhz: float = 1275.0
    lp_t2_clock_mhz: float = 1110.0
    hp_t2_clock_mhz: float = 1305.0

    def __post_init__(self) -> None:
        if not 0.0 < self.t1 < self.t2 <= 1.0:
            raise ConfigurationError(
                f"thresholds must satisfy 0 < t1 < t2 <= 1, got "
                f"t1={self.t1}, t2={self.t2}"
            )
        if self.uncap_margin <= 0:
            raise ConfigurationError("uncap_margin must be positive")
        if not (
            0
            < self.lp_t2_clock_mhz
            <= self.lp_t1_clock_mhz
            and 0 < self.hp_t2_clock_mhz
        ):
            raise ConfigurationError("inconsistent capping clocks")


#: The configuration selected by the paper's threshold search (Section 6.5).
POLCA_DEFAULTS = PolcaThresholds()


class DualThresholdPolicy(PowerPolicy):
    """POLCA's stateful dual-threshold controller.

    Escalation levels: 0 = uncapped; 1 = T1 (LP at 1275 MHz);
    2 = T2 entered (LP at 1110 MHz); 3 = T2 persists (HP also capped,
    1305 MHz). De-escalation requires utilization to fall 5% below the
    corresponding threshold (hysteresis).
    """

    #: Seconds a T2 breach must persist before high-priority workloads are
    #: capped — slightly above the 40 s OOB latency, so the deeper
    #: low-priority cap gets a chance to land and take effect first
    #: ("If the power is still above the threshold", Section 6.3).
    HP_ESCALATION_DELAY_S = 44.0

    def __init__(self, thresholds: PolcaThresholds = POLCA_DEFAULTS) -> None:
        self.thresholds = thresholds
        self.name = "POLCA"
        self._level = 0
        self._t2_breached_since: float = float("inf")

    @property
    def level(self) -> int:
        """Current escalation level (0-3), for observability."""
        return self._level

    def reset(self) -> None:
        """Return to the uncapped mode."""
        self._level = 0
        self._t2_breached_since = float("inf")

    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Apply the Table 5 state machine to one telemetry reading."""
        t = self.thresholds
        if utilization >= t.t2:
            if self._t2_breached_since == float("inf"):
                self._t2_breached_since = now
            # The first T2 breach deepens the LP cap; only if the breach
            # outlasts the OOB actuation latency (i.e. the deeper LP cap
            # has landed and power is still above T2) does POLCA also cap
            # the high-priority workloads.
            if (
                self._level >= 2
                and now - self._t2_breached_since >= self.HP_ESCALATION_DELAY_S
            ):
                self._level = 3
            else:
                self._level = max(self._level, 2)
        elif utilization >= t.t1:
            self._level = max(self._level, 1)
            self._t2_breached_since = float("inf")
        else:
            self._t2_breached_since = float("inf")
        # Hysteretic de-escalation, one level per tick: each step releases
        # less power than the 5% uncap margin, so stepping down cannot
        # immediately re-trigger the threshold it just left (the
        # anti-hysteresis property Section 6.3 calls out).
        if self._level == 3 and utilization < t.t2 - t.uncap_margin:
            self._level = 2
        elif self._level == 2 and utilization < t.t2 - t.uncap_margin:
            self._level = 1
        elif self._level == 1 and utilization < t.t1 - t.uncap_margin:
            self._level = 0
        return self._caps_for_level(self._level)

    def _caps_for_level(self, level: int) -> GroupCaps:
        t = self.thresholds
        if level == 0:
            return GroupCaps.uncapped()
        if level == 1:
            return GroupCaps(low_clock_mhz=t.lp_t1_clock_mhz)
        if level == 2:
            return GroupCaps(low_clock_mhz=t.lp_t2_clock_mhz)
        return GroupCaps(
            low_clock_mhz=t.lp_t2_clock_mhz,
            high_clock_mhz=t.hp_t2_clock_mhz,
        )
