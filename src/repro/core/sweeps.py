"""Evaluation harness and parameter sweeps behind Figures 13-18.

The harness reproduces the paper's pipeline end to end: synthesize the
production power trace, fit a request trace to it (MAPE-validated), run
the discrete-event simulator under a policy at a given oversubscription
level, and normalize latencies/throughput against the default uncapped
cluster.

When more servers are added, the offered load scales with the deployed
server count — the point of oversubscription is to serve *more* inference
under the same breaker budget, and Figure 16 accordingly shows the same
diurnal pattern "with a higher power offset".

Runs are executed through :class:`~repro.exec.engine.SweepEngine`: every
sweep batches its grid (including the shared uncapped baseline) into one
call, so duplicated points are simulated exactly once per harness, and a
``workers`` argument fans independent runs out over processes. Parallel
output is bit-identical to serial output — see :mod:`repro.exec`.

Simulated durations are configurable: the paper uses a six-week trace;
the benchmarks default to shorter windows (the dynamics that matter —
diurnal peaks, capping responses, brake avoidance — play out within a
couple of days).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import SimulationResult
from repro.cluster.policy_base import PowerPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy, all_policies
from repro.core.policy import PolcaThresholds
from repro.errors import ConfigurationError
from repro.exec import (
    PolicySpec,
    RunCache,
    RunSpec,
    SweepEngine,
    TraceKey,
    policy_spec_for,
)
from repro.exec import traces as _traces
from repro.faults.plan import FaultPlan
from repro.faults.reliability import ReliabilityConfig
from repro.obs.collect import TraceCollector
from repro.obs.ledger import ExperimentLedger
from repro.units import days
from repro.workloads.replay import TraceSource
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority
from repro.workloads.tracegen import INFERENCE_PROVISIONED_PER_SERVER_W


@dataclass
class EvaluationHarness:
    """Shared setup for the POLCA evaluation experiments.

    Attributes:
        n_base_servers: Designed row size (40, Table 2).
        duration_s: Simulated duration per run.
        provisioned_per_server_w: Breaker budget per designed slot.
        low_priority_fraction: Server split between priority pools.
        seed: Seed shared by trace generation and simulation.
        workers: Default process fan-out for sweeps run through this
            harness (1 = serial; individual sweeps can override).
        cache: The run memo cache shared by every sweep on this harness.
        incremental: Execute sweeps through the checkpointed
            incremental path (:mod:`repro.exec.incremental`): grid
            points sharing a configuration+trace family resume from the
            longest checkpoint before their first controller divergence
            instead of re-simulating the shared prefix. Bit-identical
            to the default path; serial in-parent (see
            :class:`~repro.exec.engine.SweepEngine`).
        checkpoint_epoch_s: Checkpoint spacing for incremental sweeps.
        trace_source: Replay source driving every run of this harness
            (``None`` = the default synthetic pipeline). Flows through
            :class:`~repro.exec.TraceKey` and every spec this harness
            builds, so sweeps under a replayed Azure CSV, a session
            workload, or a flash-crowd overlay use the engine, cache,
            and incremental paths unchanged.
        ledger: Experiment ledger shared by every sweep on this
            harness (see :class:`~repro.obs.ledger.ExperimentLedger`):
            each engine batch appends one entry per unique run —
            identity digests, policy, wall time, provenance, rusage,
            headline metrics, environment stamp. ``None`` (default)
            records nothing; a ledgered sweep is bit-identical to an
            unledgered one.
        collector: Per-run trace spool shared by every sweep on this
            harness (see :class:`~repro.obs.collect.TraceCollector`):
            each simulated run — serial, incremental, pool-worker,
            quarantine, or sharded — writes one JSONL segment keyed by
            its content digest, queryable afterwards with
            :mod:`repro.obs.query`. ``None`` (default) spools nothing;
            a collected sweep is bit-identical to an uncollected one.
    """

    n_base_servers: int = 40
    duration_s: float = days(2)
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    low_priority_fraction: float = 0.5
    seed: int = 0
    workers: int = 1
    cache: RunCache = field(default_factory=RunCache, repr=False)
    incremental: bool = False
    checkpoint_epoch_s: float = 600.0
    trace_source: Optional[TraceSource] = None
    ledger: Optional[ExperimentLedger] = None
    collector: Optional[TraceCollector] = None

    def utilization_trace(self) -> TimeSeries:
        """The production-style target utilization trace (cached)."""
        return _traces.utilization_trace(self.seed, self.duration_s)

    def trace_key(self, added_fraction: float) -> TraceKey:
        """The request-trace cache key for one oversubscription level."""
        n_total = self.n_base_servers + int(round(
            self.n_base_servers * added_fraction
        ))
        return TraceKey(
            seed=self.seed,
            n_servers=n_total,
            provisioned_per_server_w=self.provisioned_per_server_w,
            duration_s=self.duration_s,
            source=self.trace_source,
        )

    def requests_for(self, added_fraction: float) -> List[SampledRequest]:
        """The request trace for a deployment with added servers (cached).

        Load scales with the deployed server count so per-server
        utilization stays on the production pattern. The cache is shared
        process-wide (:mod:`repro.exec.traces`), so harnesses describing
        the same deployment share one trace.
        """
        return _traces.requests_for(self.trace_key(added_fraction))

    def config(
        self,
        added_fraction: float,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> ClusterConfig:
        """Build the simulator configuration for one run."""
        return ClusterConfig(
            n_base_servers=self.n_base_servers,
            added_fraction=added_fraction,
            provisioned_per_server_w=self.provisioned_per_server_w,
            low_priority_fraction=(
                self.low_priority_fraction
                if low_priority_fraction is None
                else low_priority_fraction
            ),
            power_scale=power_scale,
            seed=self.seed,
            fault_plan=fault_plan,
            reliability=(
                ReliabilityConfig() if reliability is None else reliability
            ),
        )

    def spec(
        self,
        policy: PolicySpec,
        added_fraction: float = 0.0,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> RunSpec:
        """Describe one run of this harness as an engine-executable spec."""
        return RunSpec(
            config=self.config(
                added_fraction, power_scale, low_priority_fraction,
                fault_plan=fault_plan, reliability=reliability,
            ),
            policy=policy,
            duration_s=self.duration_s,
            trace=self.trace_source,
        )

    def engine(self, workers: Optional[int] = None) -> SweepEngine:
        """A sweep engine over this harness's shared memo cache."""
        return SweepEngine(
            workers=self.workers if workers is None else workers,
            cache=self.cache,
            incremental=self.incremental,
            checkpoint_epoch_s=self.checkpoint_epoch_s,
            ledger=self.ledger,
            collector=self.collector,
        )

    def run(
        self,
        policy: PowerPolicy,
        added_fraction: float = 0.0,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> SimulationResult:
        """Run one policy at one oversubscription level (memoized).

        Recognized policy configurations (the four named policies, plus
        any POLCA thresholds) go through the engine's memo cache — asking
        twice simulates once, and results are shared with the batched
        sweeps below. Custom policy objects are simulated directly.

        A ``fault_plan`` makes the run's telemetry/actuation/server
        substrate unreliable (the robustness extension); the request
        trace and everything else stay identical, so the result is
        directly comparable against the fault-free run.
        """
        policy_spec = policy_spec_for(policy)
        if policy_spec is not None:
            return self.engine().run(self.spec(
                policy_spec, added_fraction, power_scale,
                low_priority_fraction, fault_plan, reliability,
            ))
        simulator = ClusterSimulator(
            self.config(
                added_fraction, power_scale, low_priority_fraction,
                fault_plan=fault_plan, reliability=reliability,
            ),
            policy,
        )
        return simulator.run(self.requests_for(added_fraction), self.duration_s)

    def baseline(self) -> SimulationResult:
        """The normalization baseline: default servers, no capping (cached)."""
        return self.run(NoCapPolicy(), added_fraction=0.0)

    def baseline_spec(self) -> RunSpec:
        """The baseline as a spec, for batching into sweep executions."""
        return self.spec(PolicySpec("No-cap"), added_fraction=0.0)


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Figure 13/14 added-servers sweep.

    Attributes:
        added_fraction: Oversubscription level (0.30 = 30% more servers).
        normalized_p50: Normalized p50 latency per priority.
        normalized_p99: Normalized p99 latency per priority.
        normalized_throughput: Normalized served fraction per priority.
        power_brake_events: Brake engagements during the run.
    """

    added_fraction: float
    normalized_p50: Dict[Priority, float]
    normalized_p99: Dict[Priority, float]
    normalized_throughput: Dict[Priority, float]
    power_brake_events: int


def _sweep_point(
    fraction: float, result: SimulationResult, baseline: SimulationResult
) -> SweepPoint:
    return SweepPoint(
        added_fraction=fraction,
        normalized_p50={
            p: result.normalized_latencies(p, baseline)["p50"]
            for p in Priority
        },
        normalized_p99={
            p: result.normalized_latencies(p, baseline)["p99"]
            for p in Priority
        },
        normalized_throughput={
            p: result.normalized_throughput(p, baseline)
            for p in Priority
        },
        power_brake_events=result.power_brake_events,
    )


def added_servers_sweep(
    harness: EvaluationHarness,
    thresholds: PolcaThresholds,
    added_fractions: Sequence[float],
    workers: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> List[SweepPoint]:
    """Sweep oversubscription levels for one threshold configuration.

    This is the engine behind Figure 13 (one subplot per threshold pair)
    and Figure 14 (throughput for the selected configuration). The whole
    grid — baseline included — executes as one batch; pass ``workers`` to
    fan it out over processes. A ``fault_plan`` applies to the sweep
    points only; the normalization baseline stays fault-free.

    Raises:
        ConfigurationError: If no sweep points are given.
    """
    if not added_fractions:
        raise ConfigurationError("need at least one added_fraction")
    specs = [harness.baseline_spec()]
    for fraction in added_fractions:
        specs.append(harness.spec(
            PolicySpec("POLCA", thresholds),
            added_fraction=fraction,
            fault_plan=fault_plan,
        ))
    results = harness.engine(workers).run_specs(specs)
    baseline = results[0]
    return [
        _sweep_point(fraction, result, baseline)
        for fraction, result in zip(added_fractions, results[1:])
    ]


def threshold_search(
    harness: EvaluationHarness,
    combos: Sequence[Tuple[str, PolcaThresholds]],
    added_fractions: Sequence[float],
    workers: Optional[int] = None,
) -> Dict[Tuple[str, float], SweepPoint]:
    """The full Figure 13 grid: every threshold pair at every level.

    Batches the entire ``combos x added_fractions`` product (plus the
    shared baseline) into a single engine execution, keyed by
    ``(combo_label, added_fraction)`` in the returned mapping.

    Raises:
        ConfigurationError: If no combos or no sweep points are given.
    """
    if not combos or not added_fractions:
        raise ConfigurationError(
            "need at least one threshold combo and one added_fraction"
        )
    keys: List[Tuple[str, float]] = []
    specs = [harness.baseline_spec()]
    for label, thresholds in combos:
        for fraction in added_fractions:
            keys.append((label, fraction))
            specs.append(harness.spec(
                PolicySpec("POLCA", thresholds), added_fraction=fraction
            ))
    results = harness.engine(workers).run_specs(specs)
    baseline = results[0]
    return {
        (label, fraction): _sweep_point(fraction, result, baseline)
        for (label, fraction), result in zip(keys, results[1:])
    }


@dataclass(frozen=True)
class PolicyComparison:
    """One policy's Figure 17/18 outcome at 30% oversubscription.

    Attributes:
        policy_name: Display name ("POLCA", "No-cap+5%", ...).
        normalized_p50 / normalized_p99 / normalized_max: Latency ratios
            per priority against the default uncapped cluster.
        power_brake_events: Brake engagements (Figure 18).
    """

    policy_name: str
    normalized_p50: Dict[Priority, float]
    normalized_p99: Dict[Priority, float]
    normalized_max: Dict[Priority, float]
    power_brake_events: int


def compare_policies(
    harness: EvaluationHarness,
    added_fraction: float = 0.30,
    power_scales: Sequence[float] = (1.0, 1.05),
    workers: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> List[PolicyComparison]:
    """Run every policy (and +5% power variants) at 30% oversubscription.

    Reproduces Figures 17 and 18: the four policies under the standard
    workload and under uniformly 5%-more-power-intensive workloads. The
    whole grid executes as one batch; pass ``workers`` to fan it out.
    A ``fault_plan`` applies to the compared runs only; the baseline
    stays fault-free.
    """
    labels: List[str] = []
    specs = [harness.baseline_spec()]
    for scale in power_scales:
        pct = (scale - 1.0) * 100.0
        suffix = "" if scale == 1.0 else f"{pct:+g}%"
        for name in all_policies():
            labels.append(name + suffix)
            specs.append(harness.spec(
                PolicySpec(name),
                added_fraction=added_fraction,
                power_scale=scale,
                fault_plan=fault_plan,
            ))
    results = harness.engine(workers).run_specs(specs)
    baseline = results[0]
    comparisons: List[PolicyComparison] = []
    for label, result in zip(labels, results[1:]):
        comparisons.append(PolicyComparison(
            policy_name=label,
            normalized_p50={
                p: result.normalized_latencies(p, baseline)["p50"]
                for p in Priority
            },
            normalized_p99={
                p: result.normalized_latencies(p, baseline)["p99"]
                for p in Priority
            },
            normalized_max={
                p: result.normalized_latencies(p, baseline)["max"]
                for p in Priority
            },
            power_brake_events=result.power_brake_events,
        ))
    return comparisons
