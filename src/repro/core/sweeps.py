"""Evaluation harness and parameter sweeps behind Figures 13-18.

The harness reproduces the paper's pipeline end to end: synthesize the
production power trace, fit a request trace to it (MAPE-validated), run
the discrete-event simulator under a policy at a given oversubscription
level, and normalize latencies/throughput against the default uncapped
cluster.

When more servers are added, the offered load scales with the deployed
server count — the point of oversubscription is to serve *more* inference
under the same breaker budget, and Figure 16 accordingly shows the same
diurnal pattern "with a higher power offset".

Simulated durations are configurable: the paper uses a six-week trace;
the benchmarks default to shorter windows (the dynamics that matter —
diurnal peaks, capping responses, brake avoidance — play out within a
couple of days).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.timeseries import TimeSeries
from repro.cluster.metrics import SimulationResult
from repro.cluster.policy_base import PowerPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy, all_policies
from repro.core.policy import DualThresholdPolicy, PolcaThresholds
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.reliability import ReliabilityConfig
from repro.units import days
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority
from repro.workloads.tracegen import (
    INFERENCE_PROVISIONED_PER_SERVER_W,
    ProductionTraceModel,
    SyntheticTraceGenerator,
)


@dataclass
class EvaluationHarness:
    """Shared setup for the POLCA evaluation experiments.

    Attributes:
        n_base_servers: Designed row size (40, Table 2).
        duration_s: Simulated duration per run.
        provisioned_per_server_w: Breaker budget per designed slot.
        low_priority_fraction: Server split between priority pools.
        seed: Seed shared by trace generation and simulation.
    """

    n_base_servers: int = 40
    duration_s: float = days(2)
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    low_priority_fraction: float = 0.5
    seed: int = 0
    _trace: Optional[TimeSeries] = field(init=False, default=None)
    _requests_cache: Dict[int, List[SampledRequest]] = field(
        init=False, default_factory=dict
    )
    _baseline: Optional[SimulationResult] = field(init=False, default=None)

    def utilization_trace(self) -> TimeSeries:
        """The production-style target utilization trace (cached)."""
        if self._trace is None:
            self._trace = ProductionTraceModel(seed=self.seed).generate(
                duration_s=self.duration_s
            )
        return self._trace

    def requests_for(self, added_fraction: float) -> List[SampledRequest]:
        """The request trace for a deployment with added servers (cached).

        Load scales with the deployed server count so per-server
        utilization stays on the production pattern.
        """
        n_total = self.n_base_servers + int(round(
            self.n_base_servers * added_fraction
        ))
        if n_total not in self._requests_cache:
            generator = SyntheticTraceGenerator(
                n_servers=n_total,
                provisioned_per_server_w=self.provisioned_per_server_w,
                seed=self.seed,
            )
            synthetic = generator.generate(self.utilization_trace())
            synthetic.validate()
            self._requests_cache[n_total] = synthetic.requests
        return self._requests_cache[n_total]

    def config(
        self,
        added_fraction: float,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> ClusterConfig:
        """Build the simulator configuration for one run."""
        return ClusterConfig(
            n_base_servers=self.n_base_servers,
            added_fraction=added_fraction,
            provisioned_per_server_w=self.provisioned_per_server_w,
            low_priority_fraction=(
                self.low_priority_fraction
                if low_priority_fraction is None
                else low_priority_fraction
            ),
            power_scale=power_scale,
            seed=self.seed,
            fault_plan=fault_plan,
            reliability=(
                ReliabilityConfig() if reliability is None else reliability
            ),
        )

    def run(
        self,
        policy: PowerPolicy,
        added_fraction: float = 0.0,
        power_scale: float = 1.0,
        low_priority_fraction: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> SimulationResult:
        """Run one policy at one oversubscription level.

        A ``fault_plan`` makes the run's telemetry/actuation/server
        substrate unreliable (the robustness extension); the request
        trace and everything else stay identical, so the result is
        directly comparable against the fault-free run.
        """
        simulator = ClusterSimulator(
            self.config(
                added_fraction, power_scale, low_priority_fraction,
                fault_plan=fault_plan, reliability=reliability,
            ),
            policy,
        )
        return simulator.run(self.requests_for(added_fraction), self.duration_s)

    def baseline(self) -> SimulationResult:
        """The normalization baseline: default servers, no capping (cached)."""
        if self._baseline is None:
            self._baseline = self.run(NoCapPolicy(), added_fraction=0.0)
        return self._baseline


@dataclass(frozen=True)
class SweepPoint:
    """One point of the Figure 13/14 added-servers sweep.

    Attributes:
        added_fraction: Oversubscription level (0.30 = 30% more servers).
        normalized_p50: Normalized p50 latency per priority.
        normalized_p99: Normalized p99 latency per priority.
        normalized_throughput: Normalized served fraction per priority.
        power_brake_events: Brake engagements during the run.
    """

    added_fraction: float
    normalized_p50: Dict[Priority, float]
    normalized_p99: Dict[Priority, float]
    normalized_throughput: Dict[Priority, float]
    power_brake_events: int


def added_servers_sweep(
    harness: EvaluationHarness,
    thresholds: PolcaThresholds,
    added_fractions: Sequence[float],
) -> List[SweepPoint]:
    """Sweep oversubscription levels for one threshold configuration.

    This is the engine behind Figure 13 (one subplot per threshold pair)
    and Figure 14 (throughput for the selected configuration).

    Raises:
        ConfigurationError: If no sweep points are given.
    """
    if not added_fractions:
        raise ConfigurationError("need at least one added_fraction")
    baseline = harness.baseline()
    points: List[SweepPoint] = []
    for fraction in added_fractions:
        result = harness.run(
            DualThresholdPolicy(thresholds), added_fraction=fraction
        )
        points.append(SweepPoint(
            added_fraction=fraction,
            normalized_p50={
                p: result.normalized_latencies(p, baseline)["p50"]
                for p in Priority
            },
            normalized_p99={
                p: result.normalized_latencies(p, baseline)["p99"]
                for p in Priority
            },
            normalized_throughput={
                p: result.normalized_throughput(p, baseline)
                for p in Priority
            },
            power_brake_events=result.power_brake_events,
        ))
    return points


@dataclass(frozen=True)
class PolicyComparison:
    """One policy's Figure 17/18 outcome at 30% oversubscription.

    Attributes:
        policy_name: Display name ("POLCA", "No-cap+5%", ...).
        normalized_p50 / normalized_p99 / normalized_max: Latency ratios
            per priority against the default uncapped cluster.
        power_brake_events: Brake engagements (Figure 18).
    """

    policy_name: str
    normalized_p50: Dict[Priority, float]
    normalized_p99: Dict[Priority, float]
    normalized_max: Dict[Priority, float]
    power_brake_events: int


def compare_policies(
    harness: EvaluationHarness,
    added_fraction: float = 0.30,
    power_scales: Sequence[float] = (1.0, 1.05),
) -> List[PolicyComparison]:
    """Run every policy (and +5% power variants) at 30% oversubscription.

    Reproduces Figures 17 and 18: the four policies under the standard
    workload and under uniformly 5%-more-power-intensive workloads.
    """
    baseline = harness.baseline()
    comparisons: List[PolicyComparison] = []
    for scale in power_scales:
        suffix = "" if scale == 1.0 else f"+{round((scale - 1) * 100)}%"
        for name, factory in all_policies().items():
            result = harness.run(
                factory(), added_fraction=added_fraction, power_scale=scale
            )
            comparisons.append(PolicyComparison(
                policy_name=name + suffix,
                normalized_p50={
                    p: result.normalized_latencies(p, baseline)["p50"]
                    for p in Priority
                },
                normalized_p99={
                    p: result.normalized_latencies(p, baseline)["p99"]
                    for p in Priority
                },
                normalized_max={
                    p: result.normalized_latencies(p, baseline)["max"]
                    for p in Priority
                },
                power_brake_events=result.power_brake_events,
            ))
    return comparisons
