"""Threshold selection from historical power traces (Section 6.3/6.5).

"POLCA selects the power value for the thresholds by analyzing historical
power usage traces... The upper threshold (T2) is chosen to avoid power
brakes. POLCA sets the threshold based on the observed value of maximum
power spike in 40s (the OOB capping delay) over the available trace."

Given a training trace (the paper uses the first of the six weeks), the
recommendation is:

* ``T2 = 1 - max 40 s spike`` — even if the worst historical spike starts
  the instant T2 is crossed, the cap lands before the breaker trips;
* ``T1 = T2 - (max 40 s spike)`` rounded to sit comfortably below, giving
  the LP capping stage room to act first;
* uncap thresholds 5% below each capping threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeseries import TimeSeries, max_swing
from repro.core.policy import PolcaThresholds
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThresholdRecommendation:
    """Outcome of analyzing a historical trace.

    Attributes:
        max_spike_2s: Largest observed rise within 2 s (utilization units).
        max_spike_40s: Largest observed rise within 40 s.
        thresholds: The recommended POLCA configuration.
    """

    max_spike_2s: float
    max_spike_40s: float
    thresholds: PolcaThresholds


def select_thresholds(
    utilization_trace: TimeSeries,
    uncap_margin: float = 0.05,
    t1_gap: float = 0.09,
) -> ThresholdRecommendation:
    """Recommend (T1, T2) from a historical utilization trace.

    Args:
        utilization_trace: Row power as a fraction of provisioned power.
        uncap_margin: Hysteresis margin below each threshold.
        t1_gap: How far below T2 to place T1 (the paper lands on
            T1=80%/T2=89%, a 9-point gap).

    Raises:
        ConfigurationError: If the trace is too short to analyze.
    """
    if len(utilization_trace) < 3:
        raise ConfigurationError("trace too short for threshold selection")
    spike_2s = max_swing(utilization_trace, 2.0) if (
        utilization_trace.interval <= 2.0
    ) else max_swing(utilization_trace, utilization_trace.interval)
    spike_40s = max_swing(utilization_trace, 40.0) if (
        utilization_trace.interval <= 40.0
    ) else spike_2s
    t2 = round(1.0 - spike_40s, 2)
    t2 = min(max(t2, 0.5), 0.99)
    t1 = round(t2 - t1_gap, 2)
    if t1 <= 0:
        raise ConfigurationError(
            f"trace spikes too large for a usable T1 (t2={t2})"
        )
    return ThresholdRecommendation(
        max_spike_2s=spike_2s,
        max_spike_40s=spike_40s,
        thresholds=PolcaThresholds(t1=t1, t2=t2, uncap_margin=uncap_margin),
    )
