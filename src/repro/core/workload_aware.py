"""Workload-aware capping plans (the paper's Section 6.7 proposal).

"Given the rise of inference-as-a-service platforms, POLCA could be
extended to use workload-specific power profiles to reduce the impact on
performance, while getting the most power savings."

The advisor computes, per workload, the deepest capping clock whose
latency stretch still fits that workload's SLO budget — using the
workload's own prompt/output shape (a Summarize request, prompt-heavy
and short-output, tolerates a different clock than a Search request whose
latency is all decode). A provider running POLCA can then cap each
workload's servers to their individual limits instead of one
one-size-fits-all frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.performance import RooflineLatencyModel
from repro.models.registry import get_model
from repro.workloads.spec import SLO_TARGETS, TABLE6_MIX, WorkloadSpec

#: Candidate capping clocks, deepest first (the lockable ladder POLCA uses).
CANDIDATE_CLOCKS_MHZ: Tuple[float, ...] = (
    1110.0, 1155.0, 1200.0, 1245.0, 1275.0, 1305.0, 1350.0, 1410.0,
)


@dataclass(frozen=True)
class WorkloadCapPlan:
    """The deepest safe cap for one workload.

    Attributes:
        workload_name: The workload.
        cap_clock_mhz: Deepest clock whose stretch fits the SLO budget.
        latency_stretch: Fractional latency increase at that clock.
        slo_budget: The p50-impact budget it was fitted against.
    """

    workload_name: str
    cap_clock_mhz: float
    latency_stretch: float
    slo_budget: float


def latency_stretch(
    workload: WorkloadSpec,
    clock_mhz: float,
    gpu: GpuSpec = A100_80GB,
) -> float:
    """Fractional latency increase of a mean-shaped request at a clock.

    Raises:
        FrequencyError: If the clock is outside the lockable range.
    """
    gpu.validate_clock(clock_mhz)
    spec = get_model(workload.model_name)
    latency = RooflineLatencyModel(model=spec, gpu=gpu)
    inputs = int(workload.mean_prompt_tokens())
    outputs = int(workload.mean_output_tokens())
    ratio = clock_mhz / gpu.max_sm_clock_mhz
    base = latency.request_latency(inputs, outputs).total_seconds
    locked = latency.request_latency(
        inputs, outputs, clock_ratio=ratio
    ).total_seconds
    return locked / base - 1.0


def deepest_safe_cap(
    workload: WorkloadSpec,
    slo_budget: float,
    candidates: Sequence[float] = CANDIDATE_CLOCKS_MHZ,
    gpu: GpuSpec = A100_80GB,
) -> WorkloadCapPlan:
    """The deepest candidate clock whose stretch stays within budget.

    Raises:
        ConfigurationError: If even the maximum clock misses the budget
            (budget must be non-negative).
    """
    if slo_budget < 0:
        raise ConfigurationError("SLO budget cannot be negative")
    for clock in sorted(candidates):  # deepest first
        stretch = latency_stretch(workload, clock, gpu)
        if stretch <= slo_budget:
            return WorkloadCapPlan(
                workload_name=workload.name,
                cap_clock_mhz=clock,
                latency_stretch=stretch,
                slo_budget=slo_budget,
            )
    # The max clock always has zero stretch, so this is unreachable for
    # candidate lists that include it; guard anyway.
    raise ConfigurationError(
        f"{workload.name}: no candidate clock fits budget {slo_budget}"
    )


def workload_aware_plan(
    mix: Sequence[WorkloadSpec] = TABLE6_MIX,
    gpu: GpuSpec = A100_80GB,
) -> Dict[str, WorkloadCapPlan]:
    """Per-workload deepest safe caps for a whole mix.

    Each workload's budget comes from its priority tier's p50 SLO
    (Table 6): high-priority workloads get the 1% budget, low-priority
    the 5% one; Chat (mixed priority) conservatively uses the stricter.
    """
    plans: Dict[str, WorkloadCapPlan] = {}
    for workload in mix:
        if workload.high_priority_probability >= 0.5:
            budget = min(t.p50_impact for t in SLO_TARGETS.values())
        else:
            budget = max(t.p50_impact for t in SLO_TARGETS.values())
        plans[workload.name] = deepest_safe_cap(workload, budget, gpu=gpu)
    return plans


def uniform_vs_aware_reclaim(
    mix: Sequence[WorkloadSpec] = TABLE6_MIX,
    gpu: GpuSpec = A100_80GB,
) -> Dict[str, float]:
    """Compare power reclaim of per-workload caps vs one uniform cap.

    The uniform cap must satisfy the *strictest* workload, so it reclaims
    the least; workload-aware capping reclaims the per-workload maximum.
    Returns mix-weighted fractional GPU dynamic-power reductions.
    """
    from repro.gpu.power import GpuPowerModel
    from repro.models.power_profile import PhasePowerProfile

    plans = workload_aware_plan(mix, gpu)
    uniform_clock = max(plan.cap_clock_mhz for plan in plans.values())
    power_model = GpuPowerModel(gpu)

    def token_power(workload: WorkloadSpec, clock: float) -> float:
        profile = PhasePowerProfile(model=get_model(workload.model_name))
        return power_model.power(profile.token_activity(), clock)

    aware = uniform = base = 0.0
    for workload in mix:
        base += workload.share * token_power(workload, gpu.max_sm_clock_mhz)
        aware += workload.share * token_power(
            workload, plans[workload.name].cap_clock_mhz
        )
        uniform += workload.share * token_power(workload, uniform_clock)
    return {
        "uniform_clock_mhz": uniform_clock,
        "uniform_reclaim": 1.0 - uniform / base,
        "aware_reclaim": 1.0 - aware / base,
    }
