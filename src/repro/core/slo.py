"""SLO evaluation against the Table 6 targets.

Table 6's right-hand columns define success: high priority may lose <1%
p50 and <5% p99 latency, low priority <5% p50 and <50% p99, and there must
be zero power-brake events. All latency impacts are measured relative to
the default (non-oversubscribed, uncapped) cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.metrics import SimulationResult
from repro.workloads.spec import Priority, SLO_TARGETS, SloTargets


@dataclass(frozen=True)
class SloReport:
    """SLO compliance of one simulation run against a baseline.

    Attributes:
        p50_impact: Fractional p50 increase per priority.
        p99_impact: Fractional p99 increase per priority.
        power_brake_events: Brake engagements in the run.
        targets: The SLO targets evaluated against.
    """

    p50_impact: Dict[Priority, float]
    p99_impact: Dict[Priority, float]
    power_brake_events: int
    targets: Dict[Priority, SloTargets]

    def meets(self, priority: Priority) -> bool:
        """Whether one tier's latency SLOs are met."""
        target = self.targets[priority]
        return (
            self.p50_impact[priority] <= target.p50_impact
            and self.p99_impact[priority] <= target.p99_impact
        )

    @property
    def brakes_ok(self) -> bool:
        """Whether the brake-count SLO (zero events) is met."""
        limit = max(t.max_power_brakes for t in self.targets.values())
        return self.power_brake_events <= limit

    @property
    def all_met(self) -> bool:
        """Whether every SLO is met."""
        return self.brakes_ok and all(self.meets(p) for p in self.targets)


def evaluate_slos(
    result: SimulationResult,
    baseline: SimulationResult,
    targets: Dict[Priority, SloTargets] = SLO_TARGETS,
) -> SloReport:
    """Compare a run against its baseline and the Table 6 targets."""
    p50_impact: Dict[Priority, float] = {}
    p99_impact: Dict[Priority, float] = {}
    for priority in targets:
        normalized = result.normalized_latencies(priority, baseline)
        p50_impact[priority] = normalized["p50"] - 1.0
        p99_impact[priority] = normalized["p99"] - 1.0
    return SloReport(
        p50_impact=p50_impact,
        p99_impact=p99_impact,
        power_brake_events=result.power_brake_events,
        targets=dict(targets),
    )
