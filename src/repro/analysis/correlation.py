"""Pearson correlation utilities for the GPU counter study (Figure 7).

Figure 7 of the paper shows pairwise Pearson correlations between seven GPU
performance counters (power, GPU utilization, memory utilization, SM
activity, tensor-core activity, PCIe TX, PCIe RX), computed separately for
the prompt and token phases of BLOOM inference. These helpers compute the
same matrices from the synthetic counter traces in :mod:`repro.gpu.counters`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length series.

    A constant series has zero variance; its correlation with anything is
    undefined, and we return ``0.0`` for it (matching the "uncorrelated"
    reading the paper gives to flat token-phase counters).

    Raises:
        ConfigurationError: On length mismatch or fewer than two samples.
    """
    a = np.asarray(list(x), dtype=float)
    b = np.asarray(list(y), dtype=float)
    if a.shape != b.shape:
        raise ConfigurationError(f"length mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ConfigurationError("correlation needs at least two samples")
    a_std = a.std()
    b_std = b.std()
    if a_std == 0.0 or b_std == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (a_std * b_std))


def correlation_matrix(
    counters: Mapping[str, Sequence[float]],
) -> Tuple[List[str], np.ndarray]:
    """Pairwise Pearson correlation matrix over named counter traces.

    Args:
        counters: Mapping from counter name to its sample sequence. All
            sequences must share one length.

    Returns:
        ``(names, matrix)`` where ``matrix[i][j]`` is the correlation of
        ``names[i]`` with ``names[j]``. The diagonal is exactly 1.0.
    """
    names = list(counters.keys())
    if not names:
        raise ConfigurationError("correlation matrix over zero counters")
    n = len(names)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            value = pearson(counters[names[i]], counters[names[j]])
            matrix[i, j] = value
            matrix[j, i] = value
    return names, matrix


def correlations_with(
    target: str, counters: Mapping[str, Sequence[float]]
) -> Dict[str, float]:
    """Correlation of every counter against one target counter.

    Convenience for assertions like "prompt-phase power is highly correlated
    with SM and tensor activity and inversely correlated with memory
    activity" (Insight 4 validation).
    """
    if target not in counters:
        raise ConfigurationError(f"unknown target counter {target!r}")
    return {
        name: pearson(counters[target], series)
        for name, series in counters.items()
        if name != target
    }
