"""Uniformly sampled time series with the operations the paper relies on.

The characterization and POLCA evaluation repeatedly need the same handful
of operations over power signals: resampling a continuous signal at a
telemetry interval, rolling averages ("5min avg" in Figure 16), peak/mean
extraction, and the *maximum power swing within a window* statistic that
Table 4 reports (max spike in 2 s / 40 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimeSeries:
    """An immutable, uniformly sampled scalar time series.

    Attributes:
        start: Timestamp of the first sample, in seconds.
        interval: Sampling period in seconds (strictly positive).
        values: Sample values as a 1-D :class:`numpy.ndarray`.
    """

    start: float
    interval: float
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {self.interval}")
        array = np.asarray(self.values, dtype=float)
        if array.ndim != 1:
            raise ConfigurationError("TimeSeries values must be one-dimensional")
        object.__setattr__(self, "values", array)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def duration(self) -> float:
        """Span covered by the series in seconds (0 for an empty series)."""
        if self.values.size == 0:
            return 0.0
        return float((self.values.size - 1) * self.interval)

    @property
    def times(self) -> np.ndarray:
        """Timestamps of every sample."""
        return self.start + np.arange(self.values.size) * self.interval

    @classmethod
    def from_function(
        cls,
        func: Callable[[float], float],
        start: float,
        end: float,
        interval: float,
    ) -> "TimeSeries":
        """Sample a continuous function ``func(t)`` on ``[start, end)``.

        This is how telemetry interfaces turn the simulator's continuous
        power model into discrete readings (Table 1 sampling intervals).
        """
        if end <= start:
            raise ConfigurationError("end must be after start")
        times = np.arange(start, end, interval)
        return cls(start=start, interval=interval,
                   values=np.array([func(float(t)) for t in times]))

    def peak(self) -> float:
        """Maximum sample value."""
        self._require_nonempty()
        return float(self.values.max())

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        self._require_nonempty()
        return float(self.values.mean())

    def trough(self) -> float:
        """Minimum sample value."""
        self._require_nonempty()
        return float(self.values.min())

    def rolling_mean(self, window_seconds: float) -> "TimeSeries":
        """Trailing moving average over ``window_seconds``.

        Used by Figure 16 to overlay the "5min avg" on the "2s avg" power
        utilization series. The first ``window - 1`` outputs average over
        the shorter available prefix rather than being dropped.
        """
        self._require_nonempty()
        window = max(1, int(round(window_seconds / self.interval)))
        cumsum = np.cumsum(np.insert(self.values, 0, 0.0))
        out = np.empty_like(self.values)
        for i in range(self.values.size):
            lo = max(0, i + 1 - window)
            out[i] = (cumsum[i + 1] - cumsum[lo]) / (i + 1 - lo)
        return TimeSeries(start=self.start, interval=self.interval, values=out)

    def downsample(self, factor: int) -> "TimeSeries":
        """Keep every ``factor``-th sample (e.g. 100 ms DCGM -> 2 s row)."""
        if factor < 1:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        return TimeSeries(
            start=self.start,
            interval=self.interval * factor,
            values=self.values[::factor].copy(),
        )

    def slice(self, t_from: float, t_to: float) -> "TimeSeries":
        """Return the sub-series with timestamps in ``[t_from, t_to)``."""
        times = self.times
        mask = (times >= t_from) & (times < t_to)
        selected = self.values[mask]
        if selected.size == 0:
            return TimeSeries(start=t_from, interval=self.interval,
                              values=np.empty(0))
        new_start = float(times[mask][0])
        return TimeSeries(start=new_start, interval=self.interval,
                          values=selected.copy())

    def normalized(self, baseline: float) -> "TimeSeries":
        """Divide every sample by ``baseline`` (e.g. TDP, provisioned power)."""
        if baseline <= 0:
            raise ConfigurationError(f"baseline must be positive, got {baseline}")
        return TimeSeries(start=self.start, interval=self.interval,
                          values=self.values / baseline)

    def _require_nonempty(self) -> None:
        if self.values.size == 0:
            raise ConfigurationError("operation undefined on an empty TimeSeries")


def max_swing(series: TimeSeries, window_seconds: float) -> float:
    """Largest increase of the signal within any window of the given length.

    Table 4 reports the production clusters' "Max. power spike in 2s" (37.5%
    of provisioned power for training, 9% for inference) and "in 40s"
    (11.8% for inference). Matching that definition, the swing is the
    maximum of ``max(window) - value_at_window_start`` over all windows —
    i.e. how far power can *rise* within the reaction time of a control.

    Args:
        series: Input series; must contain at least two samples.
        window_seconds: Window length in seconds; must cover >= 1 interval.
    """
    if len(series) < 2:
        raise ConfigurationError("max_swing needs at least two samples")
    steps = int(round(window_seconds / series.interval))
    if steps < 1:
        raise ConfigurationError(
            f"window {window_seconds}s shorter than sampling interval "
            f"{series.interval}s"
        )
    values = series.values
    best = 0.0
    n = values.size
    # Sliding-window maximum via a monotonic deque keeps this O(n).
    from collections import deque

    dq: "deque[int]" = deque()
    for i in range(n):
        hi = min(n - 1, i + steps)
        # Maintain deque of indices in (i, hi] with decreasing values.
        if not dq:
            for j in range(i + 1, hi + 1):
                while dq and values[dq[-1]] <= values[j]:
                    dq.pop()
                dq.append(j)
        else:
            while dq and dq[0] <= i:
                dq.popleft()
            j = hi
            if j > i and (not dq or dq[-1] < j):
                while dq and values[dq[-1]] <= values[j]:
                    dq.pop()
                dq.append(j)
        if dq:
            best = max(best, float(values[dq[0]] - values[i]))
    return best


def concatenate(parts: Sequence[TimeSeries]) -> TimeSeries:
    """Concatenate back-to-back series sharing one sampling interval.

    The resulting series starts at ``parts[0].start``; subsequent parts are
    assumed contiguous (their own ``start`` values are ignored).
    """
    if not parts:
        raise ConfigurationError("cannot concatenate zero series")
    interval = parts[0].interval
    for part in parts[1:]:
        if abs(part.interval - interval) > 1e-12:
            raise ConfigurationError("cannot concatenate series with mixed intervals")
    values = np.concatenate([part.values for part in parts])
    return TimeSeries(start=parts[0].start, interval=interval, values=values)
