"""Basic statistics used throughout the characterization and evaluation.

The paper reports p50/p99/max latencies normalized to an uncapped baseline
(Figures 13-17), and validates its synthetic trace against the production
power time series using Mean Absolute Percentage Error (Section 6.4,
"MAPE ... is within 3%"). Both primitives live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Percentiles conventionally reported by the paper's evaluation figures.
REPORTED_PERCENTILES = (50.0, 99.0, 100.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile of ``values``.

    Args:
        values: Observations; must be non-empty.
        q: Percentile in ``[0, 100]``; ``100`` returns the maximum.

    Raises:
        ConfigurationError: If ``values`` is empty or ``q`` is out of range.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ConfigurationError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q={q} outside [0, 100]")
    return float(np.percentile(data, q))


def mean_absolute_percentage_error(
    reference: Sequence[float], candidate: Sequence[float]
) -> float:
    """Return MAPE between a reference and a candidate series, as a fraction.

    This is the trace-fidelity criterion from Section 6.4: the synthetic
    request trace is accepted when the MAPE between the synthetic and the
    original power time series is within 3% (i.e. ``<= 0.03``).

    Args:
        reference: Ground-truth series. Entries must be non-zero.
        candidate: Series under test; must have the same length.

    Raises:
        ConfigurationError: On length mismatch, empty input, or a zero
            reference entry (the percentage error would be undefined).
    """
    ref = np.asarray(list(reference), dtype=float)
    cand = np.asarray(list(candidate), dtype=float)
    if ref.size == 0:
        raise ConfigurationError("MAPE of empty series is undefined")
    if ref.shape != cand.shape:
        raise ConfigurationError(
            f"series length mismatch: {ref.shape} vs {cand.shape}"
        )
    if np.any(ref == 0.0):
        raise ConfigurationError("reference series contains zeros; MAPE undefined")
    return float(np.mean(np.abs((cand - ref) / ref)))


def normalized(values: Sequence[float], baseline: float) -> np.ndarray:
    """Normalize ``values`` by a scalar ``baseline`` (e.g. TDP, uncapped p50).

    Raises:
        ConfigurationError: If ``baseline`` is not strictly positive.
    """
    if baseline <= 0.0:
        raise ConfigurationError(f"baseline must be positive, got {baseline}")
    return np.asarray(list(values), dtype=float) / baseline


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency population.

    Attributes:
        count: Number of observations.
        p50: Median latency in seconds.
        p99: 99th percentile latency in seconds.
        maximum: Maximum observed latency in seconds.
        mean: Arithmetic mean latency in seconds.
    """

    count: int
    p50: float
    p99: float
    maximum: float
    mean: float

    def normalized_to(self, baseline: "LatencySummary") -> Dict[str, float]:
        """Return p50/p99/max ratios against a baseline summary.

        This is the "Normalized pXX latency" metric on the y-axes of
        Figures 13, 15, and 17.
        """
        if baseline.p50 <= 0 or baseline.p99 <= 0 or baseline.maximum <= 0:
            raise ConfigurationError("baseline summary has non-positive percentiles")
        return {
            "p50": self.p50 / baseline.p50,
            "p99": self.p99 / baseline.p99,
            "max": self.maximum / baseline.maximum,
        }


def summarize_latencies(latencies: Iterable[float]) -> LatencySummary:
    """Compute the :class:`LatencySummary` for a latency population.

    Raises:
        ConfigurationError: If no latencies were observed.
    """
    data = np.asarray(list(latencies), dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot summarize an empty latency population")
    return LatencySummary(
        count=int(data.size),
        p50=float(np.percentile(data, 50)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
        mean=float(data.mean()),
    )
