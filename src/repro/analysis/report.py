"""Plain-text and Markdown report rendering for experiment results.

The benchmarks, examples, and any downstream notebook all need the same
thing: a fixed-width or Markdown table of reproduced numbers. This module
provides the shared renderer plus a convenience report builder for the
POLCA evaluation results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.metrics import SimulationResult
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


def _markdown_cell(text: str) -> str:
    """Make one cell safe inside a Markdown table row.

    ``|`` would end the cell, so it is escaped to ``\\|``; leading or
    trailing whitespace would be swallowed by Markdown's cell trimming
    (breaking alignment-significant values like padded run names), so
    edge spaces become ``&nbsp;``. Interior whitespace is untouched.
    """
    text = text.replace("\\", "\\\\").replace("|", "\\|")
    stripped = text.strip(" ")
    if not stripped:
        return "&nbsp;" * len(text)
    if stripped != text:
        leading = len(text) - len(text.lstrip(" "))
        trailing = len(text) - len(text.rstrip(" "))
        text = "&nbsp;" * leading + stripped + "&nbsp;" * trailing
    return text


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    markdown: bool = False,
) -> str:
    """Render a table as aligned plain text or GitHub Markdown.

    Markdown cells are escaped (:func:`_markdown_cell`): pipes become
    ``\\|`` and edge whitespace becomes ``&nbsp;`` so no cell value can
    break the table grammar.

    Raises:
        ConfigurationError: If a row's width mismatches the headers.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[str(h) for h in headers]] + [
        [str(cell) for cell in row] for row in rows
    ]
    if markdown:
        cells = [[_markdown_cell(cell) for cell in row] for row in cells]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    if markdown:
        lines = [
            "| " + " | ".join(
                cell.ljust(width) for cell, width in zip(cells[0], widths)
            ) + " |",
            "|" + "|".join("-" * (width + 2) for width in widths) + "|",
        ]
        for row in cells[1:]:
            lines.append("| " + " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ) + " |")
        return "\n".join(lines)
    lines = ["  ".join(
        cell.rjust(width) for cell, width in zip(cells[0], widths)
    )]
    lines.append("-" * len(lines[0]))
    for row in cells[1:]:
        lines.append("  ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)


def polca_result_rows(
    results: Dict[str, SimulationResult],
    baseline: SimulationResult,
) -> List[List[str]]:
    """Summary rows (one per named run) for a results table.

    Columns: run, peak utilization, LP p50/p99, HP p50/p99, brakes.
    """
    rows: List[List[str]] = []
    for name, result in results.items():
        lp = result.normalized_latencies(Priority.LOW, baseline)
        hp = result.normalized_latencies(Priority.HIGH, baseline)
        rows.append([
            name,
            f"{result.peak_utilization:.1%}",
            f"{lp['p50']:.3f}",
            f"{lp['p99']:.3f}",
            f"{hp['p50']:.3f}",
            f"{hp['p99']:.3f}",
            str(result.power_brake_events),
        ])
    return rows


def polca_report(
    results: Dict[str, SimulationResult],
    baseline: SimulationResult,
    markdown: bool = False,
) -> str:
    """A ready-to-print summary of a set of POLCA evaluation runs."""
    headers = ["run", "peak util", "LP p50", "LP p99", "HP p50", "HP p99",
               "brakes"]
    return render_table(
        headers, polca_result_rows(results, baseline), markdown=markdown
    )
