"""Shared statistics, time-series, and correlation utilities.

These helpers back both the characterization experiments (Section 4 of the
paper) and the POLCA evaluation (Section 6): percentile latencies, the MAPE
trace-fidelity criterion, power-swing extraction over sliding windows, and
Pearson correlation matrices for the GPU counter study (Figure 7).
"""

from repro.analysis.stats import (
    mean_absolute_percentage_error,
    normalized,
    percentile,
    summarize_latencies,
)
from repro.analysis.timeseries import TimeSeries, max_swing
from repro.analysis.correlation import pearson, correlation_matrix
from repro.analysis.report import polca_report, render_table

__all__ = [
    "TimeSeries",
    "correlation_matrix",
    "max_swing",
    "mean_absolute_percentage_error",
    "normalized",
    "pearson",
    "percentile",
    "polca_report",
    "render_table",
    "summarize_latencies",
]
