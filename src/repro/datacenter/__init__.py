"""Datacenter power-delivery hierarchy and provisioning math.

Figure 2 of the paper shows the hierarchy — utility feeds the datacenter,
PDUs power rows of racks, GPU servers sit in racks — and Table 2 gives the
row the POLCA evaluation uses: 40 DGX-A100 servers, 2 s power telemetry,
5 s power-brake latency, 40 s OOB control latency. This package models the
topology tree, provisioned budgets, and the oversubscription arithmetic
(how many servers fit under a fixed power budget).
"""

from repro.datacenter.topology import Datacenter, Rack, Row, RowParameters, DEFAULT_ROW
from repro.datacenter.derating import DeratingPlan, plan_derating
from repro.datacenter.provisioning import (
    OversubscriptionPlan,
    headroom_fraction,
    plan_oversubscription,
    servers_supportable,
)

__all__ = [
    "Datacenter",
    "DEFAULT_ROW",
    "DeratingPlan",
    "OversubscriptionPlan",
    "Rack",
    "Row",
    "RowParameters",
    "headroom_fraction",
    "plan_derating",
    "plan_oversubscription",
    "servers_supportable",
]
