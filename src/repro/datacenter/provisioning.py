"""Oversubscription arithmetic: headroom, added servers, derating.

The paper's central quantitative claims live here:

* an inference cluster peaking at 79% of provisioned power offers ~21%
  headroom, while a training cluster peaking at 97% offers ~3% (Table 4,
  Insight 9);
* derating DGX-A100 servers from their 6.5 kW rating to the 5.7 kW
  observed peak frees >=800 W per server (Section 5);
* deploying X% more servers under a fixed budget divides the per-server
  share by ``1 + X`` and raises utilization proportionally (Section 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def headroom_fraction(peak_utilization: float) -> float:
    """Power headroom given peak utilization of the provisioned budget.

    ``headroom_fraction(0.79) == 0.21`` — Table 4's inference cluster.

    Raises:
        ConfigurationError: If utilization is outside ``(0, 1]``.
    """
    if not 0.0 < peak_utilization <= 1.0:
        raise ConfigurationError(
            f"peak utilization {peak_utilization} outside (0, 1]"
        )
    return 1.0 - peak_utilization


def servers_supportable(
    provisioned_power_w: float, per_server_peak_w: float
) -> int:
    """Maximum servers that fit under a budget at a given per-server peak.

    Raises:
        ConfigurationError: On non-positive inputs.
    """
    if provisioned_power_w <= 0 or per_server_peak_w <= 0:
        raise ConfigurationError("powers must be positive")
    return int(math.floor(provisioned_power_w / per_server_peak_w))


@dataclass(frozen=True)
class OversubscriptionPlan:
    """Outcome of planning oversubscription for a row.

    Attributes:
        base_servers: Designed server count.
        added_servers: Extra servers deployed under the same budget.
        provisioned_power_w: The unchanged breaker budget.
        expected_peak_utilization: Predicted peak row utilization after
            adding servers, assuming peak power scales with server count.
    """

    base_servers: int
    added_servers: int
    provisioned_power_w: float
    expected_peak_utilization: float

    @property
    def total_servers(self) -> int:
        """Servers deployed after oversubscription."""
        return self.base_servers + self.added_servers

    @property
    def oversubscription_fraction(self) -> float:
        """Added servers over base servers (the x-axis of Figure 13)."""
        return self.added_servers / self.base_servers


def plan_oversubscription(
    base_servers: int,
    provisioned_power_w: float,
    observed_peak_utilization: float,
    added_fraction: float,
) -> OversubscriptionPlan:
    """Plan adding ``added_fraction`` more servers to a row.

    The expected peak utilization scales linearly with the server count —
    the statistical-multiplexing assumption that holds for inference
    clusters (uncorrelated prompt spikes; Insight 9) and *fails* for
    training clusters (coordinated iterations; Insight 2).

    Raises:
        ConfigurationError: On invalid inputs or if the plan would exceed
            the provisioned budget at expected peak.
    """
    if base_servers <= 0:
        raise ConfigurationError("base_servers must be positive")
    if not 0.0 < observed_peak_utilization <= 1.0:
        raise ConfigurationError("observed peak utilization outside (0, 1]")
    if added_fraction < 0:
        raise ConfigurationError("added_fraction cannot be negative")
    added = int(round(base_servers * added_fraction))
    expected = observed_peak_utilization * (base_servers + added) / base_servers
    return OversubscriptionPlan(
        base_servers=base_servers,
        added_servers=added,
        provisioned_power_w=provisioned_power_w,
        expected_peak_utilization=expected,
    )


def max_safe_added_fraction(
    observed_peak_utilization: float, safety_threshold: float = 1.0
) -> float:
    """Largest added-server fraction keeping expected peak under threshold.

    For the Table 4 inference cluster (79% peak), the uncontrolled bound is
    ``1.0 / 0.79 - 1 ≈ 26.6%`` — POLCA goes beyond it (30%) by capping the
    rare excursions instead of provisioning for them.
    """
    if not 0.0 < observed_peak_utilization <= 1.0:
        raise ConfigurationError("observed peak utilization outside (0, 1]")
    if not 0.0 < safety_threshold <= 1.0:
        raise ConfigurationError("safety threshold outside (0, 1]")
    return safety_threshold / observed_peak_utilization - 1.0
