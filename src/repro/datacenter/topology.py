"""The power-distribution hierarchy: datacenter -> row (PDU) -> rack -> server.

"A datacenter floor plan is generally built around the power distribution
hierarchy... power distribution units (PDUs) power rows of racks. GPU
servers are deployed within each rack, and several racks make a row"
(Section 2). POLCA makes its capping decisions at the PDU/row breaker
level (Section 6.3) because statistical multiplexing across a row is what
creates the oversubscription headroom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.errors import ConfigurationError
from repro.telemetry.row_manager import ROW_TELEMETRY_INTERVAL_S
from repro.telemetry.smbpbi import SMBPBI_ACTUATION_LATENCY_S
from repro.gpu.brake import DEFAULT_BRAKE_LATENCY_S


@dataclass(frozen=True)
class RowParameters:
    """Row-level simulation parameters (the paper's Table 2).

    Attributes:
        n_servers: Servers in the row (40 in the production row studied).
        server_type: Server model name.
        telemetry_interval_s: Row power telemetry period.
        brake_latency_s: Power-brake actuation latency.
        oob_latency_s: OOB frequency/power capping latency.
        provisioned_power_per_server_w: Power budgeted per server slot.
            Defaults to the DGX-A100 rating of 6.5 kW.
    """

    n_servers: int = 40
    server_type: str = "DGX-A100"
    telemetry_interval_s: float = ROW_TELEMETRY_INTERVAL_S
    brake_latency_s: float = DEFAULT_BRAKE_LATENCY_S
    oob_latency_s: float = SMBPBI_ACTUATION_LATENCY_S
    provisioned_power_per_server_w: float = 6500.0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("a row needs at least one server")
        if self.provisioned_power_per_server_w <= 0:
            raise ConfigurationError("provisioned power must be positive")

    @property
    def provisioned_power_w(self) -> float:
        """Total power budget of the row's PDU breaker."""
        return self.n_servers * self.provisioned_power_per_server_w


#: Table 2's row, verbatim: 40 DGX-A100 servers, 2 s telemetry, 5 s brake,
#: 40 s OOB control.
DEFAULT_ROW = RowParameters()


@dataclass
class Rack:
    """A rack holding server identifiers.

    Attributes:
        name: Rack identifier.
        server_ids: Servers mounted in this rack.
    """

    name: str
    server_ids: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.server_ids)


@dataclass
class Row:
    """A row of racks fed by one PDU — POLCA's capping scope.

    Attributes:
        name: Row identifier.
        parameters: The row's physical and control parameters.
        racks: Racks in the row.
    """

    name: str
    parameters: RowParameters
    racks: List[Rack] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        name: str,
        parameters: RowParameters = DEFAULT_ROW,
        servers_per_rack: int = 4,
    ) -> "Row":
        """Construct a row with evenly packed racks and generated ids.

        Server ids take the form ``"<row>/r<rack>/s<index>"``.
        """
        if servers_per_rack <= 0:
            raise ConfigurationError("servers_per_rack must be positive")
        racks: List[Rack] = []
        for index in range(parameters.n_servers):
            rack_index = index // servers_per_rack
            if rack_index == len(racks):
                racks.append(Rack(name=f"{name}/r{rack_index}"))
            racks[rack_index].server_ids.append(
                f"{name}/r{rack_index}/s{index}"
            )
        return cls(name=name, parameters=parameters, racks=racks)

    @property
    def server_ids(self) -> List[str]:
        """All server identifiers in rack order."""
        return [sid for rack in self.racks for sid in rack.server_ids]

    @property
    def n_servers(self) -> int:
        """Number of servers currently placed in the row."""
        return sum(len(rack) for rack in self.racks)

    @property
    def provisioned_power_w(self) -> float:
        """The PDU breaker budget (based on the *designed* server count,
        not the oversubscribed count — that is the whole point)."""
        return self.parameters.provisioned_power_w

    def add_servers(self, count: int, servers_per_rack: int = 4) -> List[str]:
        """Physically deploy extra servers (oversubscription!).

        The breaker budget does not change; the new servers must share the
        existing provisioned power. Returns the new server ids.
        """
        if count <= 0:
            raise ConfigurationError("must add at least one server")
        new_ids: List[str] = []
        start = self.n_servers
        for offset in range(count):
            index = start + offset
            rack_index = index // servers_per_rack
            while rack_index >= len(self.racks):
                self.racks.append(Rack(name=f"{self.name}/r{len(self.racks)}"))
            sid = f"{self.name}/r{rack_index}/s{index}"
            self.racks[rack_index].server_ids.append(sid)
            new_ids.append(sid)
        return new_ids


@dataclass
class Datacenter:
    """A datacenter as a collection of rows.

    Attributes:
        name: Datacenter identifier.
        rows: The rows on the floor.
    """

    name: str
    rows: List[Row] = field(default_factory=list)

    def iter_servers(self) -> Iterator[str]:
        """Yield every server id across all rows."""
        for row in self.rows:
            yield from row.server_ids

    @property
    def provisioned_power_w(self) -> float:
        """Total provisioned power across rows."""
        return sum(row.provisioned_power_w for row in self.rows)
