"""Server derating planner (the paper's Section 5 proposal).

"The rated power for the DGX-A100 machine is 6500W. Yet, across all our
workloads, the peak power on our machine never exceeded 5700W. Thus, we
could derate the power provisioned per server by up to 800W... Reducing
power provisioned per server enables providers to deploy additional
servers under the same infrastructure... To ensure power safety when
derating servers, it is important to deploy it with an effective power
capping mechanism."

Given a server's rated and observed-peak power and a safety margin, the
planner computes the derated per-server budget and how many extra servers
fit in an existing row — the no-new-datacenter capacity win that derating
alone (before any POLCA-style statistical oversubscription) provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.server.dgx import DgxServer


@dataclass(frozen=True)
class DeratingPlan:
    """Outcome of derating a row's servers.

    Attributes:
        rated_power_w: The nameplate per-server rating.
        observed_peak_w: Measured worst-case per-server draw.
        safety_margin_w: Extra watts kept above the observed peak.
        derated_power_w: The new per-server budget.
        base_servers: Servers provisioned at the rated power.
        derated_servers: Servers that fit at the derated budget.
    """

    rated_power_w: float
    observed_peak_w: float
    safety_margin_w: float
    derated_power_w: float
    base_servers: int
    derated_servers: int

    @property
    def headroom_per_server_w(self) -> float:
        """Watts reclaimed per server slot."""
        return self.rated_power_w - self.derated_power_w

    @property
    def added_servers(self) -> int:
        """Extra servers gained without new power infrastructure."""
        return self.derated_servers - self.base_servers

    @property
    def added_fraction(self) -> float:
        """Capacity gain as a fraction of the base deployment."""
        return self.added_servers / self.base_servers


def plan_derating(
    server: DgxServer = None,
    base_servers: int = 40,
    safety_margin_w: float = 100.0,
    observed_peak_w: float = None,
) -> DeratingPlan:
    """Plan derating a row of DGX servers.

    Args:
        server: The server model; defaults to a DGX-A100.
        base_servers: Servers provisioned at the nameplate rating.
        safety_margin_w: Buffer above the observed peak (deployed together
            with power capping as the backstop, per the paper).
        observed_peak_w: Measured peak; defaults to the model's worst case.

    Raises:
        ConfigurationError: On invalid inputs or if the derated budget
            would not cover the observed peak plus margin.
    """
    if server is None:
        server = DgxServer()
    if base_servers <= 0:
        raise ConfigurationError("base_servers must be positive")
    if safety_margin_w < 0:
        raise ConfigurationError("safety margin cannot be negative")
    peak = observed_peak_w if observed_peak_w is not None \
        else server.peak_power_w
    derated = peak + safety_margin_w
    if derated > server.rated_power_w:
        raise ConfigurationError(
            f"observed peak {peak:.0f} W + margin exceeds the "
            f"{server.rated_power_w:.0f} W rating; nothing to derate"
        )
    row_budget = base_servers * server.rated_power_w
    derated_servers = int(math.floor(row_budget / derated))
    return DeratingPlan(
        rated_power_w=server.rated_power_w,
        observed_peak_w=peak,
        safety_margin_w=safety_margin_w,
        derated_power_w=derated,
        base_servers=base_servers,
        derated_servers=derated_servers,
    )
