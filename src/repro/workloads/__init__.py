"""Inference workloads: Table 6 mix, diurnal arrivals, synthetic traces.

POLCA's evaluation (Section 6.4) drives a simulated BLOOM-176B inference
cluster with a synthetic request trace generated to replicate a six-week
production power trace (MAPE within 3%). This package provides the
workload definitions (Table 6: Summarize/Search/Chat with priorities and
SLOs), the diurnal nonhomogeneous-Poisson arrival process, request
sampling, and the trace generator with its MAPE validation.
"""

from repro.workloads.spec import (
    CHAT,
    Priority,
    SEARCH,
    SUMMARIZE,
    SloTargets,
    TABLE6_MIX,
    WorkloadSpec,
)
from repro.workloads.arrivals import DiurnalRateProfile, generate_arrivals
from repro.workloads.replay import (
    BurstWindow,
    CsvReplaySpec,
    FlashCrowdSpec,
    SessionProfile,
    TraceSource,
)
from repro.workloads.requests import RequestSampler, SampledRequest
from repro.workloads.tracegen import (
    ProductionTraceModel,
    SyntheticTrace,
    SyntheticTraceGenerator,
)

__all__ = [
    "BurstWindow",
    "CHAT",
    "CsvReplaySpec",
    "DiurnalRateProfile",
    "FlashCrowdSpec",
    "Priority",
    "ProductionTraceModel",
    "RequestSampler",
    "SEARCH",
    "SUMMARIZE",
    "SampledRequest",
    "SessionProfile",
    "SloTargets",
    "SyntheticTrace",
    "SyntheticTraceGenerator",
    "TABLE6_MIX",
    "TraceSource",
    "WorkloadSpec",
    "generate_arrivals",
]
