"""Multi-turn conversation sessions with shared-prefix token reuse.

The Azure traces (and the splitwise/production characterizations behind
them) show that chat traffic is *sessions*, not independent requests:
each turn re-submits the whole conversation so far plus a new user
message, and serving stacks exploit the shared prefix with KV-cache
reuse. This generator reproduces that structure synthetically:

* sessions start uniformly over the simulation window and hold a
  geometric number of turns;
* each turn's *logical* context is ``system prompt + all prior turns``,
  but its *effective* prompt charges only the new user tokens plus the
  un-reused fraction of the shared prefix (``1 - prefix_reuse``);
* conversations form graphs, not chains: with ``branch_probability`` a
  turn forks (the user regenerates a response or explores a side
  thread), and both branches continue from the shared prefix.

Everything is driven by one seeded PCG64 generator with a fixed draw
order, so a profile's request stream is bit-identical across runs and
platforms, which keeps replayed-trace digests honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.replay.classify import classify_tokens, stable_priority
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import TABLE6_MIX, WorkloadSpec


@dataclass(frozen=True)
class SessionProfile:
    """Parameters of the synthetic session workload (digestable).

    Attributes:
        n_sessions: Conversations started over the window.
        mean_turns: Mean turns per conversation (geometric, >= 1).
        max_turns: Hard cap on turns per conversation (branches
            included), bounding context growth.
        think_time_mean_s: Mean user think time between turns
            (exponential).
        system_prompt_tokens: Shared system prompt opening every
            conversation.
        user_turn_tokens: Inclusive (min, max) new user tokens per turn.
        output_tokens: Inclusive (min, max) generated tokens per turn.
        prefix_reuse: Fraction of the shared prefix served from cache
            (0 = every turn re-processes its whole history).
        branch_probability: Chance a turn forks the conversation graph.
        seed: RNG seed.
    """

    n_sessions: int = 200
    mean_turns: float = 4.0
    max_turns: int = 12
    think_time_mean_s: float = 120.0
    system_prompt_tokens: int = 512
    user_turn_tokens: Tuple[int, int] = (64, 512)
    output_tokens: Tuple[int, int] = (128, 1024)
    prefix_reuse: float = 0.9
    branch_probability: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ConfigurationError("n_sessions must be positive")
        if self.mean_turns < 1.0:
            raise ConfigurationError("mean_turns must be >= 1")
        if self.max_turns < 1:
            raise ConfigurationError("max_turns must be >= 1")
        if self.think_time_mean_s <= 0:
            raise ConfigurationError("think_time_mean_s must be positive")
        if self.system_prompt_tokens < 0:
            raise ConfigurationError("system_prompt_tokens must be >= 0")
        for label, (lo, hi) in (
            ("user_turn_tokens", self.user_turn_tokens),
            ("output_tokens", self.output_tokens),
        ):
            if not 0 < lo <= hi:
                raise ConfigurationError(f"invalid {label} ({lo}, {hi})")
        if not 0.0 <= self.prefix_reuse <= 1.0:
            raise ConfigurationError("prefix_reuse outside [0, 1]")
        if not 0.0 <= self.branch_probability < 1.0:
            raise ConfigurationError("branch_probability outside [0, 1)")


def generate_sessions(
    profile: SessionProfile,
    duration_s: float,
    mix: Sequence[WorkloadSpec] = TABLE6_MIX,
) -> List[SampledRequest]:
    """The session workload's request stream over ``[0, duration_s)``.

    Requests are classified against ``mix`` by their effective token
    shape (long late-conversation turns drift toward the summarize-like
    boxes, early turns look like chat), and sorted by arrival.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    rng = np.random.default_rng(profile.seed)
    lo_u, hi_u = profile.user_turn_tokens
    lo_o, hi_o = profile.output_tokens
    out: List[SampledRequest] = []
    for session in range(profile.n_sessions):
        start = float(rng.uniform(0.0, duration_s))
        turns = min(
            profile.max_turns,
            int(rng.geometric(min(1.0, 1.0 / profile.mean_turns))),
        )
        # Conversation graph frontier: (arrival time, accumulated
        # logical context). FIFO order keeps branches interleaved the
        # way a real regenerating user would interleave them.
        frontier = [(start, profile.system_prompt_tokens)]
        emitted = 0
        while frontier and emitted < turns:
            when, prefix = frontier.pop(0)
            user = int(rng.integers(lo_u, hi_u + 1))
            output = int(rng.integers(lo_o, hi_o + 1))
            think = float(rng.exponential(profile.think_time_mean_s))
            fork = bool(rng.random() < profile.branch_probability)
            fork_think = float(rng.exponential(profile.think_time_mean_s))
            emitted += 1
            effective = user + int(
                math.ceil((1.0 - profile.prefix_reuse) * prefix)
            )
            if when < duration_s:
                workload = classify_tokens(effective, output, mix)
                out.append(SampledRequest(
                    arrival_time=when,
                    workload=workload,
                    priority=stable_priority(
                        workload, emitted, effective, output,
                        salt=profile.seed * 1_000_003 + session,
                    ),
                    input_tokens=max(1, effective),
                    output_tokens=output,
                ))
            grown = prefix + user + output
            frontier.append((when + think, grown))
            if fork:
                frontier.append((when + fork_think, grown))
    out.sort(key=lambda r: r.arrival_time)
    return out
