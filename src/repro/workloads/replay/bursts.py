"""Flash-crowd burst profiles layered on any base request stream.

A flash crowd is the adversarial case for power oversubscription: the
diurnal model the thresholds were tuned on suddenly carries a multiple
of its ambient load (a product launch, a viral prompt). This module
injects that shape into *any* base trace — synthetic, replayed CSV, or
session traffic — by estimating the base arrival rate inside each burst
window and adding a nonhomogeneous-Poisson stream of extra requests
whose token shapes are resampled from the ambient traffic (a crowd
looks like the existing users, there are just more of them).

The overlay is deterministic per spec seed (one PCG64 stream, thinning
with a fixed draw order), so burst-augmented traces digest and replay
bit-identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.requests import SampledRequest


@dataclass(frozen=True)
class BurstWindow:
    """One flash-crowd episode.

    Attributes:
        start_s: Window start, seconds from trace start.
        duration_s: Window length.
        magnitude: Peak load multiplier (2.0 = twice the ambient rate
            at the plateau; must exceed 1).
        ramp_fraction: Fraction of the window spent ramping up and
            (again) ramping down, linearly — the trapezoid's sides.
    """

    start_s: float
    duration_s: float
    magnitude: float = 3.0
    ramp_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("start_s must be >= 0")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.magnitude <= 1.0:
            raise ConfigurationError(
                f"magnitude must exceed 1, got {self.magnitude}"
            )
        if not 0.0 <= self.ramp_fraction <= 0.5:
            raise ConfigurationError("ramp_fraction outside [0, 0.5]")

    def shape(self, t: float) -> float:
        """The trapezoid envelope in [0, 1] at absolute time ``t``."""
        offset = t - self.start_s
        if offset < 0 or offset > self.duration_s:
            return 0.0
        ramp = self.ramp_fraction * self.duration_s
        if ramp > 0 and offset < ramp:
            return offset / ramp
        if ramp > 0 and offset > self.duration_s - ramp:
            return (self.duration_s - offset) / ramp
        return 1.0


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A full burst profile: episodes plus the overlay seed.

    Attributes:
        windows: The burst episodes (any overlap is additive).
        seed: Seed for the extra-arrival sampling.
    """

    windows: Tuple[BurstWindow, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.windows:
            raise ConfigurationError(
                "a flash-crowd spec needs at least one burst window"
            )


def apply_flash_crowd(
    base: Sequence[SampledRequest],
    spec: FlashCrowdSpec,
    duration_s: float,
) -> List[SampledRequest]:
    """The base trace plus the spec's extra flash-crowd arrivals.

    The ambient rate inside each window is measured from the base trace
    (falling back to the whole-trace mean for quiet windows); the extra
    stream adds ``(magnitude - 1) x ambient`` at the plateau. Token
    shapes, workloads, and priorities of extra requests are resampled
    uniformly from the base requests inside the window (or the whole
    trace when the window is empty). An empty base trace is returned
    unchanged — there is no ambient traffic to amplify.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    merged = list(base)
    if not merged:
        return merged
    rng = np.random.default_rng(spec.seed)
    overall_rate = len(merged) / duration_s
    for window in spec.windows:
        lo = window.start_s
        hi = min(window.start_s + window.duration_s, duration_s)
        if hi <= lo:
            continue
        pool = [r for r in merged if lo <= r.arrival_time < hi]
        ambient = len(pool) / (hi - lo) if pool else overall_rate
        if not pool:
            pool = merged
        peak = (window.magnitude - 1.0) * ambient
        if peak <= 0:
            continue
        # Thinning against the constant majorant `peak`.
        t = lo
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= hi:
                break
            accept = float(rng.random())
            template = pool[int(rng.integers(0, len(pool)))]
            if accept < window.shape(t):
                merged.append(SampledRequest(
                    arrival_time=t,
                    workload=template.workload,
                    priority=template.priority,
                    input_tokens=template.input_tokens,
                    output_tokens=template.output_tokens,
                ))
    merged.sort(key=lambda r: r.arrival_time)
    return merged
