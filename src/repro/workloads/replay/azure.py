"""Azure Public Dataset LLM inference trace ingestion.

The Azure LLM inference traces (``AzurePublicDataset``, Patel et al.'s
companion release) ship as CSV files with the header::

    TIMESTAMP,ContextTokens,GeneratedTokens

and rows like ``2023-11-16 18:15:00.00,100,50``: a wall-clock arrival
timestamp, the prompt length in tokens, and the generated length in
tokens. This module parses that format — streaming, with strict and
lenient error handling — into :class:`AzureRecord` values whose arrival
times are *relative seconds from the first record*, which is what the
simulator replays.

Timestamps are compared as naive calendar time (ordinal day + seconds
into the day); no timezone conversion ever happens, so parsing is
bit-identical across machines regardless of ``TZ``. Bare numeric
timestamps (already-relative seconds) are accepted too, which keeps
round-trips through :func:`write_azure_csv` exact.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass
from datetime import datetime, timedelta
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import TraceError
from repro.workloads.requests import SampledRequest

#: The dataset's exact header columns, in order.
AZURE_COLUMNS = ("TIMESTAMP", "ContextTokens", "GeneratedTokens")

#: Accepted wall-clock timestamp layouts (fractional seconds optional).
_TIMESTAMP_FORMATS = ("%Y-%m-%d %H:%M:%S.%f", "%Y-%m-%d %H:%M:%S")


@dataclass(frozen=True)
class AzureRecord:
    """One parsed trace row.

    Attributes:
        arrival_s: Arrival time in seconds since the trace origin (the
            first parsed record arrives at 0.0).
        context_tokens: Prompt length in tokens (``ContextTokens``).
        generated_tokens: Output length in tokens (``GeneratedTokens``).
    """

    arrival_s: float
    context_tokens: int
    generated_tokens: int


def _timestamp_seconds(text: str) -> float:
    """A timestamp as absolute seconds on a timezone-free axis.

    Wall-clock timestamps map to ``ordinal_day * 86400 + seconds into
    the day``; bare numerics pass through. Only *differences* of these
    values are ever used, so the axis origin is irrelevant.
    """
    stripped = text.strip()
    for layout in _TIMESTAMP_FORMATS:
        try:
            stamp = datetime.strptime(stripped, layout)
        except ValueError:
            continue
        day_s = (
            stamp.hour * 3600.0 + stamp.minute * 60.0 + stamp.second
            + stamp.microsecond / 1e6
        )
        return stamp.toordinal() * 86400.0 + day_s
    try:
        return float(stripped)
    except ValueError:
        raise TraceError(f"unparseable TIMESTAMP {text!r}") from None


def _parse_row(line: str, line_no: int) -> "tuple[float, int, int]":
    parts = line.split(",")
    if len(parts) != len(AZURE_COLUMNS):
        raise TraceError(
            f"line {line_no}: expected {len(AZURE_COLUMNS)} columns, "
            f"got {len(parts)}"
        )
    try:
        stamp = _timestamp_seconds(parts[0])
    except TraceError as exc:
        raise TraceError(f"line {line_no}: {exc}") from None
    try:
        context = int(parts[1])
        generated = int(parts[2])
    except ValueError:
        raise TraceError(
            f"line {line_no}: non-integer token count in {line!r}"
        ) from None
    if context < 0 or generated < 0:
        raise TraceError(f"line {line_no}: negative token count in {line!r}")
    return stamp, context, generated


class AzureTraceReader:
    """Streams :class:`AzureRecord` values out of an Azure-format CSV.

    One pass over the input; file paths are re-opened per iteration so
    the reader can be consumed more than once. In strict mode (the
    default) any malformed row — wrong column count, unparseable
    timestamp, non-integer or negative token count, or a timestamp that
    goes backwards — raises :class:`~repro.errors.TraceError` naming the
    1-based line number. In lenient mode malformed rows are skipped and
    counted in :attr:`skipped`.

    Attributes:
        parsed: Rows successfully parsed by the most recent iteration.
        skipped: Rows skipped by the most recent (lenient) iteration.
    """

    def __init__(
        self,
        source: Union[str, Path, Iterable[str]],
        strict: bool = True,
    ) -> None:
        self._source = source
        self.strict = strict
        self.parsed = 0
        self.skipped = 0

    def _lines(self) -> Iterator[str]:
        if isinstance(self._source, (str, Path)):
            with io.open(self._source, "r", encoding="utf-8") as handle:
                yield from handle
        else:
            yield from self._source

    def __iter__(self) -> Iterator[AzureRecord]:
        self.parsed = 0
        self.skipped = 0
        origin: Optional[float] = None
        last: Optional[float] = None
        for line_no, raw in enumerate(self._lines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line_no == 1 and line.split(",")[0].strip() == AZURE_COLUMNS[0]:
                if self.strict and line != ",".join(AZURE_COLUMNS):
                    raise TraceError(
                        f"line 1: header {line!r} does not match "
                        f"{','.join(AZURE_COLUMNS)!r}"
                    )
                continue
            try:
                stamp, context, generated = _parse_row(line, line_no)
            except TraceError:
                if self.strict:
                    raise
                self.skipped += 1
                continue
            if last is not None and stamp < last:
                if self.strict:
                    raise TraceError(
                        f"line {line_no}: timestamp goes backwards "
                        f"({stamp!r} after {last!r}); the dataset is "
                        "sorted by arrival"
                    )
                self.skipped += 1
                continue
            if origin is None:
                origin = stamp
            last = stamp
            self.parsed += 1
            yield AzureRecord(
                arrival_s=stamp - origin,
                context_tokens=context,
                generated_tokens=generated,
            )


def slice_window(
    records: Iterable[AzureRecord],
    start_s: float = 0.0,
    end_s: Optional[float] = None,
) -> List[AzureRecord]:
    """Records arriving in ``[start_s, end_s)``, re-based to the window.

    A record arriving at ``start_s`` comes out arriving at 0.0, so a
    sliced trace replays against a simulation window starting at zero.
    Works on any iterable (including a live reader) in one pass.
    """
    if start_s < 0:
        raise TraceError(f"window start must be >= 0, got {start_s}")
    if end_s is not None and end_s <= start_s:
        raise TraceError(
            f"window [{start_s}, {end_s}) is empty or inverted"
        )
    out: List[AzureRecord] = []
    for record in records:
        if record.arrival_s < start_s:
            continue
        if end_s is not None and record.arrival_s >= end_s:
            break  # input is sorted; nothing later can be in-window
        out.append(AzureRecord(
            arrival_s=record.arrival_s - start_s,
            context_tokens=record.context_tokens,
            generated_tokens=record.generated_tokens,
        ))
    return out


def read_azure_trace(
    source: Union[str, Path, Iterable[str]],
    strict: bool = True,
    window_start_s: float = 0.0,
    window_end_s: Optional[float] = None,
) -> List[AzureRecord]:
    """Parse (and optionally window-slice) a whole trace into memory."""
    reader = AzureTraceReader(source, strict=strict)
    return slice_window(reader, window_start_s, window_end_s)


def file_sha256(path: Union[str, Path]) -> str:
    """The file's sha256 hex digest (the replay content-digest input)."""
    digest = hashlib.sha256()
    with io.open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


#: Origin stamped on exported traces (matches the dataset's first day).
EXPORT_ORIGIN = "2023-11-16 00:00:00"


def write_azure_csv(
    path: Union[str, Path],
    requests: Sequence[SampledRequest],
    origin: str = EXPORT_ORIGIN,
) -> None:
    """Export a request stream in the Azure CSV format.

    Arrival times become wall-clock timestamps offset from ``origin``
    with centisecond precision (the dataset's own resolution), so a
    write/read round-trip reproduces arrivals to within 10 ms.
    """
    origin_dt = datetime.strptime(origin, "%Y-%m-%d %H:%M:%S")
    with io.open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(",".join(AZURE_COLUMNS) + "\n")
        for request in requests:
            stamp = origin_dt + timedelta(
                seconds=round(request.arrival_time, 2)
            )
            text = stamp.strftime("%Y-%m-%d %H:%M:%S.%f")[:-4]
            handle.write(
                f"{text},{request.input_tokens},{request.output_tokens}\n"
            )
