"""Production trace replay: Azure CSV ingestion, sessions, flash crowds.

This package turns external traces into simulator request streams:

* :mod:`~repro.workloads.replay.azure` parses the Azure Public Dataset
  LLM inference CSV format (``TIMESTAMP,ContextTokens,GeneratedTokens``)
  with strict/lenient modes, streaming iteration, window slicing, and a
  round-trip exporter;
* :mod:`~repro.workloads.replay.classify` maps replayed token shapes
  onto the Table 6 workloads and draws priorities deterministically
  (exact-rational distances + sha256 uniforms — platform-stable);
* :mod:`~repro.workloads.replay.sessions` generates multi-turn
  conversation traffic with shared-prefix token reuse;
* :mod:`~repro.workloads.replay.bursts` layers flash-crowd episodes on
  any base trace;
* :mod:`~repro.workloads.replay.source` wraps it all in digestable
  :class:`TraceSource` descriptors the execution engine caches and
  content-addresses (file sha256 + slice, never the path).

The package never imports :mod:`repro.exec`; the engine imports *it*
and owns the dispatch between these sources and the synthetic pipeline.
"""

from repro.workloads.replay.azure import (
    AZURE_COLUMNS,
    AzureRecord,
    AzureTraceReader,
    file_sha256,
    read_azure_trace,
    slice_window,
    write_azure_csv,
)
from repro.workloads.replay.bursts import (
    BurstWindow,
    FlashCrowdSpec,
    apply_flash_crowd,
)
from repro.workloads.replay.classify import (
    classify_tokens,
    requests_from_records,
    stable_priority,
    stable_uniform,
)
from repro.workloads.replay.sessions import SessionProfile, generate_sessions
from repro.workloads.replay.source import CsvReplaySpec, TraceSource

__all__ = [
    "AZURE_COLUMNS",
    "AzureRecord",
    "AzureTraceReader",
    "BurstWindow",
    "CsvReplaySpec",
    "FlashCrowdSpec",
    "SessionProfile",
    "TraceSource",
    "apply_flash_crowd",
    "classify_tokens",
    "file_sha256",
    "generate_sessions",
    "read_azure_trace",
    "requests_from_records",
    "slice_window",
    "stable_priority",
    "stable_uniform",
    "write_azure_csv",
]
