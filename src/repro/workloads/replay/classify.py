"""Deterministic workload/priority classification for replayed records.

Replayed traces carry only token counts, but the simulator's SLO
accounting (Table 6) needs a workload label and a priority tier per
request. Classification maps each ``(context, generated)`` shape onto
the nearest workload box; priority is then drawn from the workload's
``high_priority_probability`` using a sha256-keyed uniform draw.

Both steps are deliberately platform-independent:

* box distances are exact rationals (:class:`fractions.Fraction`), so
  the argmin can never flip on a 1-ulp libm difference between
  machines;
* the priority draw hashes ``(salt, index, tokens)`` with sha256 and
  compares the resulting 64-bit uniform against the probability — no
  RNG state, no float accumulation, same answer everywhere.

That is what makes replayed-trace digests honest: the same CSV bytes
produce the same request stream on every platform, serial or parallel.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple

from repro.errors import TraceError
from repro.workloads.replay.azure import AzureRecord
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority, TABLE6_MIX, WorkloadSpec


def _box_penalty(value: int, box: Tuple[int, int]) -> Fraction:
    """Relative distance of ``value`` to the inclusive ``box`` (exact).

    Zero inside the box; outside, the shortfall or excess normalized by
    the violated edge, so a 2x overshoot of a wide range and a 2x
    overshoot of a narrow range weigh the same.
    """
    lo, hi = box
    if value < lo:
        return Fraction(lo - value, lo)
    if value > hi:
        return Fraction(value - hi, hi)
    return Fraction(0)


def classify_tokens(
    context_tokens: int,
    generated_tokens: int,
    mix: Sequence[WorkloadSpec] = TABLE6_MIX,
) -> WorkloadSpec:
    """The mix workload whose prompt/output box best fits the shape.

    Ties break toward the earliest workload in ``mix`` (stable order).
    """
    if not mix:
        raise TraceError("cannot classify against an empty workload mix")
    best = mix[0]
    best_penalty = None
    for workload in mix:
        penalty = (
            _box_penalty(max(1, context_tokens), workload.prompt_range)
            + _box_penalty(max(1, generated_tokens), workload.output_range)
        )
        if best_penalty is None or penalty < best_penalty:
            best = workload
            best_penalty = penalty
    return best


def stable_uniform(*parts: object) -> float:
    """A uniform in ``[0, 1)`` keyed only by the printed ``parts``.

    sha256 over the ``:``-joined ``repr`` of the parts, top 64 bits
    scaled down — reproducible across platforms, processes, and runs.
    """
    text = ":".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def stable_priority(
    workload: WorkloadSpec, index: int, context_tokens: int,
    generated_tokens: int, salt: int = 0,
) -> Priority:
    """The request's priority tier, drawn deterministically.

    Respects the workload's ``high_priority_probability`` exactly in
    the 0/1 cases and in expectation otherwise.
    """
    p = workload.high_priority_probability
    if p <= 0.0:
        return Priority.LOW
    if p >= 1.0:
        return Priority.HIGH
    u = stable_uniform(
        "priority", salt, index, context_tokens, generated_tokens
    )
    return Priority.HIGH if u < p else Priority.LOW


def requests_from_records(
    records: Iterable[AzureRecord],
    mix: Sequence[WorkloadSpec] = TABLE6_MIX,
    salt: int = 0,
    time_scale: float = 1.0,
) -> List[SampledRequest]:
    """Classified simulator requests for a replayed record stream.

    Zero-token rows (the dataset has a few) clamp to one token — the
    simulator requires at least one token per phase. ``time_scale``
    stretches (>1) or compresses (<1) arrival times, for replaying a
    long trace into a shorter simulation window.
    """
    if time_scale <= 0:
        raise TraceError(f"time_scale must be positive, got {time_scale}")
    out: List[SampledRequest] = []
    for index, record in enumerate(records):
        workload = classify_tokens(
            record.context_tokens, record.generated_tokens, mix
        )
        out.append(SampledRequest(
            arrival_time=record.arrival_s * time_scale,
            workload=workload,
            priority=stable_priority(
                workload, index, record.context_tokens,
                record.generated_tokens, salt=salt,
            ),
            input_tokens=max(1, record.context_tokens),
            output_tokens=max(1, record.generated_tokens),
        ))
    return out
