"""Digestable trace-source descriptors for the execution engine.

A :class:`TraceSource` tells the engine where a run's request trace
comes from: a replayed Azure-format CSV, a synthetic session workload,
or the default synthetic pipeline — optionally with a flash-crowd burst
overlay on top. Sources are small frozen dataclasses so they ride
inside :class:`~repro.exec.traces.TraceKey` (hashable → process-wide
trace cache) and :class:`~repro.exec.runspec.RunSpec` (canonicalized →
content digest) unchanged.

CSV sources are content-addressed: the digest covers the file's sha256,
the window slice, the time scale, and the classification salt — but
*not* the path, so the same trace bytes produce the same digest on any
machine, and a silently swapped file is caught at materialization time
by re-hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from pathlib import Path

from repro.errors import ConfigurationError, TraceError
from repro.workloads.replay.azure import (
    AzureTraceReader,
    file_sha256,
    slice_window,
)
from repro.workloads.replay.bursts import FlashCrowdSpec
from repro.workloads.replay.classify import requests_from_records
from repro.workloads.replay.sessions import SessionProfile, generate_sessions
from repro.workloads.requests import SampledRequest


@dataclass(frozen=True)
class CsvReplaySpec:
    """A window of an Azure-format CSV trace, content-addressed.

    Attributes:
        path: Where the file lives *on this machine*. Excluded from the
            content digest (see module docstring).
        sha256: The file's expected content hash; verified every time
            the trace materializes.
        strict: Parse mode (strict raises on malformed rows; lenient
            skips them).
        window_start_s: Slice start, seconds from the trace origin.
        window_end_s: Slice end (exclusive); ``None`` replays to EOF.
        time_scale: Arrival-time multiplier (0.5 compresses a 2-hour
            window into 1 simulated hour).
        classify_salt: Salt for the deterministic priority draws.
    """

    path: str = field(metadata={"digest": False})
    sha256: str = ""
    strict: bool = True
    window_start_s: float = 0.0
    window_end_s: Optional[float] = None
    time_scale: float = 1.0
    classify_salt: int = 0

    def __post_init__(self) -> None:
        if not self.path:
            raise ConfigurationError("CsvReplaySpec needs a file path")
        if len(self.sha256) != 64:
            raise ConfigurationError(
                "CsvReplaySpec needs the file's sha256 (64 hex chars); "
                "build specs with CsvReplaySpec.from_file()"
            )
        if self.window_start_s < 0:
            raise ConfigurationError("window_start_s must be >= 0")
        if (
            self.window_end_s is not None
            and self.window_end_s <= self.window_start_s
        ):
            raise ConfigurationError("window must be non-empty")
        if self.time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")

    @classmethod
    def from_file(
        cls, path: Union[str, Path], **kwargs: object
    ) -> "CsvReplaySpec":
        """A spec for ``path``, hashing the file's current content."""
        return cls(path=str(path), sha256=file_sha256(path), **kwargs)

    def materialize(self, duration_s: float) -> List[SampledRequest]:
        """Parse, slice, scale, and classify the trace (hash-verified).

        Raises:
            TraceError: If the file's bytes no longer match ``sha256``
                (the digest would be lying about the run's input), or if
                strict parsing finds a malformed row.
        """
        actual = file_sha256(self.path)
        if actual != self.sha256:
            raise TraceError(
                f"trace file {self.path} hash mismatch: spec pins "
                f"{self.sha256[:12]}..., file is {actual[:12]}..."
            )
        reader = AzureTraceReader(self.path, strict=self.strict)
        records = slice_window(
            reader, self.window_start_s, self.window_end_s
        )
        requests = requests_from_records(
            records, salt=self.classify_salt, time_scale=self.time_scale
        )
        return [r for r in requests if r.arrival_time < duration_s]


@dataclass(frozen=True)
class TraceSource:
    """Where a run's request trace comes from.

    At most one *base* may be set (``csv`` or ``sessions``; neither
    means the default synthetic pipeline), and a ``burst`` overlay may
    be layered on any base. A source with nothing set is rejected —
    plain synthetic runs simply carry no source at all.

    Attributes:
        csv: Replay an Azure-format CSV trace.
        sessions: Generate the multi-turn session workload.
        burst: Flash-crowd overlay applied after the base materializes.
    """

    csv: Optional[CsvReplaySpec] = None
    sessions: Optional[SessionProfile] = None
    burst: Optional[FlashCrowdSpec] = None

    def __post_init__(self) -> None:
        if self.csv is not None and self.sessions is not None:
            raise ConfigurationError(
                "a TraceSource replays either a CSV or sessions, not both"
            )
        if self.csv is None and self.sessions is None and self.burst is None:
            raise ConfigurationError(
                "an empty TraceSource is meaningless; omit the source "
                "entirely for the synthetic pipeline"
            )

    @property
    def label(self) -> str:
        """Short display name for logs and experiment tables."""
        if self.csv is not None:
            base = f"csv:{self.csv.sha256[:8]}"
        elif self.sessions is not None:
            base = f"sessions:{self.sessions.seed}"
        else:
            base = "synthetic"
        if self.burst is not None:
            base += f"+burst x{len(self.burst.windows)}"
        return base

    def base_requests(
        self, duration_s: float
    ) -> Optional[List[SampledRequest]]:
        """The base trace, or ``None`` when the synthetic pipeline is
        the base (the caller owns that pipeline; this module must not
        import the execution engine)."""
        if self.csv is not None:
            return self.csv.materialize(duration_s)
        if self.sessions is not None:
            return generate_sessions(self.sessions, duration_s)
        return None
