"""Workload definitions and SLOs from Table 6.

Table 6 configures BLOOM-176B for three tasks:

=========  ===========  ===========  =====  ========
Workload   Prompt size  Output size  Ratio  Priority
=========  ===========  ===========  =====  ========
Summarize  2048-8192    256-512      25%    Low
Search     512-2048     1024-2048    25%    High
Chat       2048-4096    128-2048     50%    50:50
=========  ===========  ===========  =====  ========

with the SLO targets: high priority may lose <1% p50 / <5% p99 latency,
low priority <5% p50 / <50% p99, and zero power-brake events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


class Priority(enum.Enum):
    """Workload priority tier (Section 6.2: pricing tiers / SLO classes)."""

    LOW = "low"
    HIGH = "high"


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table 6 workload.

    Attributes:
        name: Workload name.
        prompt_range: Inclusive (min, max) prompt tokens.
        output_range: Inclusive (min, max) output tokens.
        share: Fraction of the request mix.
        high_priority_probability: Probability a request of this workload
            is high priority (1.0 for Search, 0.0 for Summarize, 0.5 for
            Chat's "50:50").
        model_name: Model serving the workload (BLOOM-176B throughout the
            POLCA evaluation — the worst case for capping, Section 6.4).
    """

    name: str
    prompt_range: Tuple[int, int]
    output_range: Tuple[int, int]
    share: float
    high_priority_probability: float
    model_name: str = "BLOOM-176B"

    def __post_init__(self) -> None:
        for label, (lo, hi) in (
            ("prompt_range", self.prompt_range),
            ("output_range", self.output_range),
        ):
            if not 0 < lo <= hi:
                raise ConfigurationError(f"{self.name}: invalid {label} ({lo}, {hi})")
        if not 0.0 < self.share <= 1.0:
            raise ConfigurationError(f"{self.name}: share outside (0, 1]")
        if not 0.0 <= self.high_priority_probability <= 1.0:
            raise ConfigurationError(
                f"{self.name}: high_priority_probability outside [0, 1]"
            )

    def mean_prompt_tokens(self) -> float:
        """Expected prompt length under uniform sampling."""
        lo, hi = self.prompt_range
        return (lo + hi) / 2.0

    def mean_output_tokens(self) -> float:
        """Expected output length under uniform sampling."""
        lo, hi = self.output_range
        return (lo + hi) / 2.0


#: Table 6's rows.
SUMMARIZE = WorkloadSpec(
    name="Summarize",
    prompt_range=(2048, 8192),
    output_range=(256, 512),
    share=0.25,
    high_priority_probability=0.0,
)

SEARCH = WorkloadSpec(
    name="Search",
    prompt_range=(512, 2048),
    output_range=(1024, 2048),
    share=0.25,
    high_priority_probability=1.0,
)

CHAT = WorkloadSpec(
    name="Chat",
    prompt_range=(2048, 4096),
    output_range=(128, 2048),
    share=0.50,
    high_priority_probability=0.5,
)

#: The full Table 6 mix; shares sum to 1 and priorities average to 50:50.
TABLE6_MIX: Tuple[WorkloadSpec, ...] = (SUMMARIZE, SEARCH, CHAT)


@dataclass(frozen=True)
class SloTargets:
    """Latency/brake SLOs, as maximum allowed normalized degradation.

    Attributes:
        p50_impact: Allowed fractional p50 latency increase.
        p99_impact: Allowed fractional p99 latency increase.
        max_power_brakes: Allowed power-brake events (0 in Table 6).
    """

    p50_impact: float
    p99_impact: float
    max_power_brakes: int = 0

    def __post_init__(self) -> None:
        if self.p50_impact < 0 or self.p99_impact < 0:
            raise ConfigurationError("SLO impacts cannot be negative")
        if self.max_power_brakes < 0:
            raise ConfigurationError("max_power_brakes cannot be negative")


#: Table 6's SLO columns.
SLO_TARGETS: Dict[Priority, SloTargets] = {
    Priority.HIGH: SloTargets(p50_impact=0.01, p99_impact=0.05),
    Priority.LOW: SloTargets(p50_impact=0.05, p99_impact=0.50),
}
