"""Synthetic request-trace generation against a production power trace.

Section 6.4, "Replicating production traces": the paper takes a six-week
power trace from the production inference cluster and generates a synthetic
request trace (arrival times plus input/output sizes) whose simulated power
matches the original within 3% MAPE. We have no access to the confidential
trace, so :class:`ProductionTraceModel` *stands in* for it: a diurnal
utilization signal calibrated to the aggregates the paper does publish
(Table 4: 79% peak utilization, diurnal shape). The substitution is sound
because every published result depends on the trace only through these
aggregate statistics.

:class:`SyntheticTraceGenerator` then performs the paper's actual step:
inverting a fluid power model of the cluster to recover the arrival-rate
profile that reproduces the target power, and validating the round trip
with the MAPE criterion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.stats import mean_absolute_percentage_error
from repro.analysis.timeseries import TimeSeries, sample_times
from repro.errors import ConfigurationError, TraceError
from repro.gpu.specs import A100_80GB
from repro.models.performance import RooflineLatencyModel
from repro.models.power_profile import PhasePowerProfile
from repro.models.registry import get_model
from repro.server.dgx import DgxServer
from repro.units import SECONDS_PER_DAY, SECONDS_PER_WEEK, weeks
from repro.workloads.requests import RequestSampler, SampledRequest
from repro.workloads.spec import TABLE6_MIX, WorkloadSpec

#: Per-server power budgeted in the production inference row. Derated well
#: below the 6.5 kW DGX rating (Section 5 advocates >=800 W derating);
#: calibrated so a busy cluster peaks at Table 4's 79% utilization.
INFERENCE_PROVISIONED_PER_SERVER_W = 5000.0

#: Trace duration used by the paper (June 21 to August 2, 2023).
TRACE_WEEKS = 6


def smooth_same(values: np.ndarray, window: int) -> np.ndarray:
    """Boxcar smoothing normalized by the *actual* kernel overlap.

    ``np.convolve(x, ones(w) / w, mode="same")`` zero-pads the signal,
    so the first and last ``w // 2`` outputs average real samples with
    implicit zeros and are dragged toward zero — smoothing a constant
    signal returns less than the constant at the edges, which biases
    trace boundaries and inflates MAPE at trace start/end. Dividing by
    the convolved all-ones mask instead averages each bin over exactly
    the samples the kernel really covers, so a constant stays constant
    everywhere (edges included) and interior bins are unchanged.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window == 1 or values.size == 0:
        return np.asarray(values, dtype=float).copy()
    # mode="full" then center-slice: numpy's mode="same" returns
    # max(len(values), window) outputs, so a window wider than the
    # signal would change the length. The slice below reproduces
    # mode="same" alignment for window <= len(values) and stays
    # length-preserving beyond it.
    kernel = np.ones(window)
    n = values.size
    lo = (window - 1) // 2
    summed = np.convolve(values, kernel, mode="full")[lo:lo + n]
    overlap = np.convolve(np.ones(n), kernel, mode="full")[lo:lo + n]
    return summed / overlap


@dataclass(frozen=True)
class FluidClusterModel:
    """Closed-form expected power of an inference cluster at slot load rho.

    Each server has ``concurrency`` continuous-batching slots; at slot
    utilization ``rho`` the per-server occupancy is Binomial(C, rho). A
    server's power depends on its occupancy (decode activity rises mildly
    with batch) and on whether any resident request is in its prompt phase
    (compute spike).

    Attributes:
        n_servers: Servers in the row.
        concurrency: Slots per server.
        idle_power_w: Per-server idle power.
        occupancy_power_w: Per-server mean power at occupancy k (index k,
            with prompt-phase time already averaged in).
        mean_service_s: Mean request service time.
    """

    n_servers: int
    concurrency: int
    idle_power_w: float
    occupancy_power_w: Tuple[float, ...]
    mean_service_s: float

    @classmethod
    def for_table6(
        cls,
        n_servers: int = 40,
        concurrency: int = 4,
        mix: Sequence[WorkloadSpec] = TABLE6_MIX,
    ) -> "FluidClusterModel":
        """Build the fluid model for a workload mix (Table 6 by default)
        on BLOOM-176B."""
        model = get_model("BLOOM-176B")
        latency = RooflineLatencyModel(model=model, gpu=A100_80GB)
        profile = PhasePowerProfile(model=model)
        server = DgxServer()
        total_time = 0.0
        prompt_time = 0.0
        prompt_activity = 0.0
        for workload in mix:
            # round(), not int(): a truncating cast floors non-integral
            # means (e.g. an odd-width range) and biases the fluid
            # model's service times low for custom mixes.
            prompt_tokens = round(workload.mean_prompt_tokens())
            output_tokens = round(workload.mean_output_tokens())
            phases = latency.request_latency(prompt_tokens, output_tokens)
            total_time += workload.share * phases.total_seconds
            prompt_time += workload.share * phases.prompt_seconds
            prompt_activity += workload.share * profile.prompt_activity(
                prompt_tokens
            )
        mean_service = total_time
        prompt_fraction = prompt_time / total_time
        prompt_power = server.server_power_uniform(0.0, prompt_activity)
        occupancy_power = [server.server_power_uniform(0.0, 0.0)]
        for k in range(1, concurrency + 1):
            token_power = server.server_power_uniform(
                0.0, profile.token_activity(k)
            )
            # Probability any of the k resident requests is in its prompt.
            p_prompt = 1.0 - (1.0 - prompt_fraction) ** k
            occupancy_power.append(
                p_prompt * prompt_power + (1.0 - p_prompt) * token_power
            )
        return cls(
            n_servers=n_servers,
            concurrency=concurrency,
            idle_power_w=occupancy_power[0],
            occupancy_power_w=tuple(occupancy_power),
            mean_service_s=mean_service,
        )

    def power_at_utilization(self, rho: float) -> float:
        """Expected cluster power at slot utilization ``rho``.

        Occupancy per server is Binomial(concurrency, rho); the expected
        per-server power is the occupancy-weighted mean.
        """
        if not 0.0 <= rho <= 1.0:
            raise ConfigurationError(f"utilization {rho} outside [0, 1]")
        c = self.concurrency
        expected = 0.0
        for k in range(c + 1):
            weight = math.comb(c, k) * (rho ** k) * ((1 - rho) ** (c - k))
            expected += weight * self.occupancy_power_w[k]
        return self.n_servers * expected

    def utilization_for_power(self, power_w: float) -> float:
        """Invert :meth:`power_at_utilization` by bisection, clipped to
        ``[0, 1]`` (the power curve is strictly increasing in rho)."""
        if power_w <= self.power_at_utilization(0.0):
            return 0.0
        if power_w >= self.power_at_utilization(1.0):
            return 1.0
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.power_at_utilization(mid) < power_w:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def arrival_rate_for_utilization(self, rho: float) -> float:
        """Cluster arrival rate sustaining slot utilization ``rho``
        (Little's law: ``lambda = rho * n * C / E[S]``)."""
        if not 0.0 <= rho <= 1.0:
            raise ConfigurationError(f"utilization {rho} outside [0, 1]")
        return rho * self.n_servers * self.concurrency / self.mean_service_s


@dataclass(frozen=True)
class ProductionTraceModel:
    """Stand-in for the confidential production power trace.

    Produces a row power-utilization time series with Table 4's published
    character: diurnal with weekly structure, peaking at ~79% of
    provisioned power, stable over seconds.

    Attributes:
        mean_utilization: Mean utilization level.
        daily_amplitude: Daily swing around the mean.
        weekly_amplitude: Weekly swing.
        noise_std: Slow residual noise.
        peak_hour: Hour of daily peak.
        seed: RNG seed.
    """

    mean_utilization: float = 0.545
    daily_amplitude: float = 0.125
    weekly_amplitude: float = 0.015
    noise_std: float = 0.005
    peak_hour: float = 15.0
    seed: int = 0

    def generate(
        self, duration_s: float = weeks(TRACE_WEEKS), interval_s: float = 300.0
    ) -> TimeSeries:
        """Generate the utilization trace (fraction of provisioned power).

        Raises:
            ConfigurationError: On a non-positive duration.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        # Integer-indexed grid: a float-step arange can emit a sample at
        # or past duration_s on adversarial (duration, interval) pairs.
        times = sample_times(0.0, duration_s, interval_s)
        daily = np.cos(
            2 * np.pi * (times / SECONDS_PER_DAY - self.peak_hour / 24.0)
        )
        weekly = np.cos(2 * np.pi * times / SECONDS_PER_WEEK)
        noise = rng.normal(0.0, self.noise_std, size=times.size)
        # Smooth the noise so consecutive samples stay correlated (the
        # production signal is stable at short horizons; Table 4).
        smooth_noise = smooth_same(noise, 7)
        values = (
            self.mean_utilization
            + self.daily_amplitude * daily
            + self.weekly_amplitude * weekly
            + smooth_noise
        )
        return TimeSeries(start=0.0, interval=interval_s,
                          values=np.clip(values, 0.05, 1.0))


class _PiecewiseRateProfile:
    """Arrival-rate profile defined by per-bin rates (thinning-compatible)."""

    def __init__(self, bin_starts: np.ndarray, rates: np.ndarray,
                 interval_s: float) -> None:
        self._starts = bin_starts
        self._rates = rates
        self._interval = interval_s

    def rate(self, t: float) -> float:
        index = int((t - self._starts[0]) // self._interval)
        index = max(0, min(index, self._rates.size - 1))
        return float(self._rates[index])

    @property
    def max_rate(self) -> float:
        return float(self._rates.max())


@dataclass(frozen=True)
class SyntheticTrace:
    """A generated request trace plus its fidelity metadata.

    Attributes:
        requests: The sampled requests, sorted by arrival time.
        target_power: The production power series being replicated (W).
        reconstructed_power: The fluid-model power of the synthetic trace.
        mape: MAPE between target and reconstruction.
    """

    requests: List[SampledRequest]
    target_power: TimeSeries
    reconstructed_power: TimeSeries
    mape: float

    def validate(self, tolerance: float = 0.03) -> None:
        """Assert the paper's MAPE-within-3% criterion.

        Raises:
            TraceError: If the reconstruction misses the tolerance.
        """
        if self.mape > tolerance:
            raise TraceError(
                f"synthetic trace MAPE {self.mape:.4f} exceeds {tolerance}"
            )


@dataclass
class SyntheticTraceGenerator:
    """Generates request traces replicating a target power trace.

    Attributes:
        n_servers: Servers in the simulated row.
        provisioned_per_server_w: Power budget per server slot.
        seed: RNG seed for arrival sampling and request sizing.
    """

    n_servers: int = 40
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    seed: int = 0
    fluid: FluidClusterModel = field(init=False)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        self.fluid = FluidClusterModel.for_table6(self.n_servers)

    @property
    def provisioned_power_w(self) -> float:
        """Row power budget."""
        return self.n_servers * self.provisioned_per_server_w

    def generate(self, utilization_trace: TimeSeries) -> SyntheticTrace:
        """Generate a request trace replicating the utilization trace.

        The target utilization is converted to power, inverted through the
        fluid model to per-bin arrival rates, and sampled as a
        nonhomogeneous Poisson process with Table 6 request sizing. The
        reconstruction (fluid power of the realized arrivals) is compared
        to the target with MAPE.

        Raises:
            ConfigurationError: If the trace is empty.
        """
        if len(utilization_trace) == 0:
            raise ConfigurationError("empty utilization trace")
        interval = utilization_trace.interval
        target_power = utilization_trace.values * self.provisioned_power_w
        rhos = np.array([
            self.fluid.utilization_for_power(float(p)) for p in target_power
        ])
        rates = np.array([
            self.fluid.arrival_rate_for_utilization(float(r)) for r in rhos
        ])
        profile = _PiecewiseRateProfile(
            utilization_trace.times, rates, interval
        )
        rng = np.random.default_rng(self.seed)
        sampler = RequestSampler(seed=self.seed + 1)
        end = utilization_trace.start + len(utilization_trace) * interval
        arrivals: List[float] = []
        t = utilization_trace.start
        lam = max(profile.max_rate, 1e-9)
        while True:
            t += float(rng.exponential(1.0 / lam))
            if t >= end:
                break
            if rng.random() < profile.rate(t) / lam:
                arrivals.append(t)
        requests = sampler.sample_many(arrivals)
        reconstructed = self._reconstruct_power(
            arrivals, utilization_trace.start, end, interval
        )
        mape = mean_absolute_percentage_error(
            target_power, reconstructed.values
        )
        return SyntheticTrace(
            requests=requests,
            target_power=TimeSeries(
                start=utilization_trace.start,
                interval=interval,
                values=target_power,
            ),
            reconstructed_power=reconstructed,
            mape=mape,
        )

    def _reconstruct_power(
        self, arrivals: List[float], start: float, end: float, interval: float
    ) -> TimeSeries:
        """Fluid power implied by the realized arrivals, per bin."""
        n_bins = int(round((end - start) / interval))
        counts = np.zeros(n_bins)
        for t in arrivals:
            index = min(int((t - start) // interval), n_bins - 1)
            counts[index] += 1.0
        # Little's law per bin: busy fraction = lambda * E[S] / n.
        rho = (counts / interval * self.fluid.mean_service_s
               / (self.n_servers * self.fluid.concurrency))
        # Smooth over ~30 min to estimate the underlying rate rather than
        # per-bin Poisson noise (the paper compares smoothed power).
        window = max(1, int(round(1800.0 / interval)))
        rho_smooth = np.clip(smooth_same(rho, window), 0.0, 1.0)
        power = np.array([
            self.fluid.power_at_utilization(float(r)) for r in rho_smooth
        ])
        return TimeSeries(start=start, interval=interval, values=power)
