"""Sampling concrete requests from the workload mix.

Combines the Table 6 mix (which workload, which priority) with per-request
prompt/output sizes drawn uniformly from the workload's ranges, producing
the request stream the POLCA simulator serves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.spec import Priority, TABLE6_MIX, WorkloadSpec


@dataclass(frozen=True)
class SampledRequest:
    """One concrete inference request in the cluster trace.

    Attributes:
        arrival_time: Arrival time in seconds from trace start.
        workload: The Table 6 workload it belongs to.
        priority: Its priority tier.
        input_tokens: Sampled prompt length.
        output_tokens: Sampled output length.
    """

    arrival_time: float
    workload: WorkloadSpec
    priority: Priority
    input_tokens: int
    output_tokens: int


@dataclass
class RequestSampler:
    """Draws workloads, priorities, and sizes per Table 6.

    Attributes:
        mix: The workload mix; shares must sum to 1.
        seed: RNG seed.
    """

    mix: Sequence[WorkloadSpec] = TABLE6_MIX
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        total_share = sum(w.share for w in self.mix)
        if abs(total_share - 1.0) > 1e-9:
            raise ConfigurationError(
                f"workload shares sum to {total_share}, expected 1.0"
            )
        self._rng = np.random.default_rng(self.seed)

    def sample(self, arrival_time: float) -> SampledRequest:
        """Sample one request arriving at ``arrival_time``."""
        shares = [w.share for w in self.mix]
        index = int(self._rng.choice(len(self.mix), p=shares))
        workload = self.mix[index]
        is_high = self._rng.random() < workload.high_priority_probability
        lo_p, hi_p = workload.prompt_range
        lo_o, hi_o = workload.output_range
        return SampledRequest(
            arrival_time=arrival_time,
            workload=workload,
            priority=Priority.HIGH if is_high else Priority.LOW,
            input_tokens=int(self._rng.integers(lo_p, hi_p + 1)),
            output_tokens=int(self._rng.integers(lo_o, hi_o + 1)),
        )

    def sample_many(self, arrival_times: Sequence[float]) -> List[SampledRequest]:
        """Sample one request per arrival time."""
        return [self.sample(t) for t in arrival_times]

    def expected_priority_split(self) -> float:
        """Expected fraction of high-priority requests (0.5 for Table 6)."""
        return sum(w.share * w.high_priority_probability for w in self.mix)
