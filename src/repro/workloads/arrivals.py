"""Diurnal nonhomogeneous Poisson arrival process.

Table 4 notes that the production inference cluster's power "shows a
diurnal pattern since it is an interactive workload; yet, over the course
of a few seconds, its power usage remains relatively stable". We model
arrivals as a Poisson process whose rate follows a smooth daily curve with
a weekly modulation and slow random drift, thinned from a constant
dominating rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_WEEK


@dataclass(frozen=True)
class DiurnalRateProfile:
    """Arrival-rate profile with daily and weekly structure.

    Attributes:
        base_rate: Mean arrival rate in requests/second.
        daily_amplitude: Relative amplitude of the daily sine (0.3 means
            the rate swings +-30% around the base over a day).
        weekly_amplitude: Relative amplitude of the weekly modulation
            (weekends are quieter).
        peak_hour: Local hour of the daily peak.
        noise_amplitude: Relative amplitude of slow random drift.
        noise_period_s: Correlation time of the drift.
        seed: Seed for the drift phase offsets.
    """

    base_rate: float
    daily_amplitude: float = 0.30
    weekly_amplitude: float = 0.08
    peak_hour: float = 15.0
    noise_amplitude: float = 0.05
    noise_period_s: float = 1800.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ConfigurationError("base_rate must be positive")
        total_amplitude = (
            self.daily_amplitude + self.weekly_amplitude + self.noise_amplitude
        )
        if total_amplitude >= 1.0:
            raise ConfigurationError(
                "combined amplitudes must stay below 1 (rate must be positive)"
            )

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` seconds."""
        daily_phase = 2.0 * math.pi * (
            (t / SECONDS_PER_DAY) - self.peak_hour / 24.0
        )
        weekly_phase = 2.0 * math.pi * t / SECONDS_PER_WEEK
        rng_phase = (self.seed % 997) * 0.618
        drift_phase = 2.0 * math.pi * t / self.noise_period_s * 0.037 + rng_phase
        factor = (
            1.0
            + self.daily_amplitude * math.cos(daily_phase)
            + self.weekly_amplitude * math.cos(weekly_phase)
            + self.noise_amplitude * math.sin(drift_phase)
        )
        return self.base_rate * factor

    @property
    def max_rate(self) -> float:
        """A dominating rate for thinning."""
        return self.base_rate * (
            1.0
            + self.daily_amplitude
            + self.weekly_amplitude
            + self.noise_amplitude
        )

    def rates(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate` over an array of times."""
        daily_phase = 2.0 * np.pi * (
            times / SECONDS_PER_DAY - self.peak_hour / 24.0
        )
        weekly_phase = 2.0 * np.pi * times / SECONDS_PER_WEEK
        rng_phase = (self.seed % 997) * 0.618
        drift_phase = 2.0 * np.pi * times / self.noise_period_s * 0.037 + rng_phase
        factor = (
            1.0
            + self.daily_amplitude * np.cos(daily_phase)
            + self.weekly_amplitude * np.cos(weekly_phase)
            + self.noise_amplitude * np.sin(drift_phase)
        )
        return self.base_rate * factor


def generate_arrivals(
    profile: DiurnalRateProfile,
    start: float,
    end: float,
    seed: int = 0,
) -> List[float]:
    """Sample arrival times on ``[start, end)`` by Poisson thinning.

    Raises:
        ConfigurationError: If the window is empty.
    """
    if end <= start:
        raise ConfigurationError("end must be after start")
    rng = np.random.default_rng(seed)
    lam = profile.max_rate
    arrivals: List[float] = []
    t = start
    while True:
        t += float(rng.exponential(1.0 / lam))
        if t >= end:
            break
        if rng.random() < profile.rate(t) / lam:
            arrivals.append(t)
    return arrivals
