"""Frequency-locking vs power-capping trade-offs for training (Figure 5).

Figure 5 plots peak-power reduction against throughput reduction for the
three training models under (a) frequency locking across 1.1-1.4 GHz and
(b) power capping across 300-400 W. The paper's reading (Insight 3):
frequency locking reduces power constantly (including troughs) and costs
performance roughly in proportion to the clock; power capping clips only
the peaks (troughs untouched) and adds variability because it is reactive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.training.iteration import TrainingIterationModel


@dataclass(frozen=True)
class KnobTradeoffPoint:
    """One point of a Figure 5 curve.

    Attributes:
        knob_value: The clock (MHz) or cap (W) applied.
        peak_power_reduction: Fractional peak-power drop vs uncapped.
        performance_reduction: Fractional throughput drop vs uncapped.
        trough_power_reduction: Fractional drop of the iteration trough —
            near zero for power capping (Insight 3), positive for
            frequency locking.
    """

    knob_value: float
    peak_power_reduction: float
    performance_reduction: float
    trough_power_reduction: float


def frequency_lock_tradeoff(
    model: TrainingIterationModel, clocks_mhz: Sequence[float]
) -> List[KnobTradeoffPoint]:
    """Figure 5a: the frequency-locking trade-off curve for one model.

    Raises:
        ConfigurationError: If no clocks are given.
    """
    if not clocks_mhz:
        raise ConfigurationError("need at least one clock point")
    baseline_peak = model.peak_power_w(1.0)
    baseline_trough = model.trough_power_w(1.0)
    points: List[KnobTradeoffPoint] = []
    for clock in clocks_mhz:
        model.gpu.validate_clock(clock)
        ratio = clock / model.gpu.max_sm_clock_mhz
        peak = model.peak_power_w(ratio)
        # The communication trough is clock-insensitive in time but its
        # *power* still falls with the locked clock (dynamic power scales).
        trough = model.trough_power_w(ratio)
        throughput = model.throughput_scale(ratio)
        points.append(KnobTradeoffPoint(
            knob_value=clock,
            peak_power_reduction=(baseline_peak - peak) / baseline_peak,
            performance_reduction=1.0 - throughput,
            trough_power_reduction=(baseline_trough - trough)
            / max(baseline_trough, 1e-9),
        ))
    return points


def power_cap_tradeoff(
    model: TrainingIterationModel,
    caps_w: Sequence[float],
    variability_std: float = 0.01,
    seed: int = 0,
) -> List[KnobTradeoffPoint]:
    """Figure 5b: the power-capping trade-off curve for one model.

    Peak power converges to (slightly above) the cap; the trough never
    changes because sync-phase power sits below any sensible cap. The
    performance cost is incurred only while the uncapped power would have
    exceeded the cap — the compute segments throttle to the steady-state
    cap clock. Reactivity adds run-to-run variability (Section 4.1:
    "power capping introduces more performance and power variability"),
    modelled as Gaussian noise on the performance reduction.

    Raises:
        ConfigurationError: If no caps are given.
    """
    if not caps_w:
        raise ConfigurationError("need at least one cap point")
    rng = np.random.default_rng(seed)
    power_model = model._power_model  # shared internal; same package
    baseline_peak = model.peak_power_w(1.0)
    baseline_trough = model.trough_power_w(1.0)
    baseline_time = model.iteration_seconds(1.0)
    points: List[KnobTradeoffPoint] = []
    for cap in caps_w:
        model.gpu.validate_power_cap(cap)
        # The cap throttles only while power would exceed it, i.e. during
        # the peak-activity compute phases; the trough is untouched.
        peak_activity = max(s.activity for s in model.segments())
        trough_activity = min(s.activity for s in model.segments())
        clock = power_model.throttle_clock_for_cap(peak_activity, cap)
        ratio = clock / model.gpu.max_sm_clock_mhz
        capped_peak = power_model.power(peak_activity, clock)
        capped_trough = power_model.power(
            trough_activity, model.gpu.max_sm_clock_mhz
        )
        capped_time = model.iteration_seconds(ratio)
        performance_reduction = 1.0 - baseline_time / capped_time
        performance_reduction += abs(variability_std * rng.standard_normal())
        points.append(KnobTradeoffPoint(
            knob_value=cap,
            peak_power_reduction=(baseline_peak - capped_peak) / baseline_peak,
            performance_reduction=min(performance_reduction, 1.0),
            trough_power_reduction=(baseline_trough - capped_trough)
            / max(baseline_trough, 1e-9),
        ))
    return points
