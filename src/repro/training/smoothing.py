"""Mitigating training power swings (the paper's Section 5.1 proposal).

"Another alternative is to smooth out the power swings by reducing
synchronization requirements and overlapping the computation and
communication phases. Lazy weight updates and asynchronous training
techniques could help in this regard."

We model communication/computation overlap as a fraction of the
end-of-iteration synchronization that executes concurrently with compute:
the overlapped share no longer drops to the trough activity, which raises
the trough, shrinks the aggregate swing, and shortens the iteration. The
ablation benchmark sweeps the overlap factor to quantify how much
asynchrony the power-delivery infrastructure buys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.registry import LlmSpec, TrainingProfile
from repro.training.cluster import TrainingClusterModel, TrainingClusterStats


@dataclass(frozen=True)
class SmoothingOutcome:
    """Cluster-level effect of one comm/compute overlap level.

    Attributes:
        overlap: Fraction of the sync phase overlapped with compute.
        stats: Cluster power statistics at that overlap.
        iteration_speedup: Throughput gain from hiding communication.
    """

    overlap: float
    stats: TrainingClusterStats
    iteration_speedup: float


def overlapped_profile(profile: TrainingProfile, overlap: float
                       ) -> TrainingProfile:
    """A training profile with part of the sync phase hidden under compute.

    The overlapped share of the sync time disappears (it runs concurrently
    with the backward pass), and the remaining exposed sync draws a
    blended activity because some compute is still in flight.

    Raises:
        ConfigurationError: If ``overlap`` is outside ``[0, 1)``.
    """
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap {overlap} outside [0, 1)")
    if overlap == 0.0:
        return profile
    exposed_sync = profile.sync_fraction * (1.0 - overlap)
    removed = profile.sync_fraction - exposed_sync
    # Renormalize phase fractions over the shorter iteration.
    scale = 1.0 / (1.0 - removed)
    blended_trough = (
        profile.trough_activity
        + overlap * (profile.peak_activity - profile.trough_activity) * 0.5
    )
    return dataclasses.replace(
        profile,
        iteration_seconds=profile.iteration_seconds * (1.0 - removed),
        trough_activity=min(blended_trough, profile.peak_activity),
        forward_fraction=profile.forward_fraction * scale,
        backward_fraction=profile.backward_fraction * scale,
        sync_fraction=exposed_sync * scale,
    )


def smoothing_sweep(
    model: LlmSpec,
    overlaps=(0.0, 0.25, 0.5, 0.75),
    n_servers: int = 40,
    duration_s: float = 120.0,
    seed: int = 0,
):
    """Sweep overlap factors and report cluster power statistics.

    Raises:
        ConfigurationError: If the model is not trainable.
    """
    if model.training is None:
        raise ConfigurationError(f"{model.name} is not trainable")
    outcomes = []
    base_iteration = model.training.iteration_seconds
    for overlap in overlaps:
        profile = overlapped_profile(model.training, overlap)
        smoothed = dataclasses.replace(model, training=profile)
        cluster = TrainingClusterModel(
            model=smoothed, n_servers=n_servers, seed=seed
        )
        outcomes.append(SmoothingOutcome(
            overlap=overlap,
            stats=cluster.stats(duration_s=duration_s),
            iteration_speedup=base_iteration / profile.iteration_seconds,
        ))
    return outcomes
