"""The power shape of one training iteration (Figure 4).

Each iteration has four stretches (Section 4.1): a compute-heavy forward
pass; a brief dip where "threads working on the same data synchronize and
the GPU utilization decreases"; a compute-heavy backward pass; and the
end-of-iteration gradient synchronization, where power falls to a
model-specific trough (RoBERTa stays at ~75% of TDP, GPT-NeoX drops to
~50%, Flan-T5 all the way to idle). The model expands a
:class:`~repro.models.registry.TrainingProfile` into activity segments and
renders DCGM-rate power time series under any combination of frequency
locking and power capping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.timeseries import TimeSeries, sample_times
from repro.errors import ConfigurationError
from repro.gpu.capping import ReactivePowerCap
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_40GB, GpuSpec
from repro.models.registry import LlmSpec

#: Fraction of the iteration spent in the forward/backward boundary dip.
MID_DIP_FRACTION = 0.05


@dataclass(frozen=True)
class IterationSegment:
    """A stretch of a training iteration with uniform activity.

    Attributes:
        name: ``"forward"``, ``"mid_dip"``, ``"backward"``, or ``"sync"``.
        duration_fraction: Share of the iteration (at the max clock).
        activity: GPU activity during the stretch.
        compute_bound: Whether the stretch slows with the SM clock
            (compute phases do; the communication trough does not).
    """

    name: str
    duration_fraction: float
    activity: float
    compute_bound: bool


@dataclass
class TrainingIterationModel:
    """Renders training power time series for one model on one server.

    Attributes:
        model: A trainable LLM spec (must carry a training profile).
        gpu: GPU of the training server (A100-40GB in the paper).
        n_gpus: GPUs per server (8).
        noise_std: Multiplicative power noise per sample.
        seed: RNG seed.
    """

    model: LlmSpec
    gpu: GpuSpec = A100_40GB
    n_gpus: int = 8
    noise_std: float = 0.015
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model.training is None:
            raise ConfigurationError(
                f"{self.model.name} has no training profile (Table 3 marks "
                f"it inference-only)"
            )
        self._power_model = GpuPowerModel(self.gpu)
        self._rng = np.random.default_rng(self.seed)

    def segments(self) -> List[IterationSegment]:
        """The iteration's activity segments, in execution order."""
        profile = self.model.training
        assert profile is not None
        forward = max(profile.forward_fraction - MID_DIP_FRACTION, 0.05)
        return [
            IterationSegment("forward", forward, profile.peak_activity, True),
            IterationSegment(
                "mid_dip", MID_DIP_FRACTION, profile.mid_dip_activity, False
            ),
            IterationSegment(
                "backward", profile.backward_fraction, profile.peak_activity, True
            ),
            IterationSegment(
                "sync", profile.sync_fraction, profile.trough_activity, False
            ),
        ]

    def iteration_seconds(self, clock_ratio: float = 1.0) -> float:
        """Iteration duration at the given clock ratio.

        The iteration stretches by ``(1 - c) + c / clock_ratio`` where
        ``c`` is the profile's effective compute fraction — only the
        SM-clock-sensitive share of the iteration slows down.
        """
        if not 0.0 < clock_ratio <= 1.0:
            raise ConfigurationError(f"clock_ratio {clock_ratio} outside (0, 1]")
        profile = self.model.training
        assert profile is not None
        c = profile.compute_fraction
        return profile.iteration_seconds * ((1.0 - c) + c / clock_ratio)

    def activity_at(self, t: float, clock_ratio: float = 1.0) -> float:
        """Activity at time ``t`` within the repeating iteration pattern.

        Segment boundaries keep their fractional positions within the
        (possibly stretched) iteration.
        """
        iteration = self.iteration_seconds(clock_ratio)
        position = (t % iteration) / iteration
        elapsed = 0.0
        for segment in self.segments():
            if position < elapsed + segment.duration_fraction:
                return segment.activity
            elapsed += segment.duration_fraction
        return self.segments()[-1].activity

    def power_series(
        self,
        n_iterations: int = 5,
        sample_interval: float = 0.1,
        frequency_lock_mhz: Optional[float] = None,
        power_cap_w: Optional[float] = None,
    ) -> TimeSeries:
        """Per-GPU power time series over ``n_iterations`` (Figure 4).

        At most one knob may be active; passing both raises, matching the
        paper's one-knob-at-a-time methodology.

        Raises:
            ConfigurationError: If both knobs are requested at once.
        """
        if frequency_lock_mhz is not None and power_cap_w is not None:
            raise ConfigurationError("apply one knob at a time, as the paper does")
        if n_iterations <= 0:
            raise ConfigurationError("n_iterations must be positive")
        clock_ratio = 1.0
        if frequency_lock_mhz is not None:
            self.gpu.validate_clock(frequency_lock_mhz)
            clock_ratio = frequency_lock_mhz / self.gpu.max_sm_clock_mhz
        cap: Optional[ReactivePowerCap] = None
        if power_cap_w is not None:
            cap = ReactivePowerCap(self._power_model, cap_w=power_cap_w)
        end = n_iterations * self.iteration_seconds(clock_ratio)
        times = sample_times(0.0, end, sample_interval)
        values = np.empty(times.size)
        clock = clock_ratio * self.gpu.max_sm_clock_mhz
        for i, t in enumerate(times):
            activity = self.activity_at(float(t), clock_ratio)
            if cap is not None:
                power = cap.observe(float(t), activity)
            else:
                power = self._power_model.power(activity, clock)
            jitter = 1.0 + self.noise_std * self._rng.standard_normal()
            values[i] = power * jitter
        return TimeSeries(start=0.0, interval=sample_interval, values=values)

    def peak_power_w(self, clock_ratio: float = 1.0) -> float:
        """Peak per-GPU power during an iteration at the given clock."""
        clock = clock_ratio * self.gpu.max_sm_clock_mhz
        return max(
            self._power_model.power(segment.activity, clock)
            for segment in self.segments()
        )

    def trough_power_w(self, clock_ratio: float = 1.0) -> float:
        """Minimum per-GPU power during an iteration at the given clock."""
        clock = clock_ratio * self.gpu.max_sm_clock_mhz
        return min(
            self._power_model.power(segment.activity, clock)
            for segment in self.segments()
        )

    def throughput_scale(self, clock_ratio: float) -> float:
        """Training throughput at a locked clock, relative to uncapped."""
        return self.iteration_seconds(1.0) / self.iteration_seconds(clock_ratio)
