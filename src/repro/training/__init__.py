"""LLM training power behaviour: iterations, knob trade-offs, cluster scale.

Section 4.1 of the paper characterizes training (fine-tuning) power:
iterations alternate compute-heavy forward/backward phases that reach or
exceed TDP with communication troughs whose depth is model-specific
(Figure 4); frequency locking and power capping trade peak power for
throughput differently (Figure 5, Insight 3); and at cluster scale the
iterations of a synchronous job are *correlated* across thousands of GPUs,
producing the 97% peak utilization and 37.5%-in-2s swings of Table 4 that
leave training clusters only ~3% oversubscription headroom (Insight 9).
"""

from repro.training.iteration import IterationSegment, TrainingIterationModel
from repro.training.capping import (
    KnobTradeoffPoint,
    frequency_lock_tradeoff,
    power_cap_tradeoff,
)
from repro.training.cluster import TrainingClusterModel, TrainingClusterStats
from repro.training.smoothing import (
    SmoothingOutcome,
    overlapped_profile,
    smoothing_sweep,
)

__all__ = [
    "IterationSegment",
    "KnobTradeoffPoint",
    "SmoothingOutcome",
    "TrainingClusterModel",
    "TrainingClusterStats",
    "TrainingIterationModel",
    "frequency_lock_tradeoff",
    "overlapped_profile",
    "power_cap_tradeoff",
    "smoothing_sweep",
]
