"""Cluster-scale training power: correlated swings and tiny headroom.

Table 4's training column reports the production numbers this module
reproduces: ~97% peak utilization of provisioned power, coordinated swings
"every few seconds", and a maximum power spike of 37.5% of provisioned
capacity within 2 seconds. The mechanism (Insight 2) is that a synchronous
training job drives all servers through the same iteration phases nearly
in lockstep, so the per-server peak-to-trough swing survives aggregation —
unlike inference, where arrival-time variation decorrelates the spikes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.timeseries import TimeSeries, max_swing, sample_times
from repro.errors import ConfigurationError
from repro.gpu.specs import A100_40GB, GpuSpec
from repro.models.registry import LlmSpec, get_model
from repro.server.dgx import DgxServer
from repro.training.iteration import TrainingIterationModel

#: Production training clusters are provisioned much closer to observed
#: peak than the 6.5 kW DGX rating (derating, Section 5); this per-server
#: budget yields the ~97% peak utilization of Table 4.
TRAINING_PROVISIONED_PER_SERVER_W = 5290.0


@dataclass(frozen=True)
class TrainingClusterStats:
    """Aggregate power statistics of a training cluster (Table 4 column).

    Attributes:
        peak_utilization: Peak aggregate power over provisioned power.
        mean_utilization: Mean aggregate power over provisioned power.
        max_swing_2s: Largest rise within 2 s, as a provisioned fraction.
        max_swing_40s: Largest rise within 40 s, as a provisioned fraction.
        headroom: ``1 - peak_utilization`` (the ~3% of Insight 9).
    """

    peak_utilization: float
    mean_utilization: float
    max_swing_2s: float
    max_swing_40s: float

    @property
    def headroom(self) -> float:
        """Oversubscription headroom left by the peak."""
        return 1.0 - self.peak_utilization


@dataclass
class TrainingClusterModel:
    """A row-scale cluster running one synchronous training job.

    Attributes:
        model: The trained LLM (must have a training profile).
        n_servers: Servers participating in the job.
        gpu: GPU type of the training servers.
        provisioned_per_server_w: Power budgeted per server.
        phase_jitter_std_s: Std-dev of per-server phase misalignment.
            Synchronous jobs keep this small (fractions of a second);
            it is what softens the aggregate swing from the raw
            per-server peak-to-trough to Table 4's 37.5%.
        seed: RNG seed.
    """

    model: LlmSpec = field(default_factory=lambda: get_model("GPT-NeoX-20B"))
    n_servers: int = 40
    gpu: GpuSpec = A100_40GB
    provisioned_per_server_w: float = TRAINING_PROVISIONED_PER_SERVER_W
    phase_jitter_std_s: float = 0.06
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError("n_servers must be positive")
        if self.model.training is None:
            raise ConfigurationError(f"{self.model.name} is not trainable")
        self._iteration = TrainingIterationModel(
            model=self.model, gpu=self.gpu, noise_std=0.0, seed=self.seed
        )
        self._server = DgxServer(gpu_spec=self.gpu)
        self._rng = np.random.default_rng(self.seed)
        self._offsets = self._rng.normal(
            0.0, self.phase_jitter_std_s, size=self.n_servers
        )

    @property
    def provisioned_power_w(self) -> float:
        """Total provisioned power of the cluster."""
        return self.n_servers * self.provisioned_per_server_w

    def aggregate_power(self, t: float, clock_ratio: float = 1.0) -> float:
        """Cluster power at time ``t`` in watts.

        A ``clock_ratio`` below 1 models a cluster-wide frequency lock:
        iterations stretch and every server's power scales down.
        """
        if clock_ratio < 1.0:
            self._server.lock_all_frequencies(
                clock_ratio * self.gpu.max_sm_clock_mhz
            )
        else:
            self._server.unlock_all_frequencies()
        total = 0.0
        for offset in self._offsets:
            activity = self._iteration.activity_at(
                float(t + offset), clock_ratio
            )
            total += self._server.server_power_uniform(0.0, activity)
        return total

    def power_series(
        self,
        duration_s: float = 120.0,
        sample_interval: float = 0.25,
        clock_ratio: float = 1.0,
    ) -> TimeSeries:
        """Aggregate cluster power over a window.

        Raises:
            ConfigurationError: If the window is not positive.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        times = sample_times(0.0, duration_s, sample_interval)
        values = np.array(
            [self.aggregate_power(float(t), clock_ratio) for t in times]
        )
        return TimeSeries(start=0.0, interval=sample_interval, values=values)

    def stats(
        self, duration_s: float = 120.0, sample_interval: float = 0.25
    ) -> TrainingClusterStats:
        """Table 4 training-column statistics for this cluster."""
        series = self.power_series(duration_s, sample_interval)
        provisioned = self.provisioned_power_w
        return TrainingClusterStats(
            peak_utilization=series.peak() / provisioned,
            mean_utilization=series.mean() / provisioned,
            max_swing_2s=max_swing(series, 2.0) / provisioned,
            max_swing_40s=max_swing(series, 40.0) / provisioned,
        )
