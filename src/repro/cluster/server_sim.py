"""Per-server simulation state for the cluster simulator.

Each server serves one BLOOM-176B replica across its eight GPUs (Table 3).
Modern serving stacks (vLLM, DeepSpeed-MII — the frameworks the paper
profiles) batch concurrent requests continuously: decode steps share the
weight reads, so a server can serve several requests at near-batch-1
per-request latency while its power rises only mildly with occupancy.
We model that with a fixed number of concurrency slots per server plus the
paper's "one-request buffer per server" (Section 6.6) on top.

Server power is piecewise-constant between events — it changes only on
request start/finish, phase transitions, and clock changes — which lets
the simulator maintain row power as a running sum instead of re-evaluating
every server at every telemetry tick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.inference import InferenceRequest, PhaseSegment, request_timeline
from repro.models.power_profile import PhasePowerProfile
from repro.models.registry import LlmSpec, get_model
from repro.server.dgx import HostPowerModel
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority

#: Concurrency slots per server (continuous batching depth).
DEFAULT_CONCURRENCY = 4

#: Entry cap on the shared timeline memo cache (below).
_TIMELINE_CACHE_MAX = 1 << 18

# Request timelines depend only on (model, gpu, input_tokens,
# output_tokens) and their expansion is pure roofline math — the single
# most expensive piece of starting a request. Sweeps replay the same
# request trace under many policies/configurations, so memoizing the
# segments process-wide makes every run after the first skip the roofline
# work entirely. Keys are object identities with strong references held
# (so ids cannot be recycled); values are immutable segment tuples shared
# between runs.
_timeline_cache: Dict[Tuple[int, int, int, int], Tuple[PhaseSegment, ...]] = {}
_timeline_cache_refs: Dict[int, object] = {}


def cached_timeline_segments(
    model: LlmSpec, gpu: GpuSpec, input_tokens: int, output_tokens: int
) -> Tuple[PhaseSegment, ...]:
    """Memoized phase segments for a (model, gpu, request-size) triple."""
    key = (id(model), id(gpu), input_tokens, output_tokens)
    segments = _timeline_cache.get(key)
    if segments is None:
        if len(_timeline_cache) >= _TIMELINE_CACHE_MAX:
            _timeline_cache.clear()
            # The strong-ref dict exists only to pin ids used as cache
            # keys; once those keys are gone it must be dropped too, or
            # it grows without bound across huge sweeps.
            _timeline_cache_refs.clear()
        timeline = request_timeline(
            model,
            gpu,
            InferenceRequest(
                model_name=model.name,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
            ),
        )
        segments = tuple(timeline.segments)
        _timeline_cache[key] = segments
        _timeline_cache_refs[id(model)] = model
        _timeline_cache_refs[id(gpu)] = gpu
    return segments


@dataclass(frozen=True)
class ServerPowerModel:
    """Fast closed-form power for an 8-GPU server at (activity, clock).

    Attributes:
        gpu: GPU spec of the server.
        n_gpus: GPUs per server.
        host: Host (CPU/fan/platform) power model — weakly load-following
            per Insight 8.
        power_scale: Multiplier on GPU dynamic power; 1.05 models the
            "workloads become 5% more power-intensive than profiled"
            robustness scenario of Section 6.6.
    """

    gpu: GpuSpec = A100_80GB
    n_gpus: int = 8
    host: HostPowerModel = HostPowerModel()
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.power_scale <= 0:
            raise ConfigurationError("power_scale must be positive")

    def server_power(self, activity: float, clock_ratio: float) -> float:
        """Server power in watts for uniform per-GPU activity."""
        dynamic_range = self.gpu.transient_peak_w - self.gpu.idle_w
        per_gpu_dynamic = (
            activity
            * dynamic_range
            * (clock_ratio ** self.gpu.dvfs_alpha)
            * self.power_scale
        )
        gpu_total = self.n_gpus * (self.gpu.idle_w + per_gpu_dynamic)
        load = min(1.0, per_gpu_dynamic / dynamic_range)
        return gpu_total + self.host.power(load)

    def server_power_batch(
        self, activities: Sequence[float], clock_ratio: float
    ) -> np.ndarray:
        """Vectorized :meth:`server_power` for many servers at one clock.

        Used by the simulator's group-wide refreshes (cap and brake
        landings touch a whole priority pool at once). Performs the exact
        same elementwise IEEE operations as the scalar path, so results
        are bit-identical per server.
        """
        acts = np.asarray(activities, dtype=np.float64)
        dynamic_range = self.gpu.transient_peak_w - self.gpu.idle_w
        powed = clock_ratio ** self.gpu.dvfs_alpha
        per_gpu_dynamic = ((acts * dynamic_range) * powed) * self.power_scale
        gpu_total = self.n_gpus * (self.gpu.idle_w + per_gpu_dynamic)
        load = np.minimum(1.0, per_gpu_dynamic / dynamic_range)
        host = self.host
        host_power = (
            (host.cpu_idle_w + (host.cpu_busy_w - host.cpu_idle_w) * load)
            + (host.fan_idle_w + (host.fan_max_w - host.fan_idle_w) * load)
            + host.other_w
        )
        return gpu_total + host_power

    @property
    def brake_ratio(self) -> float:
        """Clock ratio imposed by the power brake."""
        return self.gpu.brake_clock_mhz / self.gpu.max_sm_clock_mhz


@dataclass(slots=True)
class ActiveRequest:
    """Bookkeeping for one request occupying a concurrency slot.

    Slotted: tens of thousands of these are created per simulated day and
    their attributes are read in the inner event loop.

    Attributes:
        request: The sampled request being served.
        segments: Its phase segments (prompt, token); often a shared
            tuple from the process-wide timeline memo cache.
        phase_index: Index of the segment currently running.
        phase_end: Absolute time the current phase finishes at the
            server's current effective clock.
        version: Monotonic counter invalidating superseded events.
    """

    request: SampledRequest
    segments: Sequence[PhaseSegment]
    phase_index: int
    phase_end: float
    version: int = 0

    @property
    def in_prompt(self) -> bool:
        """Whether the request is currently in its prompt phase."""
        return self.segments[self.phase_index].phase == "prompt"


@dataclass(slots=True)
class ServerSim:
    """One inference server inside the cluster simulator.

    Attributes:
        server_id: Identifier within the row.
        priority: The priority pool this server is allocated to (the
            POLCA-aware allocator mixes priorities per row; Section 6.3).
        model: The LLM served (BLOOM-176B in the evaluation).
        power_model: Closed-form server power.
        concurrency: Continuous-batching slots.
    """

    server_id: str
    priority: Priority
    model: LlmSpec = field(default_factory=lambda: get_model("BLOOM-176B"))
    power_model: ServerPowerModel = ServerPowerModel()
    concurrency: int = DEFAULT_CONCURRENCY
    clock_ratio: float = 1.0
    braked: bool = False
    failed: bool = False
    buffered: Optional[SampledRequest] = None
    slots: Dict[int, ActiveRequest] = field(init=False, repr=False)
    _spec: GpuSpec = field(init=False, repr=False)
    _profile: PhasePowerProfile = field(init=False, repr=False)
    _next_slot: int = field(init=False, repr=False)
    _token_activity: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.concurrency <= 0:
            raise ConfigurationError("concurrency must be positive")
        self._spec = self.power_model.gpu
        self._profile = PhasePowerProfile(model=self.model)
        self.slots: Dict[int, ActiveRequest] = {}
        self._next_slot = 0
        # Token-phase activity as a function of occupancy (batch effect).
        self._token_activity = [0.0] + [
            self._profile.token_activity(k)
            for k in range(1, self.concurrency + 1)
        ]

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def effective_ratio(self) -> float:
        """Clock ratio after applying the brake over any frequency cap."""
        if self.braked:
            return self.power_model.brake_ratio
        return self.clock_ratio

    @property
    def n_active(self) -> int:
        """Requests currently holding a slot."""
        return len(self.slots)

    @property
    def is_idle(self) -> bool:
        """True when no slot is occupied and nothing is buffered."""
        return not self.slots and self.buffered is None

    @property
    def has_free_slot(self) -> bool:
        """True when a concurrency slot is available (never on a failed
        server — the router must not place work on a crashed box)."""
        return not self.failed and len(self.slots) < self.concurrency

    @property
    def can_buffer(self) -> bool:
        """True when all slots are busy but the one-slot buffer is free."""
        return (
            not self.failed
            and len(self.slots) >= self.concurrency
            and self.buffered is None
        )

    def current_activity(self) -> float:
        """GPU activity right now.

        Prompt processing saturates compute regardless of what else is
        decoding, so a server with any request in its prompt phase runs at
        that prompt's activity; otherwise decode activity grows mildly
        with occupancy; an empty server idles.
        """
        if not self.slots:
            return 0.0
        prompt_activity = 0.0
        for active in self.slots.values():
            if active.in_prompt:
                prompt_activity = max(
                    prompt_activity, active.segments[active.phase_index].activity
                )
        if prompt_activity > 0.0:
            return prompt_activity
        return self._token_activity[min(self.n_active, self.concurrency)]

    def current_power(self) -> float:
        """Instantaneous server power in watts (zero while crashed)."""
        if self.failed:
            return 0.0
        return self.power_model.server_power(
            self.current_activity(), self.effective_ratio
        )

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def start_request(self, now: float, request: SampledRequest) -> int:
        """Begin serving ``request`` in a free slot; returns the slot id.

        Raises:
            SimulationError: If no slot is free.
        """
        if self.failed:
            raise SimulationError(f"{self.server_id}: server is failed")
        if not self.has_free_slot:
            raise SimulationError(f"{self.server_id}: no free slot")
        segments = cached_timeline_segments(
            self.model, self._spec, request.input_tokens, request.output_tokens
        )
        slot = self._next_slot
        self._next_slot += 1
        self.slots[slot] = ActiveRequest(
            request=request,
            segments=segments,
            phase_index=0,
            phase_end=now + segments[0].duration_at(self.effective_ratio),
        )
        return slot

    def advance_phase(self, now: float, slot: int) -> Optional[float]:
        """Move a slot to its next phase; returns the new phase-end time,
        or ``None`` when the request completed (and the slot is freed).

        Raises:
            SimulationError: If the slot is not active.
        """
        try:
            active = self.slots[slot]
        except KeyError:
            raise SimulationError(
                f"{self.server_id}: slot {slot} not active"
            ) from None
        active.phase_index += 1
        if active.phase_index >= len(active.segments):
            del self.slots[slot]
            return None
        segment = active.segments[active.phase_index]
        active.phase_end = now + segment.duration_at(self.effective_ratio)
        active.version += 1
        return active.phase_end

    def take_buffered(self) -> Optional[SampledRequest]:
        """Pop the buffered request, if any."""
        request, self.buffered = self.buffered, None
        return request

    def slot_snapshot(self, slot: int) -> Dict[str, Any]:
        """Recording payload for the phase currently running in a slot.

        Everything the span layer (:mod:`repro.obs.spans`) needs to
        reconstruct and counterfactual a phase: its name and index, the
        effective clock ratio it starts under, its full-clock duration
        and compute fraction (the inputs of
        :meth:`~repro.models.inference.PhaseSegment.duration_at`), and
        the planned end time. Read-only: observing a slot must not
        perturb the simulation.

        Raises:
            SimulationError: If the slot is not active.
        """
        try:
            active = self.slots[slot]
        except KeyError:
            raise SimulationError(
                f"{self.server_id}: slot {slot} not active"
            ) from None
        segment = active.segments[active.phase_index]
        return {
            "server": self.server_id,
            "slot": slot,
            "phase": segment.phase,
            "phase_index": active.phase_index,
            "ratio": self.effective_ratio,
            "full_clock_s": segment.duration_seconds,
            "compute_fraction": segment.compute_fraction,
            "planned_end": active.phase_end,
        }

    # ------------------------------------------------------------------
    # Server churn (fault injection)
    # ------------------------------------------------------------------
    def fail(self, now: float) -> List[SampledRequest]:
        """Crash the server: drop every in-flight and buffered request.

        Returns the dropped requests (slot order, buffered last) so the
        simulator can account them; the server contributes zero power and
        accepts no work until :meth:`recover`. Commanded clock/brake
        state is retained — the management plane keeps applying row-wide
        commands to the slot, so a recovering server rejoins with the
        current configuration.

        Raises:
            SimulationError: If the server is already failed.
        """
        if self.failed:
            raise SimulationError(f"{self.server_id}: already failed")
        dropped = [active.request for active in self.slots.values()]
        if self.buffered is not None:
            dropped.append(self.buffered)
        self.slots.clear()
        self.buffered = None
        self.failed = True
        return dropped

    def recover(self, now: float) -> None:
        """Rejoin the row idle, with the currently commanded clock state.

        Raises:
            SimulationError: If the server is not failed.
        """
        if not self.failed:
            raise SimulationError(f"{self.server_id}: not failed")
        self.failed = False

    # ------------------------------------------------------------------
    # Clock changes
    # ------------------------------------------------------------------
    def apply_clock(self, now: float, clock_ratio: float) -> Dict[int, float]:
        """Change the frequency cap; rescales all in-flight phases.

        Returns ``{slot: new_phase_end}`` for every rescheduled slot.

        Raises:
            ConfigurationError: If the ratio is outside ``(0, 1]``.
        """
        if not 0.0 < clock_ratio <= 1.0:
            raise ConfigurationError(f"clock_ratio {clock_ratio} outside (0, 1]")
        old_effective = self.effective_ratio
        self.clock_ratio = clock_ratio
        return self._rescale_phases(now, old_effective)

    def apply_brake(self, now: float, engaged: bool) -> Dict[int, float]:
        """Engage or release the power brake; rescales in-flight phases."""
        old_effective = self.effective_ratio
        self.braked = engaged
        return self._rescale_phases(now, old_effective)

    def _rescale_phases(
        self, now: float, old_effective: float
    ) -> Dict[int, float]:
        """Stretch/shrink remaining work after an effective-clock change."""
        new_effective = self.effective_ratio
        if math.isclose(old_effective, new_effective):
            return {}
        rescheduled: Dict[int, float] = {}
        for slot, active in self.slots.items():
            segment = active.segments[active.phase_index]
            old_duration = segment.duration_at(old_effective)
            remaining = max(0.0, active.phase_end - now)
            fraction_left = remaining / old_duration if old_duration > 0 else 0.0
            new_duration = segment.duration_at(new_effective)
            active.phase_end = now + fraction_left * new_duration
            active.version += 1
            rescheduled[slot] = active.phase_end
        return rescheduled
