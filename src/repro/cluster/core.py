"""The struct-of-arrays simulation core behind :class:`ClusterSimulator`.

:class:`SimulationCore` owns every piece of mutable state of one run —
what used to live in the locals and closures of ``ClusterSimulator.run``
— which buys three capabilities without changing a single simulated
outcome (the golden-parity suite pins bit-identity to the pre-refactor
simulator):

* **Struct-of-arrays hot path.** Per-server numeric state (activity,
  effective clock ratio, braked/failed flags, instantaneous power) is
  mirrored in numpy arrays (:class:`ServerArrays`), so group-wide power
  refreshes — cap and brake landings touch a whole priority pool at
  once — read the arrays and evaluate the power kernel vectorized
  instead of walking ``ServerSim`` objects. The running row-power sum
  still updates in per-index order, keeping the exact energy integral's
  float summation order unchanged.

* **Checkpointing.** Because all mutable state hangs off one object,
  :meth:`SimulationCore.snapshot` can deep-copy a mid-flight run (with
  immutables — requests, specs, segment tuples — shared via a pre-seeded
  memo) and :mod:`repro.exec.incremental` can resume it under a
  different controller. Cores pickle (``__getstate__`` re-keys the
  id-keyed maps) so checkpoints can live in the run cache's blob layer.

* **Sharding.** The telemetry/control block of the tick handler is
  reachable as methods, so a parent control plane can drive it over
  merged shard power (``outbox`` captures the command pushes to
  broadcast) while serve-only shards (:meth:`run_shard`) pause at tick
  barriers — see :mod:`repro.cluster.sharded`.

Per-event-kind kernel timing (:class:`KernelTimers`) is opt-in and
surfaces in ``result.observability["sim_core"]`` so hot-path regressions
show up in traces.
"""

from __future__ import annotations

import copy
import math
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.cluster.events import EventQueue
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.cluster.policy_base import GroupCaps
from repro.control.actions import ActionKind, ControlAction
from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, TelemetryFate
from repro.faults.plan import FaultPlan
from repro.faults.report import OverBudgetTracker, RobustnessReport
from repro.gpu.specs import A100_80GB
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.powerfail.protection import ProtectionRuntime
from repro.powerfail.topology import PowerTopology
from repro.telemetry.base import SampledInterface
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority


class KernelTimers:
    """Per-event-kind call/latency counters for the hot path.

    Opt-in: the default simulator runs the untimed loop, so disabled
    runs pay nothing (not even a clock read per event).
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Dict[str, List[float]] = {}

    def add(self, kind: str, seconds: float) -> None:
        cell = self.counters.get(kind)
        if cell is None:
            self.counters[kind] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{kind: {"calls": n, "seconds": s}}``, sorted by cost."""
        return {
            kind: {"calls": int(calls), "seconds": seconds}
            for kind, (calls, seconds) in sorted(
                self.counters.items(), key=lambda kv: -kv[1][1]
            )
        }


class ServerArrays:
    """Struct-of-arrays mirror of per-server numeric state.

    ``activity``/``failed`` are refreshed whenever a server's occupancy
    changes (every such change is followed by a power refresh);
    ``clock_ratio``/``braked``/``eff_ratio`` are updated at cap and
    brake landings. Group refreshes read only these arrays — no
    ``ServerSim`` attribute walks in the vectorized kernel.
    """

    __slots__ = ("activity", "clock_ratio", "braked", "failed", "eff_ratio")

    def __init__(self, n_servers: int) -> None:
        self.activity = np.zeros(n_servers, dtype=np.float64)
        self.clock_ratio = np.ones(n_servers, dtype=np.float64)
        self.braked = np.zeros(n_servers, dtype=bool)
        self.failed = np.zeros(n_servers, dtype=bool)
        self.eff_ratio = np.ones(n_servers, dtype=np.float64)


class SimulationCore:
    """All mutable state and event handlers of one simulation run.

    Built by :meth:`ClusterSimulator.start`; callers normally just
    ``run_all()`` then ``finalize()``. The attribute layout is the
    former ``run()`` local-variable set, verbatim — see the module
    docstring for why it is an object now.
    """

    def __init__(
        self,
        simulator: Any,
        requests: Sequence[SampledRequest],
        duration_s: float,
        shard_serving: bool = False,
    ) -> None:
        config = simulator.config
        self.config = config
        self.policy = simulator.policy
        self.power_model = simulator.power_model
        self.servers = simulator.servers
        self._index_by_priority = simulator._index_by_priority
        self._ids_by_priority = simulator._ids_by_priority
        self._all_ids = simulator._all_ids
        self.balancer = simulator.balancer
        self.requests = requests
        self.duration_s = duration_s
        self.timers: Optional[KernelTimers] = (
            KernelTimers() if simulator.kernel_timers else None
        )

        reliability = config.reliability
        self.reliability = reliability
        plan = config.fault_plan if config.fault_plan is not None \
            else FaultPlan.none()
        self.injector = FaultInjector(
            plan, duration_s=duration_s, n_servers=config.n_servers
        )
        self.interface = SampledInterface(
            name="row-telemetry",
            interval=config.telemetry_interval_s,
            in_band=False,
            delay=plan.telemetry.delay_s,
            noise_std=plan.telemetry.noise_std,
            seed=plan.seed,
        )
        self.actuator = simulator._build_actuator(plan)
        # With a perfect actuation path every command provably lands by
        # its spec latency, so the verify deadline would always pass:
        # elide it. This also keeps the event stream — and hence the
        # float summation order of the exact energy integral —
        # bit-identical to the original fault-free simulator.
        self.verify_commands = (
            plan.actuation.silent_failure_rate > 0.0
            or plan.actuation.delay_prob > 0.0
        )
        self.report = RobustnessReport(
            duration_s=duration_s,
            telemetry_dropout_windows=self.injector.dropout_window_count,
        )
        self.tracker = OverBudgetTracker(budget_w=config.provisioned_power_w)
        self.protection = config.protection
        self.peak_server_w = self.power_model.server_power(1.0, 1.0)

        # Observability. ``recording`` guards every hook point, so with
        # the default NullRecorder no event payload or metric update
        # ever happens and the run is bit-identical to an
        # uninstrumented one. Recorders observe only: they never touch
        # simulator state, RNG streams, or the float summation order.
        recorder = simulator.recorder
        self.recorder = recorder
        recording = recorder.enabled
        self.recording = recording
        self._set_kind_gates()
        self.obs: Optional[MetricsRegistry] = None
        self.util_hist = None
        self.latency_hists: Optional[Dict[Priority, Any]] = None
        self.request_ids: Dict[int, int] = {}
        # Per-tick utilization observations, batched into the
        # control.utilization histogram at finalize (appending a float
        # is far cheaper than a per-tick histogram update). Carried
        # through checkpoints so a resumed run finalizes the full list.
        self._util_samples: List[float] = []
        self._ctr_served = None
        self._ctr_dropped = None
        self._ctr_dropped_shed = None
        self._ctr_deferred = None
        self._wl_hists: Dict[str, Any] = {}
        if recording:
            obs = MetricsRegistry()
            self.obs = obs
            # Pre-register the counters cross_check compares so they
            # are present in the snapshot even when they end at zero.
            for _name in (
                "requests.served",
                "requests.dropped",
                "requests.lost_to_churn",
                "brake.engagements",
                "commands.cap_actions",
                "commands.issued",
                "commands.reissues",
                "fallback.entries",
                "telemetry.faults",
                "churn.failures",
                "churn.recoveries",
            ):
                obs.counter(_name)
            if self.protection is not None:
                for _name in (
                    "prot.trips",
                    "prot.reenergizations",
                    "shed.engagements",
                    "requests.lost_to_trips",
                    "requests.dropped_shed",
                    "requests.deferred",
                ):
                    obs.counter(_name)
            self.util_hist = obs.histogram("control.utilization")
            self.latency_hists = {
                p: obs.histogram(
                    f"latency.priority.{p.value}", LATENCY_BUCKETS
                )
                for p in Priority
            }
            self._cache_metric_handles()
            # Requests are identified in the trace by arrival order;
            # SampledRequest is frozen and id-stable for the run.
            self.request_ids = {id(r): i for i, r in enumerate(requests)}
            recorder.emit({
                "t": 0.0, "kind": "run_meta",
                "duration_s": duration_s,
                "n_servers": config.n_servers,
                "concurrency": self.servers[0].concurrency,
                "provisioned_power_w": config.provisioned_power_w,
                "idle_server_power_w":
                    self.power_model.server_power(0.0, 1.0),
                "brake_ratio": self.power_model.brake_ratio,
                "servers": {
                    s.server_id: s.priority.value for s in self.servers
                },
            })

        self.queue = EventQueue()
        self.metrics = {p: PriorityMetrics() for p in Priority}
        self.workload_metrics: Dict[str, PriorityMetrics] = {}

        # Running row power; server powers are piecewise constant, which
        # also makes the energy integral exact: accumulate power x dt at
        # every event boundary. ``server_power`` stays a Python float
        # list (scalar per-index updates keep the original summation
        # order); the SoA arrays mirror the rest.
        self.server_power = [s.current_power() for s in self.servers]
        self.row_power = sum(self.server_power)
        self.total_energy = 0.0
        self.last_event_time = 0.0
        self.arrays = ServerArrays(len(self.servers))

        # The power-delivery protection layer. ``prot is None`` (the
        # default) models infinite breaker capacity: no accumulator is
        # ever touched, no event is ever enqueued, and the run is
        # bit-identical to the unprotected simulator.
        self.prot: Optional[ProtectionRuntime] = None
        self.emergency = None
        self.pf_report = None
        self.shed_active = False
        self.shed_since = 0.0
        self.defer_counts: Dict[int, int] = {}
        if self.protection is not None:
            topology = PowerTopology.build(
                n_servers=config.n_servers,
                provisioned_power_w=config.provisioned_power_w,
                peak_server_w=self.peak_server_w,
                spec=self.protection,
            )
            self.prot = ProtectionRuntime(
                topology, self.protection, duration_s, self.server_power
            )
            self.emergency = self.protection.emergency
            self.pf_report = self.prot.report
            for push in self.prot.initial_events():
                self.queue.push(*push)

        # Actuation bookkeeping. Cap commands are generation-stamped per
        # priority group and brake commands version-stamped, so verify
        # and re-issue events can tell whether they have been superseded
        # — and so a utilization spike during a pending brake release
        # can cancel the release outright.
        self.commanded = GroupCaps.uncapped()
        self.cap_generation: Dict[Priority, int] = {p: 0 for p in Priority}
        self.capping_actions = 0
        self.brake_state = "off"  # off | pending_on | on | pending_off
        self.brake_version = 0
        self.brake_engaged_at = -float("inf")
        self.brake_events = 0

        # Telemetry-health state for graceful degradation.
        self.stale_ticks = 0
        self.identical_run = 0
        self.last_observed: Optional[float] = None
        self.in_fallback = False
        self.fallback_entered_at = 0.0

        self.server_index = {
            s.server_id: i for i, s in enumerate(self.servers)
        }
        self.clock_denominator = A100_80GB.max_sm_clock_mhz

        # Sharded-execution hooks (inert in serial runs). A serve-only
        # shard filters arrivals by the parent's per-epoch assignment
        # and applies broadcast commands unless their version was
        # cancelled; a control-plane parent logs its command pushes to
        # ``outbox`` for broadcast.
        self.shard_serving = shard_serving
        self.owned_arrivals: set = set()
        self.cancelled_brake_versions: set = set()
        self.outbox: Optional[List[Tuple[float, Any]]] = None
        self.outbox_cancels: Optional[List[int]] = None
        self._offered_priority: Dict[Priority, int] = {
            p: 0 for p in Priority
        }
        self._offered_workload: Dict[str, int] = {}

        for i, request in enumerate(requests):
            if request.arrival_time < duration_s:
                if shard_serving:
                    self.queue.push(
                        request.arrival_time, ("arrival", request, i)
                    )
                else:
                    self.queue.push(request.arrival_time, ("arrival", request))
        # Integer-indexed tick schedule: i * interval carries no
        # accumulated float error on long traces (unlike a +=-style or
        # np.arange cursor).
        n_ticks = int(math.ceil(duration_s / config.telemetry_interval_s))
        scheduled_ticks = 0
        for i in range(n_ticks):
            tick = i * config.telemetry_interval_s
            if tick >= duration_s:
                break
            self.queue.push(tick, ("tick",))
            scheduled_ticks += 1
        self.scheduled_ticks = scheduled_ticks
        # The tick count is known up front: accumulate power samples
        # into a preallocated array instead of growing a list.
        self.power_samples = np.empty(scheduled_ticks, dtype=np.float64)
        self.sample_cursor = 0
        for churn in self.injector.churn_events:
            self.queue.push(
                churn.fail_at_s, ("server_fail", churn.server_index)
            )
            if churn.recover_at_s is not None \
                    and churn.recover_at_s < duration_s:
                self.queue.push(
                    churn.recover_at_s,
                    ("server_recover", churn.server_index),
                )

    # ------------------------------------------------------------------
    # Pickling (checkpoint blobs). Id-keyed maps are re-keyed by request
    # index across the dump; the recorder never travels (restored cores
    # replay unrecorded). ``copy.deepcopy`` routes through the same
    # hooks, so :meth:`snapshot` inherits the fixups.
    # ------------------------------------------------------------------
    def _cache_metric_handles(self) -> None:
        """Bind the per-request counters and histograms once.

        The request lifecycle touches these on every arrival and
        completion; resolving them through the registry (a dotted-name
        dict lookup, and an f-string for the per-workload histograms)
        tens of thousands of times per run is measurable, so the hot
        sites go through these handles instead.
        """
        obs = self.obs
        self._ctr_served = obs.counter("requests.served")
        self._ctr_dropped = obs.counter("requests.dropped")
        self._wl_hists = {}
        if self.protection is not None:
            self._ctr_dropped_shed = obs.counter("requests.dropped_shed")
            self._ctr_deferred = obs.counter("requests.deferred")

    def _workload_hist(self, name: str):
        """The (cached) latency histogram for one workload."""
        hist = self._wl_hists.get(name)
        if hist is None:
            hist = self._wl_hists[name] = self.obs.histogram(
                f"latency.workload.{name}", LATENCY_BUCKETS
            )
        return hist

    def _set_kind_gates(self) -> None:
        """Precompute per-kind recording gates for the high-rate kinds.

        The serve-plane kinds fire tens of thousands of times per run;
        when the attached recorder chain has no use for one of them
        (:meth:`~repro.obs.recorder.TraceRecorder.wants` is ``False``
        all the way down) the hook point skips payload construction
        entirely. Metric updates are unaffected — they stay gated on
        ``recording`` alone, so the observability snapshot is identical
        whatever the recorder filters.
        """
        recording = self.recording
        recorder = self.recorder
        self._rec_phase_start = recording and recorder.wants("phase_start")
        self._rec_control = recording and recorder.wants("control")
        self._rec_req_arrival = recording and recorder.wants("req_arrival")
        self._rec_serve = recording and recorder.wants("serve")

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["recorder"] = None
        state["recording"] = False
        state["_rec_phase_start"] = False
        state["_rec_control"] = False
        state["_rec_req_arrival"] = False
        state["_rec_serve"] = False
        state["_ctr_served"] = None
        state["_ctr_dropped"] = None
        state["_ctr_dropped_shed"] = None
        state["_ctr_deferred"] = None
        state["_wl_hists"] = {}
        state["obs"] = None
        state["util_hist"] = None
        state["latency_hists"] = None
        state["request_ids"] = None
        if self.defer_counts:
            index_of = {id(r): i for i, r in enumerate(self.requests)}
            state["defer_counts"] = {
                index_of[key]: count
                for key, count in self.defer_counts.items()
            }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.recorder = NULL_RECORDER
        self.request_ids = {}
        if self.defer_counts:
            self.defer_counts = {
                id(self.requests[i]): count
                for i, count in self.defer_counts.items()
            }

    def attach_recorder(
        self, recorder: TraceRecorder, registry: MetricsRegistry
    ) -> None:
        """Re-arm recording on a restored checkpoint core.

        Checkpoint blobs deliberately exclude the recorder and the
        metrics registry (see ``__getstate__``), so restored cores
        normally replay unrecorded. An incremental resume that wants
        the full trace replays the prefix events from the family tape
        into ``recorder`` and then calls this with the registry pickled
        at the checkpoint: counters and histograms continue from their
        prefix values, and the suffix emits exactly the events a cold
        recorded run would.
        """
        self.recorder = recorder
        self.recording = recorder.enabled
        self._set_kind_gates()
        self.obs = registry
        self.util_hist = registry.histogram("control.utilization")
        self.latency_hists = {
            p: registry.histogram(
                f"latency.priority.{p.value}", LATENCY_BUCKETS
            )
            for p in Priority
        }
        self._cache_metric_handles()
        self.request_ids = {id(r): i for i, r in enumerate(self.requests)}

    def snapshot(self) -> "SimulationCore":
        """Deep-copy this mid-flight run into an independent core.

        Immutable structure — the request list and objects, config,
        power model, per-server specs and shared segment tuples — is
        shared between the original and the copy via a pre-seeded memo;
        everything mutable (servers, slots, queue, RNGs, policy,
        injector/protection state) is copied. The copy replays
        unrecorded (see ``__getstate__``).
        """
        memo: Dict[int, Any] = {id(self.requests): self.requests}
        for request in self.requests:
            memo[id(request)] = request
        for obj in (
            self.config, self.power_model, self.reliability,
            self._index_by_priority, self._ids_by_priority, self._all_ids,
        ):
            memo[id(obj)] = obj
        for server in self.servers:
            memo[id(server.model)] = server.model
            memo[id(server._spec)] = server._spec
            memo[id(server._profile)] = server._profile
            memo[id(server._token_activity)] = server._token_activity
            for active in server.slots.values():
                memo[id(active.segments)] = active.segments
        return copy.deepcopy(self, memo)

    # ------------------------------------------------------------------
    # Power refresh kernels
    # ------------------------------------------------------------------
    def _refresh_power(self, now: float, index: int) -> None:
        server = self.servers[index]
        arrays = self.arrays
        if server.failed:
            arrays.failed[index] = True
            arrays.activity[index] = 0.0
            new_power = 0.0
        else:
            arrays.failed[index] = False
            activity = server.current_activity()
            arrays.activity[index] = activity
            new_power = self.power_model.server_power(
                activity, server.effective_ratio
            )
        self.row_power += new_power - self.server_power[index]
        self.server_power[index] = new_power
        if self.prot is not None:
            for push in self.prot.update_server_power(now, index, new_power):
                self._push(*push)

    def _refresh_group(self, now: float, indices: Sequence[int]) -> None:
        """Refresh many servers at once (cap/brake landings).

        The vectorized kernel reads only the SoA arrays — activity and
        effective ratio were synced at the last occupancy change and
        the landing that triggered this refresh — and evaluates the
        power formula per effective-clock group with the exact
        elementwise IEEE operations of the scalar path. The running
        row-power updates keep the original per-index summation order
        so the energy integral is unchanged.
        """
        arrays = self.arrays
        eff = arrays.eff_ratio
        failed = arrays.failed
        new_power: Dict[int, float] = {}
        by_ratio: Dict[float, List[int]] = {}
        for index in indices:
            if failed[index]:
                new_power[index] = 0.0
            else:
                by_ratio.setdefault(float(eff[index]), []).append(index)
        for ratio, members in by_ratio.items():
            powers = self.power_model.server_power_batch(
                arrays.activity[members], ratio
            )
            for i, power in zip(members, powers.tolist()):
                new_power[i] = power
        server_power = self.server_power
        for index in indices:
            power = new_power[index]
            self.row_power += power - server_power[index]
            server_power[index] = power
        if self.prot is not None:
            for index in indices:
                for push in self.prot.update_server_power(
                    now, index, new_power[index]
                ):
                    self._push(*push)

    def _push(self, time: float, payload: Any) -> None:
        self.queue.push(time, payload)
        if self.outbox is not None:
            self.outbox.append((time, payload))

    def _workload_tier(self, name: str) -> PriorityMetrics:
        tier = self.workload_metrics.get(name)
        if tier is None:
            tier = PriorityMetrics()
            self.workload_metrics[name] = tier
        return tier

    # ------------------------------------------------------------------
    # Request lifecycle helpers
    # ------------------------------------------------------------------
    def _schedule_slot(self, index: int, slot: int) -> None:
        active = self.servers[index].slots.get(slot)
        if active is None:
            return
        self.queue.push(
            active.phase_end, ("phase", index, slot, active.version)
        )

    def _start_on(self, now: float, index: int, request: SampledRequest
                  ) -> None:
        slot = self.servers[index].start_request(now, request)
        self._refresh_power(now, index)
        self._schedule_slot(index, slot)
        if self._rec_phase_start:
            self._emit_phase_start(now, index, slot)

    # ------------------------------------------------------------------
    # Span lifecycle emission (observe-only; every call is guarded by
    # ``recording``, so unrecorded runs never reach these).
    # ------------------------------------------------------------------
    def _emit_phase_start(self, now: float, index: int, slot: int) -> None:
        server = self.servers[index]
        active = server.slots.get(slot)
        if active is None:
            return
        payload = server.slot_snapshot(slot)
        payload["t"] = now
        payload["kind"] = "phase_start"
        payload["request_id"] = self.request_ids[id(active.request)]
        self.recorder.emit(payload)

    def _emit_rescales(
        self,
        now: float,
        index: int,
        rescheduled: Dict[int, float],
        old_ratio: float,
        cause: str,
        stamp: Dict[str, Any],
    ) -> None:
        server = self.servers[index]
        new_ratio = server.effective_ratio
        for slot, new_end in rescheduled.items():
            active = server.slots[slot]
            event = {
                "t": now, "kind": "phase_rescale",
                "request_id": self.request_ids[id(active.request)],
                "server": server.server_id, "slot": slot,
                "phase": active.segments[active.phase_index].phase,
                "old_ratio": old_ratio, "new_ratio": new_ratio,
                "new_end": new_end, "cause": cause,
            }
            event.update(stamp)
            self.recorder.emit(event)

    # ------------------------------------------------------------------
    # The reliable-command layer: every issue schedules a landing
    # (unless the interface silently drops it) plus a verify event;
    # failed verifies re-issue with capped exponential backoff.
    # ------------------------------------------------------------------
    def _issue_cap(
        self,
        now: float,
        priority: Priority,
        clock_mhz: Optional[float],
        generation: int,
        attempts: int,
    ) -> None:
        targets = self._ids_by_priority[priority]
        if clock_mhz is None:
            action = ControlAction.frequency_unlock(targets)
        else:
            action = ControlAction.frequency_lock(targets, clock_mhz)
        record = self.actuator.issue(now, action)
        self.report.commands_issued += 1
        extra = self.injector.actuation_extra_delay()
        if self.recording:
            self.obs.counter("commands.issued").inc()
            self.recorder.emit({
                "t": now, "kind": "cap_issue",
                "priority": priority.value, "clock_mhz": clock_mhz,
                "generation": generation, "attempts": attempts,
                "silent": record.failed_silently,
            })
        if record.failed_silently:
            self.report.silent_actuation_failures += 1
        else:
            self._push(
                record.effective_at + extra,
                ("cap", priority, clock_mhz, generation),
            )
        if self.verify_commands:
            self.queue.push(
                now + self.actuator.latency_for(action.kind)
                + self.reliability.verify_margin_s,
                ("verify_cap", priority, clock_mhz, generation, attempts),
            )

    def _issue_brake(
        self, now: float, want_on: bool, version: int, attempts: int
    ) -> None:
        kind = ActionKind.POWER_BRAKE if want_on \
            else ActionKind.BRAKE_RELEASE
        record = self.actuator.issue(
            now, ControlAction(kind, self._all_ids)
        )
        self.report.commands_issued += 1
        extra = self.injector.actuation_extra_delay()
        if self.recording:
            self.obs.counter("commands.issued").inc()
            self.recorder.emit({
                "t": now, "kind": "brake_issue",
                "want_on": want_on, "version": version,
                "attempts": attempts,
                "silent": record.failed_silently,
            })
        if record.failed_silently:
            self.report.silent_actuation_failures += 1
        else:
            self._push(
                record.effective_at + extra,
                ("brake_on" if want_on else "brake_off", version),
            )
        if self.verify_commands:
            self.queue.push(
                now + self.actuator.latency_for(kind)
                + self.reliability.verify_margin_s,
                ("verify_brake", want_on, version, attempts),
            )

    def _engage_brake(self, now: float, source: str = "policy") -> None:
        self.brake_state = "pending_on"
        self.brake_version += 1
        if self.recording:
            self.obs.counter("brake.engagements").inc()
            self.recorder.emit({
                "t": now, "kind": "brake_request",
                "source": source, "version": self.brake_version,
            })
        self._issue_brake(now, True, self.brake_version, 0)

    def _command_caps(self, now: float, desired: GroupCaps) -> None:
        commanded = self.commanded
        if desired.low_clock_mhz != commanded.low_clock_mhz:
            self.cap_generation[Priority.LOW] += 1
            self._issue_cap(
                now, Priority.LOW, desired.low_clock_mhz,
                self.cap_generation[Priority.LOW], 0,
            )
            self.capping_actions += 1
            if self.recording:
                self.obs.counter("commands.cap_actions").inc()
        if desired.high_clock_mhz != commanded.high_clock_mhz:
            self.cap_generation[Priority.HIGH] += 1
            self._issue_cap(
                now, Priority.HIGH, desired.high_clock_mhz,
                self.cap_generation[Priority.HIGH], 0,
            )
            self.capping_actions += 1
            if self.recording:
                self.obs.counter("commands.cap_actions").inc()
        self.commanded = desired

    # ------------------------------------------------------------------
    # Emergency response to power-delivery incidents (only reachable
    # when a ProtectionSpec is attached): shed low-priority load and
    # clamp survivors to safe caps while any device is tripped or
    # carrying a trip-risk flag.
    # ------------------------------------------------------------------
    def _emit_capacity_status(self, now: float) -> None:
        offline_w, offline_frac = self.prot.offline_stats(self.peak_server_w)
        self.recorder.emit({
            "t": now, "kind": "capacity_status",
            "offline_capacity_w": offline_w,
            "offline_fraction": offline_frac,
        })

    def _update_shed(self, now: float) -> None:
        emergency = self.emergency
        if emergency is None or not emergency.enabled:
            return
        want = self.prot.in_emergency
        if want and not self.shed_active:
            self.shed_active = True
            self.shed_since = now
            self.pf_report.shed_engagements += 1
            if self.recording:
                self.obs.counter("shed.engagements").inc()
                self.recorder.emit({"t": now, "kind": "shed_engage"})
            self._command_caps(now, emergency.clamp(self.commanded))
        elif not want and self.shed_active:
            self.shed_active = False
            self.pf_report.time_shedding_s += max(
                0.0,
                min(now, self.duration_s) - min(self.shed_since,
                                                self.duration_s),
            )
            if self.recording:
                self.recorder.emit({"t": now, "kind": "shed_release"})

    # ------------------------------------------------------------------
    # The control plane: policy evaluation on each delivered telemetry
    # observation. In sharded runs the parent core runs exactly this
    # code over the merged row power.
    # ------------------------------------------------------------------
    def _control_step(self, now: float, observed_power: float) -> None:
        utilization = observed_power / self.config.provisioned_power_w
        if self.recording:
            self._util_samples.append(utilization)
            if self._rec_control:
                self.recorder.emit({
                    "t": now, "kind": "control",
                    "utilization": utilization,
                    "observed_power_w": observed_power,
                    "brake_state": self.brake_state,
                })
        # --- Brake safety logic (all policies carry the brake).
        if self.brake_state in ("off", "pending_off") \
                and self.policy.wants_brake(utilization):
            if self.brake_state == "pending_off":
                # A spike while the release is in flight: cancel the
                # pending release (the stamped brake_off event is now
                # stale) — the brake never disengages, so this is not a
                # new engagement.
                if self.outbox_cancels is not None:
                    self.outbox_cancels.append(self.brake_version)
                self.brake_version += 1
                self.brake_state = "on"
                if self.recording:
                    self.recorder.emit({
                        "t": now, "kind": "brake_cancel_release",
                        "version": self.brake_version,
                    })
            else:
                self.brake_events += 1
                self._engage_brake(now)
        elif (
            self.brake_state == "on"
            and now - self.brake_engaged_at >= self.config.brake_hold_s
            and self.policy.brake_release_ok(utilization)
        ):
            self.brake_state = "pending_off"
            self.brake_version += 1
            if self.recording:
                self.recorder.emit({
                    "t": now, "kind": "brake_release_request",
                    "version": self.brake_version,
                })
            self._issue_brake(now, False, self.brake_version, 0)
        # --- Frequency-capping policy.
        desired = self.policy.desired_caps(utilization, now)
        if self.prot is not None and self.shed_active:
            # Safe-mode caps outrank the policy while shedding.
            desired = self.emergency.clamp(desired)
        self._command_caps(now, desired)

    def _deliver_observation(self, now: float, value: float) -> None:
        reliability = self.reliability
        if reliability.detect_frozen and self.last_observed is not None \
                and value == self.last_observed:
            self.identical_run += 1
        else:
            self.identical_run = 0
        self.last_observed = value
        if reliability.detect_frozen \
                and self.identical_run >= reliability.frozen_after_ticks:
            # A sensor repeating itself verbatim is as good as dark.
            self.stale_ticks += 1
            return
        self.stale_ticks = 0
        if self.in_fallback:
            self.in_fallback = False
            if self.recording:
                self.recorder.emit({"t": now, "kind": "fallback_exit"})
        self._control_step(now, value)

    def _group_cap_applied(
        self, priority: Priority, clock_mhz: Optional[float]
    ) -> bool:
        ratio = 1.0 if clock_mhz is None \
            else clock_mhz / self.clock_denominator
        return all(
            math.isclose(self.servers[i].clock_ratio, ratio)
            for i in self._index_by_priority[priority]
        )

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run_all(
        self,
        checkpoint_epoch_s: Optional[float] = None,
        checkpoint_cb: Optional[
            Callable[[float, "SimulationCore"], None]
        ] = None,
    ) -> None:
        """Process every event (arrivals, ticks, landings, the drain).

        With ``checkpoint_epoch_s``, ``checkpoint_cb(T, self)`` fires
        whenever the head of the queue first reaches an epoch boundary
        ``T = k * checkpoint_epoch_s`` — i.e. with every event strictly
        before ``T`` processed and none at or after it, which is exactly
        the state an incremental resume at ``T`` needs.
        """
        queue = self.queue
        timers = self.timers
        next_cp = checkpoint_epoch_s
        while queue:
            if next_cp is not None:
                head = queue.peek_time()
                while next_cp is not None and head >= next_cp:
                    checkpoint_cb(next_cp, self)
                    next_cp += checkpoint_epoch_s
                    if next_cp > self.duration_s:
                        next_cp = None
            now, event = queue.pop()
            if timers is None:
                self._process(now, event)
            else:
                t0 = perf_counter()
                self._process(now, event)
                timers.add(event[0], perf_counter() - t0)

    def run_shard(self):
        """Serve-only event loop for one shard (a generator).

        Yields ``("tick", now, row_power, free_slots)`` at every
        telemetry tick — the caller (the epoch-synchronized driver in
        :mod:`repro.cluster.sharded`) responds via ``send()`` with a
        dict of ``push`` (command landings to schedule), ``own``
        (global indices of arrivals assigned to this shard for the next
        epoch) and ``cancel`` (superseded brake versions). Everything
        else — arrivals, phase advancement, landings — runs locally.
        """
        queue = self.queue
        while queue:
            now, event = queue.pop()
            if event[0] == "tick":
                self._integrate(now)
                self.power_samples[self.sample_cursor] = self.row_power
                self.sample_cursor += 1
                reply = yield ("tick", now, self.row_power,
                               self._free_slots())
                for version in reply.get("cancel", ()):
                    self.cancelled_brake_versions.add(version)
                self.owned_arrivals.update(reply.get("own", ()))
                for time, payload in reply.get("push", ()):
                    queue.push(time, payload)
            else:
                self._process(now, event)

    def _free_slots(self) -> Dict[str, int]:
        """Free concurrency slots per priority pool (shard tick report)."""
        free = {}
        for priority, indices in self._index_by_priority.items():
            total = 0
            for i in indices:
                server = self.servers[i]
                if not server.failed:
                    total += server.concurrency - len(server.slots)
            free[priority.value] = total
        return free

    def _integrate(self, now: float) -> None:
        # Energy and breaker exposure integrate over [0, duration_s]
        # only. In-flight requests still drain after duration_s (and
        # their latencies count), but that drain is outside the
        # reported window, so the integral clamps.
        if now <= self.duration_s:
            dt = now - self.last_event_time
        elif self.last_event_time < self.duration_s:
            dt = self.duration_s - self.last_event_time
        else:
            dt = 0.0
        if dt > 0.0:
            self.total_energy += self.row_power * dt
            self.tracker.account(self.row_power, dt)
        self.last_event_time = now

    def _process(self, now: float, event: Tuple) -> None:
        self._integrate(now)
        kind = event[0]
        recording = self.recording
        metrics = self.metrics

        if kind == "arrival":
            request: SampledRequest = event[1]
            if self.shard_serving:
                if event[2] not in self.owned_arrivals:
                    return
                self._offered_priority[request.priority] += 1
                name = request.workload.name
                self._offered_workload[name] = \
                    self._offered_workload.get(name, 0) + 1
            if self.prot is not None and self.shed_active:
                prior = self.defer_counts.get(id(request), 0)
                action = self.emergency.shed_action(
                    request.priority.value, request.workload.name, prior,
                )
                if action == "defer":
                    self.defer_counts[id(request)] = prior + 1
                    self.queue.push(
                        now + self.emergency.defer_s, ("arrival", request)
                    )
                    self.pf_report.requests_deferred += 1
                    if recording:
                        self._ctr_deferred.inc()
                        self.recorder.emit({
                            "t": now, "kind": "shed_defer",
                            "request_id": self.request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "delay_s": self.emergency.defer_s,
                            "deferrals": prior + 1,
                        })
                    return
                if action == "drop":
                    metrics[request.priority].dropped += 1
                    self._workload_tier(request.workload.name).dropped += 1
                    self.pf_report.requests_dropped_shed += 1
                    if recording:
                        self._ctr_dropped.inc()
                        self._ctr_dropped_shed.inc()
                        if self._rec_req_arrival:
                            self.recorder.emit({
                                "t": now, "kind": "req_arrival",
                                "request_id":
                                    self.request_ids[id(request)],
                                "priority": request.priority.value,
                                "workload": request.workload.name,
                                "input_tokens": request.input_tokens,
                                "output_tokens": request.output_tokens,
                                "server": None, "queued": False,
                            })
                        self.recorder.emit({
                            "t": now, "kind": "drop",
                            "request_id": self.request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "reason": "shed",
                        })
                    return
            server = self.balancer.route(request.priority)
            if server is None:
                metrics[request.priority].dropped += 1
                self._workload_tier(request.workload.name).dropped += 1
                if recording:
                    self._ctr_dropped.inc()
                    if self._rec_req_arrival:
                        self.recorder.emit({
                            "t": now, "kind": "req_arrival",
                            "request_id": self.request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "input_tokens": request.input_tokens,
                            "output_tokens": request.output_tokens,
                            "server": None, "queued": False,
                        })
                    self.recorder.emit({
                        "t": now, "kind": "drop",
                        "request_id": self.request_ids[id(request)],
                        "priority": request.priority.value,
                        "workload": request.workload.name,
                        "reason": "saturated",
                    })
                return
            index = self.server_index[server.server_id]
            if self._rec_req_arrival:
                self.recorder.emit({
                    "t": now, "kind": "req_arrival",
                    "request_id": self.request_ids[id(request)],
                    "priority": request.priority.value,
                    "workload": request.workload.name,
                    "input_tokens": request.input_tokens,
                    "output_tokens": request.output_tokens,
                    "server": server.server_id,
                    "queued": not server.has_free_slot,
                })
            if server.has_free_slot:
                self._start_on(now, index, request)
            else:
                server.buffered = request

        elif kind == "phase":
            index, slot, version = event[1], event[2], event[3]
            server = self.servers[index]
            active = server.slots.get(slot)
            if active is None or active.version != version:
                return  # superseded by a clock change
            finished = active.request
            next_end = server.advance_phase(now, slot)
            if next_end is not None:
                self._refresh_power(now, index)
                self._schedule_slot(index, slot)
                if self._rec_phase_start:
                    self._emit_phase_start(now, index, slot)
                return
            # Request complete; the slot is free again.
            tier = metrics[finished.priority]
            tier.served += 1
            tier.latencies.append(now - finished.arrival_time)
            by_workload = self._workload_tier(finished.workload.name)
            by_workload.served += 1
            by_workload.latencies.append(now - finished.arrival_time)
            if recording:
                # Latency histograms batch-populate at finalize from
                # the tier latency lists appended above.
                self._ctr_served.inc()
                if self._rec_serve:
                    self.recorder.emit({
                        "t": now, "kind": "serve",
                        "request_id": self.request_ids[id(finished)],
                        "priority": finished.priority.value,
                        "workload": finished.workload.name,
                        "latency_s": now - finished.arrival_time,
                        "server": server.server_id,
                    })
            queued = server.take_buffered()
            if queued is not None:
                self._start_on(now, index, queued)
            else:
                self._refresh_power(now, index)

        elif kind == "tick":
            self.power_samples[self.sample_cursor] = self.row_power
            self.sample_cursor += 1
            sample = self.interface.read(now, lambda _t: self.row_power)
            fate = self.injector.telemetry_fate(now)
            if recording and fate is not TelemetryFate.OK:
                self.obs.counter("telemetry.faults").inc()
                self.recorder.emit({
                    "t": now, "kind": "telemetry_fault",
                    "fate": fate.value,
                })
            if fate is TelemetryFate.DROPPED:
                self.stale_ticks += 1
            elif fate is TelemetryFate.FROZEN and self.last_observed is None:
                self.stale_ticks += 1  # nothing to repeat yet: a dropout
            else:
                if fate is TelemetryFate.FROZEN:
                    value = self.last_observed
                else:
                    value = self.injector.perturb_sample(sample.value)
                if sample.time <= now:
                    self._deliver_observation(now, value)
                else:
                    self.queue.push(sample.time, ("obs", value))
            # --- Graceful degradation on persistent staleness.
            if self.stale_ticks > self.report.max_missed_ticks:
                self.report.max_missed_ticks = self.stale_ticks
            if self.stale_ticks >= self.reliability.fallback_after_ticks:
                if not self.in_fallback:
                    self.in_fallback = True
                    self.fallback_entered_at = now
                    self.report.fallback_entries += 1
                    if recording:
                        self.obs.counter("fallback.entries").inc()
                        self.recorder.emit({
                            "t": now, "kind": "fallback_enter",
                            "stale_ticks": self.stale_ticks,
                        })
                    self._command_caps(now, GroupCaps(
                        low_clock_mhz=self.reliability.safe_low_clock_mhz,
                        high_clock_mhz=self.reliability.safe_high_clock_mhz,
                    ))
                elif (
                    self.brake_state == "off"
                    and now - self.fallback_entered_at
                    >= self.reliability.brake_after_stale_s
                ):
                    self.brake_events += 1
                    self.report.fallback_brakes += 1
                    self._engage_brake(now, source="fallback")

        elif kind == "obs":
            self._deliver_observation(now, event[1])

        elif kind == "cap":
            priority, clock_mhz = event[1], event[2]
            ratio = 1.0
            if clock_mhz is not None:
                ratio = clock_mhz / self.clock_denominator
            indices = self._index_by_priority[priority]
            old_ratios: Optional[List[float]] = None
            if recording:
                self.recorder.emit({
                    "t": now, "kind": "cap_land",
                    "priority": priority.value, "clock_mhz": clock_mhz,
                    "generation": event[3], "ratio": ratio,
                })
                old_ratios = [
                    self.servers[i].effective_ratio for i in indices
                ]
            group_rescheduled = [
                self.servers[index].apply_clock(now, ratio)
                for index in indices
            ]
            arrays = self.arrays
            arrays.clock_ratio[indices] = ratio
            arrays.eff_ratio[indices] = np.where(
                arrays.braked[indices], self.power_model.brake_ratio, ratio
            )
            self._refresh_group(now, indices)
            for pos, (index, rescheduled) in enumerate(
                zip(indices, group_rescheduled)
            ):
                for slot in rescheduled:
                    self._schedule_slot(index, slot)
                if recording and rescheduled:
                    self._emit_rescales(
                        now, index, rescheduled, old_ratios[pos],
                        cause="cap", stamp={
                            "priority": priority.value,
                            "generation": event[3],
                        },
                    )

        elif kind == "verify_cap":
            priority, clock_mhz, generation, attempts = event[1:]
            if generation != self.cap_generation[priority]:
                return  # superseded by a newer command
            if self._group_cap_applied(priority, clock_mhz):
                self.report.commands_verified += 1
                if attempts > 0:
                    self.report.commands_recovered += 1
                if recording:
                    self.recorder.emit({
                        "t": now, "kind": "cap_verify",
                        "priority": priority.value,
                        "generation": generation,
                        "attempts": attempts,
                        "ok": True, "abandoned": False,
                    })
                return
            self.report.failures_detected += 1
            abandoned = attempts >= self.reliability.max_retries
            if recording:
                self.recorder.emit({
                    "t": now, "kind": "cap_verify",
                    "priority": priority.value,
                    "generation": generation, "attempts": attempts,
                    "ok": False, "abandoned": abandoned,
                })
            if abandoned:
                self.report.commands_unrecovered += 1
                return
            self.queue.push(
                now + self.reliability.backoff_s(attempts + 1),
                ("reissue_cap", priority, clock_mhz, generation,
                 attempts + 1),
            )

        elif kind == "reissue_cap":
            priority, clock_mhz, generation, attempts = event[1:]
            if generation != self.cap_generation[priority]:
                return
            self.report.reissues += 1
            if recording:
                self.obs.counter("commands.reissues").inc()
                self.recorder.emit({
                    "t": now, "kind": "cap_reissue",
                    "priority": priority.value, "clock_mhz": clock_mhz,
                    "generation": generation, "attempts": attempts,
                })
            self._issue_cap(now, priority, clock_mhz, generation, attempts)

        elif kind == "brake_on":
            if self.shard_serving:
                if event[1] in self.cancelled_brake_versions:
                    return
            elif self.brake_state != "pending_on" \
                    or event[1] != self.brake_version:
                return
            else:
                self.brake_state = "on"
                self.brake_engaged_at = now
            self._apply_brake_landing(now, True, event[1])

        elif kind == "brake_off":
            if self.shard_serving:
                if event[1] in self.cancelled_brake_versions:
                    return
            elif self.brake_state != "pending_off" \
                    or event[1] != self.brake_version:
                return
            else:
                self.brake_state = "off"
            self._apply_brake_landing(now, False, event[1])

        elif kind == "verify_brake":
            want_on, version, attempts = event[1], event[2], event[3]
            if version != self.brake_version:
                return  # superseded (including cancelled releases)
            if all(s.braked == want_on for s in self.servers):
                self.report.commands_verified += 1
                if attempts > 0:
                    self.report.commands_recovered += 1
                if recording:
                    self.recorder.emit({
                        "t": now, "kind": "brake_verify",
                        "want_on": want_on, "version": version,
                        "attempts": attempts,
                        "ok": True, "abandoned": False,
                    })
                return
            self.report.failures_detected += 1
            abandoned = attempts >= self.reliability.max_retries
            if recording:
                self.recorder.emit({
                    "t": now, "kind": "brake_verify",
                    "want_on": want_on, "version": version,
                    "attempts": attempts,
                    "ok": False, "abandoned": abandoned,
                })
            if abandoned:
                self.report.commands_unrecovered += 1
                return
            self.queue.push(
                now + self.reliability.backoff_s(attempts + 1),
                ("reissue_brake", want_on, version, attempts + 1),
            )

        elif kind == "reissue_brake":
            want_on, version, attempts = event[1], event[2], event[3]
            if version != self.brake_version:
                return
            self.report.reissues += 1
            if recording:
                self.obs.counter("commands.reissues").inc()
                self.recorder.emit({
                    "t": now, "kind": "brake_reissue",
                    "want_on": want_on, "version": version,
                    "attempts": attempts,
                })
            self._issue_brake(now, want_on, version, attempts)

        elif kind == "server_fail":
            index = event[1]
            server = self.servers[index]
            if server.failed:
                return
            dropped_requests = server.fail(now)
            for request in dropped_requests:
                metrics[request.priority].dropped += 1
                self._workload_tier(request.workload.name).dropped += 1
                self.report.requests_lost_to_churn += 1
                if recording:
                    self._ctr_dropped.inc()
                    self.obs.counter("requests.lost_to_churn").inc()
                    self.recorder.emit({
                        "t": now, "kind": "drop",
                        "request_id": self.request_ids[id(request)],
                        "priority": request.priority.value,
                        "workload": request.workload.name,
                        "reason": "churn",
                        "server": server.server_id,
                    })
            self.report.server_failures += 1
            if recording:
                self.obs.counter("churn.failures").inc()
                self.recorder.emit({
                    "t": now, "kind": "server_fail",
                    "server": server.server_id, "index": index,
                    "dropped": len(dropped_requests),
                })
            self._refresh_power(now, index)

        elif kind == "server_recover":
            index = event[1]
            server = self.servers[index]
            if not server.failed:
                return
            if self.prot is not None and self.prot.is_deenergized(index):
                # The churn recovery raced a breaker trip: the server
                # has no feed until its protection device re-energizes,
                # which subsumes this recovery.
                return
            server.recover(now)
            self.report.server_recoveries += 1
            if recording:
                self.obs.counter("churn.recoveries").inc()
                self.recorder.emit({
                    "t": now, "kind": "server_recover",
                    "server": server.server_id, "index": index,
                })
            self._refresh_power(now, index)

        elif kind == "prot":
            if now > self.duration_s:
                # Breaker exposure is modeled over the reported window
                # only. Dropping late projections also guarantees
                # termination: a breaker overloaded even at idle would
                # otherwise trip/restore forever and the post-horizon
                # drain would never empty the queue.
                return
            device_id, target, epoch = event[1], event[2], event[3]
            outcome = self.prot.on_projection(now, device_id, target, epoch)
            if outcome is None:
                return  # superseded by a later rate change
            fired, info, pushes = outcome
            for push in pushes:
                self.queue.push(*push)
            if fired in ("risk", "clear"):
                if recording:
                    self.recorder.emit({
                        "t": now, "kind": "trip_risk",
                        "device": device_id,
                        "device_level": info["device_level"],
                        "accumulator": info["accumulator"],
                        "overload": info["overload"],
                        "at_risk": 1.0 if fired == "risk" else 0.0,
                    })
                self._update_shed(now)
                return
            # The breaker opens: fail the subtree mid-flight. The load
            # balancer redistributes subsequent arrivals onto
            # survivors, which can push a sibling domain over its own
            # limit — the cascade needs no special code.
            covered = self.prot.begin_trip(device_id, now)
            dropped_count = 0
            for index in covered:
                server = self.servers[index]
                if server.failed:
                    self._refresh_power(now, index)
                    continue
                for request in server.fail(now):
                    metrics[request.priority].dropped += 1
                    self._workload_tier(request.workload.name).dropped += 1
                    self.pf_report.requests_lost_to_trips += 1
                    dropped_count += 1
                    if recording:
                        self._ctr_dropped.inc()
                        self.obs.counter("requests.lost_to_trips").inc()
                        self.recorder.emit({
                            "t": now, "kind": "drop",
                            "request_id": self.request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "reason": "trip",
                            "server": server.server_id,
                            "device": device_id,
                        })
                self._refresh_power(now, index)
            record, restore_push = self.prot.commit_trip(
                device_id, now, dropped_count
            )
            self.queue.push(*restore_push)
            if recording:
                self.obs.counter("prot.trips").inc()
                offline_w, offline_frac = self.prot.offline_stats(
                    self.peak_server_w
                )
                payload = dict(record)
                payload["kind"] = "trip"
                payload["offline_capacity_w"] = offline_w
                payload["offline_fraction"] = offline_frac
                self.recorder.emit(payload)
                self._emit_capacity_status(now)
            self._update_shed(now)

        elif kind == "prot_restore":
            if now > self.duration_s:
                # Servers still dark at the horizon stay dark; the
                # report clamps their offline time to the window.
                return
            device_id, step, version = event[1], event[2], event[3]
            outcome = self.prot.restore_step(device_id, step, version, now)
            if outcome is None:
                return  # superseded by a newer trip
            batch, next_push, done = outcome
            recovered = []
            for index in batch:
                server = self.servers[index]
                if server.failed:
                    server.recover(now)
                    self._refresh_power(now, index)
                    recovered.append(server.server_id)
            if recording:
                self.recorder.emit({
                    "t": now, "kind": "reenergize",
                    "device": device_id, "step": step,
                    "servers": recovered,
                })
            if next_push is not None:
                self.queue.push(*next_push)
            if done:
                self.pf_report.reenergizations += 1
                if recording:
                    self.obs.counter("prot.reenergizations").inc()
                    self.recorder.emit({
                        "t": now, "kind": "reenergize_done",
                        "device": device_id,
                    })
                    self._emit_capacity_status(now)
                self._update_shed(now)

        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind!r}")

    def _apply_brake_landing(
        self, now: float, engaged: bool, version: int
    ) -> None:
        recording = self.recording
        all_indices = range(len(self.servers))
        old_ratios = None
        if recording:
            self.recorder.emit({
                "t": now, "kind": "brake_land",
                "on": engaged, "version": version,
            })
            old_ratios = [
                self.servers[i].effective_ratio for i in all_indices
            ]
        group_rescheduled = [
            self.servers[index].apply_brake(now, engaged)
            for index in all_indices
        ]
        arrays = self.arrays
        if engaged:
            arrays.braked[:] = True
            arrays.eff_ratio[:] = self.power_model.brake_ratio
        else:
            arrays.braked[:] = False
            arrays.eff_ratio[:] = arrays.clock_ratio
        self._refresh_group(now, all_indices)
        for index, rescheduled in zip(all_indices, group_rescheduled):
            for slot in rescheduled:
                self._schedule_slot(index, slot)
            if recording and rescheduled:
                self._emit_rescales(
                    now, index, rescheduled, old_ratios[index],
                    cause="brake", stamp={
                        "version": version, "on": engaged,
                    },
                )

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> SimulationResult:
        """Check conservation, settle reports, and build the result."""
        config = self.config
        duration_s = self.duration_s
        # Conservation invariant: every scheduled request is accounted
        # exactly once, per priority AND per workload tier — whether it
        # was served, shed, or lost to churn or a breaker trip taking
        # its server offline mid-request. A serve-only shard counts the
        # arrivals it owns at pop time (ownership is assigned per epoch
        # by the parent); serial runs count the whole trace.
        if self.shard_serving:
            offered_by_priority = self._offered_priority
            offered_by_workload = self._offered_workload
        else:
            offered_by_priority = {p: 0 for p in Priority}
            offered_by_workload = {}
            for request in self.requests:
                if request.arrival_time < duration_s:
                    offered_by_priority[request.priority] += 1
                    offered_by_workload[request.workload.name] = \
                        offered_by_workload.get(request.workload.name, 0) + 1
        for priority, tier in self.metrics.items():
            if tier.served + tier.dropped != offered_by_priority[priority]:
                raise SimulationError(
                    "request accounting violated for priority "
                    f"{priority.value}: served {tier.served} + dropped "
                    f"{tier.dropped} != offered "
                    f"{offered_by_priority[priority]}"
                )
        for name, offered in offered_by_workload.items():
            tier = self.workload_metrics.get(name)
            accounted = 0 if tier is None else tier.served + tier.dropped
            if accounted != offered:
                raise SimulationError(
                    f"request accounting violated for workload {name}: "
                    f"served+dropped {accounted} != offered {offered}"
                )

        powerfail = None
        if self.prot is not None:
            if self.shed_active:
                self.pf_report.time_shedding_s += max(
                    0.0, duration_s - min(self.shed_since, duration_s)
                )
            powerfail = self.prot.finalize(self.last_event_time)

        report = self.report
        report.telemetry_dropped_ticks = self.injector.dropped_ticks
        report.telemetry_frozen_ticks = self.injector.frozen_ticks
        report.telemetry_spikes = self.injector.spikes_injected
        report.delayed_actuations = self.injector.delayed_actuations
        report.time_at_risk_s = self.tracker.time_at_risk_s
        report.longest_overbudget_s = self.tracker.longest_overbudget_s

        series = TimeSeries(
            start=0.0,
            interval=config.telemetry_interval_s,
            values=self.power_samples[:self.sample_cursor],
        )
        observability: Optional[Dict[str, Any]] = None
        if self.recording:
            obs = self.obs
            # Batch-populate the latency and utilization histograms
            # from the lists the hot path appended to. Batch order
            # equals observation order, so the snapshot matches what
            # per-event observes would have produced (the sums up to
            # pairwise-summation ulps).
            self.util_hist.observe_many(self._util_samples)
            for priority, tier in self.metrics.items():
                self.latency_hists[priority].observe_many(tier.latencies)
            for name, wl_tier in self.workload_metrics.items():
                if wl_tier.latencies:
                    self._workload_hist(name).observe_many(
                        wl_tier.latencies
                    )
            obs.counter("telemetry.ticks").inc(self.sample_cursor)
            if self.sample_cursor:
                obs.gauge("power.peak_row_w").set(
                    float(self.power_samples[:self.sample_cursor].max())
                )
            obs.gauge("power.provisioned_w").set(config.provisioned_power_w)
            obs.gauge("energy.total_j").set(self.total_energy)
            observability = obs.snapshot()
            # Live consumers (alert engines, stream monitors — possibly
            # teed with storage sinks) settle their window state at the
            # end of the recorded stream and contribute their own
            # sections (incidents, stream values) next to the metrics
            # snapshot. Plain sinks return None and nothing changes.
            self.recorder.finalize(duration_s)
            extra = self.recorder.observability_snapshot()
            if extra:
                for key, value in extra.items():
                    if key not in observability:
                        observability[key] = value
        if self.timers is not None:
            sim_core = {"kernel_timers": self.timers.snapshot()}
            if observability is None:
                observability = {"sim_core": sim_core}
            else:
                observability["sim_core"] = sim_core
        return SimulationResult(
            per_priority=self.metrics,
            power_series=series,
            provisioned_power_w=config.provisioned_power_w,
            power_brake_events=self.brake_events,
            capping_actions=self.capping_actions,
            duration_s=duration_s,
            per_workload=self.workload_metrics,
            total_energy_j=self.total_energy,
            robustness=report,
            observability=observability,
            powerfail=powerfail,
        )
