"""The discrete-event cluster simulator (Section 6.4's evaluation vehicle).

Simulates a row of BLOOM-176B inference servers under a power-management
policy:

* requests arrive from a (synthetic production) trace, are routed by a
  priority-aware load balancer, and execute as prompt+token phase
  segments whose durations stretch under frequency caps;
* the row power — a running sum over piecewise-constant server powers —
  is observed every 2 s (Table 2) through a
  :class:`~repro.telemetry.base.SampledInterface` and fed to the policy;
* frequency-cap and brake commands are issued through a
  :class:`~repro.control.actuator.Actuator` (40 s OOB / 5 s brake
  latency, Table 2) rather than landing by fiat.

Because the telemetry and actuation paths are real interfaces, a
:class:`~repro.faults.FaultPlan` can make them lie: dropped or frozen
samples, noise and spikes, silently failed or late commands, and server
churn. The control loop is hardened accordingly (Section 3.3's
"may sometimes fail without signaling completion or errors"):

* every command carries a verify-after deadline; unacknowledged commands
  are re-issued with capped exponential backoff;
* when telemetry goes stale beyond a configurable threshold the
  controller falls back to conservative safe caps, and engages the brake
  if the outage outlasts the UPS deadline;
* a :class:`~repro.faults.RobustnessReport` ledgers every injected fault
  against what was detected and recovered, plus the exact time the true
  row power spent above the breaker budget.

With no fault plan (or an all-zeros one) every fault path is inert and
the simulator is bit-identical to the original POLCA reproduction. The
simulator is deterministic for a fixed seed, plan, and request trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.cluster.events import EventQueue
from repro.cluster.loadbalancer import LoadBalancer, split_servers
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.cluster.server_sim import ServerPowerModel, ServerSim
from repro.control.actions import ActionKind, ControlAction
from repro.control.actuator import Actuator
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector, TelemetryFate
from repro.faults.plan import FaultPlan
from repro.faults.reliability import ReliabilityConfig
from repro.faults.report import OverBudgetTracker, RobustnessReport
from repro.gpu.specs import A100_80GB
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.powerfail.protection import ProtectionRuntime
from repro.powerfail.topology import PowerTopology, ProtectionSpec
from repro.telemetry.base import SampledInterface
from repro.telemetry.smbpbi import SMBPBI_ACTUATION_LATENCY_S
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority
from repro.workloads.tracegen import INFERENCE_PROVISIONED_PER_SERVER_W


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of one simulation run.

    Attributes:
        n_base_servers: Designed server count (Table 2: 40).
        added_fraction: Extra servers deployed via oversubscription
            (0.30 adds 12 servers to the default 40).
        provisioned_per_server_w: Breaker budget per *designed* server
            slot; the budget does not grow with added servers.
        low_priority_fraction: Share of servers in the low-priority pool
            (Figure 15b's sweep knob).
        telemetry_interval_s: Row telemetry period (Table 2: 2 s).
        oob_latency_s: Frequency-cap actuation latency (Table 2: 40 s).
        brake_latency_s: Power-brake latency (Table 2: 5 s).
        brake_hold_s: Minimum time the brake stays engaged once active.
        power_scale: GPU dynamic-power multiplier (1.05 = the "+5%"
            robustness scenario of Section 6.6).
        seed: RNG seed for load-balancer tie-breaking.
        fault_plan: Faults to inject during the run; ``None`` (or an
            all-zeros plan) leaves every interface perfect.
        reliability: Reliable-command and graceful-degradation knobs.
        protection: The power-delivery protection hierarchy (breakers,
            trip curves, emergency shedding — see
            :mod:`repro.powerfail`); ``None`` models infinite breaker
            capacity and is bit-identical to the unprotected simulator.
    """

    n_base_servers: int = 40
    added_fraction: float = 0.0
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    low_priority_fraction: float = 0.5
    telemetry_interval_s: float = 2.0
    oob_latency_s: float = SMBPBI_ACTUATION_LATENCY_S
    brake_latency_s: float = 5.0
    brake_hold_s: float = 60.0
    power_scale: float = 1.0
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    protection: Optional[ProtectionSpec] = None

    def __post_init__(self) -> None:
        if self.n_base_servers <= 0:
            raise ConfigurationError("n_base_servers must be positive")
        if self.added_fraction < 0:
            raise ConfigurationError("added_fraction cannot be negative")
        if self.provisioned_per_server_w <= 0:
            raise ConfigurationError(
                "provisioned_per_server_w must be positive"
            )
        if not 0.0 <= self.low_priority_fraction <= 1.0:
            raise ConfigurationError(
                "low_priority_fraction must be within [0, 1], got "
                f"{self.low_priority_fraction}"
            )
        if self.telemetry_interval_s <= 0:
            raise ConfigurationError("telemetry_interval_s must be positive")
        if self.oob_latency_s < 0:
            raise ConfigurationError("oob_latency_s cannot be negative")
        if self.brake_latency_s < 0:
            raise ConfigurationError("brake_latency_s cannot be negative")
        if self.brake_hold_s < 0:
            raise ConfigurationError("brake_hold_s cannot be negative")
        if self.power_scale <= 0:
            raise ConfigurationError("power_scale must be positive")

    @property
    def n_servers(self) -> int:
        """Deployed server count after oversubscription."""
        return self.n_base_servers + int(round(
            self.n_base_servers * self.added_fraction
        ))

    @property
    def provisioned_power_w(self) -> float:
        """The row breaker budget (fixed at the designed capacity)."""
        return self.n_base_servers * self.provisioned_per_server_w


class ClusterSimulator:
    """Runs one policy against one request trace on one row.

    Pass a :class:`~repro.obs.recorder.TraceRecorder` to capture the
    run's event stream (control decisions, cap/brake lifecycles,
    fallback windows, churn, serves and drops) and a metrics snapshot in
    ``SimulationResult.observability``. Live consumers — a
    :class:`~repro.obs.stream.StreamMonitor`, an
    :class:`~repro.obs.alerts.AlertEngine`, or a
    :class:`~repro.obs.stream.TeeRecorder` composing them with storage
    sinks — attach the same way and additionally contribute their
    sections (stream values, incidents) to the snapshot. The default is
    the shared :data:`~repro.obs.recorder.NULL_RECORDER`: every hook
    point is guarded by ``recorder.enabled``, so an unrecorded run
    builds no event payloads and stays bit-identical to an
    uninstrumented one.
    """

    def __init__(
        self,
        config: ClusterConfig,
        policy: PowerPolicy,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.power_model = ServerPowerModel(
            gpu=A100_80GB, power_scale=config.power_scale
        )
        power_model = self.power_model
        server_ids = [f"s{i}" for i in range(config.n_servers)]
        assignment = split_servers(server_ids, config.low_priority_fraction)
        self.servers: List[ServerSim] = [
            ServerSim(
                server_id=sid,
                priority=assignment[sid],
                power_model=power_model,
            )
            for sid in server_ids
        ]
        self._index_by_priority: Dict[Priority, List[int]] = {
            p: [i for i, s in enumerate(self.servers) if s.priority is p]
            for p in Priority
        }
        self._ids_by_priority: Dict[Priority, frozenset] = {
            p: frozenset(self.servers[i].server_id for i in indices)
            for p, indices in self._index_by_priority.items()
        }
        self._all_ids = frozenset(s.server_id for s in self.servers)
        self.balancer = LoadBalancer(self.servers, seed=config.seed)

    # ------------------------------------------------------------------
    def _build_actuator(self, plan: FaultPlan) -> Actuator:
        """The row's OOB command pipeline, with the plan's unreliability."""
        return Actuator(
            latencies={
                ActionKind.FREQUENCY_LOCK: self.config.oob_latency_s,
                ActionKind.FREQUENCY_UNLOCK: self.config.oob_latency_s,
                ActionKind.POWER_CAP: self.config.oob_latency_s,
                ActionKind.POWER_UNCAP: self.config.oob_latency_s,
                ActionKind.POWER_BRAKE: self.config.brake_latency_s,
                ActionKind.BRAKE_RELEASE: self.config.brake_latency_s,
            },
            silent_failure_rate=plan.actuation.silent_failure_rate,
            seed=plan.seed + 1,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[SampledRequest],
        duration_s: float,
    ) -> SimulationResult:
        """Simulate ``duration_s`` seconds of the request trace.

        Requests arriving after ``duration_s`` are ignored; requests in
        flight at the end are allowed to finish (their latencies count).

        Raises:
            ConfigurationError: If the duration is not positive.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.policy.reset()
        config = self.config
        reliability = config.reliability
        plan = config.fault_plan if config.fault_plan is not None \
            else FaultPlan.none()
        injector = FaultInjector(
            plan, duration_s=duration_s, n_servers=config.n_servers
        )
        interface = SampledInterface(
            name="row-telemetry",
            interval=config.telemetry_interval_s,
            in_band=False,
            delay=plan.telemetry.delay_s,
            noise_std=plan.telemetry.noise_std,
            seed=plan.seed,
        )
        actuator = self._build_actuator(plan)
        # With a perfect actuation path (no silent failures, no extra
        # delays) every command provably lands by its spec latency, so
        # the verify deadline would always pass: elide it. This also
        # keeps the event stream — and hence the float summation order
        # of the exact energy integral — bit-identical to the original
        # fault-free simulator.
        verify_commands = (
            plan.actuation.silent_failure_rate > 0.0
            or plan.actuation.delay_prob > 0.0
        )
        report = RobustnessReport(
            duration_s=duration_s,
            telemetry_dropout_windows=injector.dropout_window_count,
        )
        tracker = OverBudgetTracker(budget_w=config.provisioned_power_w)
        protection = config.protection
        peak_server_w = self.power_model.server_power(1.0, 1.0)

        # Observability. ``recording`` guards every hook point below, so
        # with the default NullRecorder no event payload or metric update
        # ever happens and the run is bit-identical to an uninstrumented
        # one. Recorders observe only: they never touch simulator state,
        # RNG streams, or the float summation order.
        recorder = self.recorder
        recording = recorder.enabled
        obs: Optional[MetricsRegistry] = None
        request_ids: Dict[int, int] = {}
        if recording:
            obs = MetricsRegistry()
            # Pre-register the counters cross_check compares so they are
            # present in the snapshot even when they end at zero.
            for _name in (
                "requests.served",
                "requests.dropped",
                "requests.lost_to_churn",
                "brake.engagements",
                "commands.cap_actions",
                "commands.issued",
                "commands.reissues",
                "fallback.entries",
                "telemetry.faults",
                "churn.failures",
                "churn.recoveries",
            ):
                obs.counter(_name)
            if protection is not None:
                for _name in (
                    "prot.trips",
                    "prot.reenergizations",
                    "shed.engagements",
                    "requests.lost_to_trips",
                    "requests.dropped_shed",
                    "requests.deferred",
                ):
                    obs.counter(_name)
            util_hist = obs.histogram("control.utilization")
            latency_hists = {
                p: obs.histogram(
                    f"latency.priority.{p.value}", LATENCY_BUCKETS
                )
                for p in Priority
            }
            # Requests are identified in the trace by arrival order;
            # SampledRequest is frozen and id-stable for the run.
            request_ids = {id(r): i for i, r in enumerate(requests)}
            recorder.emit({
                "t": 0.0, "kind": "run_meta",
                "duration_s": duration_s,
                "n_servers": config.n_servers,
                "concurrency": self.servers[0].concurrency,
                "provisioned_power_w": config.provisioned_power_w,
                "idle_server_power_w":
                    self.power_model.server_power(0.0, 1.0),
                "brake_ratio": self.power_model.brake_ratio,
                "servers": {
                    s.server_id: s.priority.value for s in self.servers
                },
            })

        queue = EventQueue()
        metrics = {p: PriorityMetrics() for p in Priority}
        workload_metrics: Dict[str, PriorityMetrics] = {}

        # Running row power; server powers are piecewise constant, which
        # also makes the energy integral exact: accumulate power x dt at
        # every event boundary.
        server_power = [s.current_power() for s in self.servers]
        row_power = sum(server_power)
        total_energy = 0.0
        last_event_time = 0.0

        # The power-delivery protection layer. ``prot is None`` (the
        # default) models infinite breaker capacity: no accumulator is
        # ever touched, no event is ever enqueued, and the run is
        # bit-identical to the unprotected simulator.
        prot: Optional[ProtectionRuntime] = None
        emergency = None
        pf_report = None
        shed_active = False
        shed_since = 0.0
        defer_counts: Dict[int, int] = {}
        if protection is not None:
            topology = PowerTopology.build(
                n_servers=config.n_servers,
                provisioned_power_w=config.provisioned_power_w,
                peak_server_w=peak_server_w,
                spec=protection,
            )
            prot = ProtectionRuntime(
                topology, protection, duration_s, server_power
            )
            emergency = protection.emergency
            pf_report = prot.report
            for push in prot.initial_events():
                queue.push(*push)

        def refresh_power(index: int) -> None:
            nonlocal row_power
            new_power = self.servers[index].current_power()
            row_power += new_power - server_power[index]
            server_power[index] = new_power
            if prot is not None:
                for push in prot.update_server_power(now, index, new_power):
                    queue.push(*push)

        def refresh_group(indices: Sequence[int]) -> None:
            """Refresh many servers at once (cap/brake landings).

            The power formula is evaluated vectorized per effective-clock
            group (bit-identical per server to the scalar path), while the
            running row-power updates keep the original per-index
            summation order so the energy integral is unchanged.
            """
            nonlocal row_power
            new_power: Dict[int, float] = {}
            by_ratio: Dict[float, List[int]] = {}
            for index in indices:
                server = self.servers[index]
                if server.failed:
                    new_power[index] = 0.0
                else:
                    by_ratio.setdefault(server.effective_ratio, []).append(
                        index
                    )
            for ratio, members in by_ratio.items():
                activities = [
                    self.servers[i].current_activity() for i in members
                ]
                powers = self.power_model.server_power_batch(
                    activities, ratio
                )
                for i, power in zip(members, powers.tolist()):
                    new_power[i] = power
            for index in indices:
                power = new_power[index]
                row_power += power - server_power[index]
                server_power[index] = power
            if prot is not None:
                for index in indices:
                    for push in prot.update_server_power(
                        now, index, new_power[index]
                    ):
                        queue.push(*push)

        def workload_tier(name: str) -> PriorityMetrics:
            if name not in workload_metrics:
                workload_metrics[name] = PriorityMetrics()
            return workload_metrics[name]

        # Actuation bookkeeping. Cap commands are generation-stamped per
        # priority group and brake commands version-stamped, so verify
        # and re-issue events can tell whether they have been superseded
        # — and so a utilization spike during a pending brake release can
        # cancel the release outright.
        commanded = GroupCaps.uncapped()
        cap_generation: Dict[Priority, int] = {p: 0 for p in Priority}
        capping_actions = 0
        brake_state = "off"  # off | pending_on | on | pending_off
        brake_version = 0
        brake_engaged_at = -float("inf")
        brake_events = 0

        # Telemetry-health state for graceful degradation.
        stale_ticks = 0
        identical_run = 0
        last_observed: Optional[float] = None
        in_fallback = False
        fallback_entered_at = 0.0

        server_index = {s.server_id: i for i, s in enumerate(self.servers)}

        for request in requests:
            if request.arrival_time < duration_s:
                queue.push(request.arrival_time, ("arrival", request))
        # Integer-indexed tick schedule: i * interval carries no
        # accumulated float error on long traces (unlike a +=-style or
        # np.arange cursor).
        n_ticks = int(math.ceil(duration_s / config.telemetry_interval_s))
        scheduled_ticks = 0
        for i in range(n_ticks):
            tick = i * config.telemetry_interval_s
            if tick >= duration_s:
                break
            queue.push(tick, ("tick",))
            scheduled_ticks += 1
        # The tick count is known up front: accumulate power samples into
        # a preallocated array instead of growing a list and converting.
        power_samples = np.empty(scheduled_ticks, dtype=np.float64)
        sample_cursor = 0
        for churn in injector.churn_events:
            queue.push(churn.fail_at_s, ("server_fail", churn.server_index))
            if churn.recover_at_s is not None \
                    and churn.recover_at_s < duration_s:
                queue.push(
                    churn.recover_at_s,
                    ("server_recover", churn.server_index),
                )

        def schedule_slot(index: int, slot: int) -> None:
            server = self.servers[index]
            active = server.slots.get(slot)
            if active is None:
                return
            queue.push(
                active.phase_end, ("phase", index, slot, active.version)
            )

        def start_on(now: float, index: int, request: SampledRequest) -> None:
            slot = self.servers[index].start_request(now, request)
            refresh_power(index)
            schedule_slot(index, slot)
            if recording:
                emit_phase_start(now, index, slot)

        # ------------------------------------------------------------
        # Span lifecycle emission (observe-only; every call is guarded
        # by ``recording``, so unrecorded runs never reach these).
        # ------------------------------------------------------------
        def emit_phase_start(now: float, index: int, slot: int) -> None:
            server = self.servers[index]
            active = server.slots.get(slot)
            if active is None:
                return
            payload = server.slot_snapshot(slot)
            payload["t"] = now
            payload["kind"] = "phase_start"
            payload["request_id"] = request_ids[id(active.request)]
            recorder.emit(payload)

        def emit_rescales(
            now: float,
            index: int,
            rescheduled: Dict[int, float],
            old_ratio: float,
            cause: str,
            stamp: Dict[str, Any],
        ) -> None:
            server = self.servers[index]
            new_ratio = server.effective_ratio
            for slot, new_end in rescheduled.items():
                active = server.slots[slot]
                event = {
                    "t": now, "kind": "phase_rescale",
                    "request_id": request_ids[id(active.request)],
                    "server": server.server_id, "slot": slot,
                    "phase": active.segments[active.phase_index].phase,
                    "old_ratio": old_ratio, "new_ratio": new_ratio,
                    "new_end": new_end, "cause": cause,
                }
                event.update(stamp)
                recorder.emit(event)

        # --------------------------------------------------------------
        # The reliable-command layer: every issue schedules a landing
        # (unless the interface silently drops it) plus a verify event;
        # failed verifies re-issue with capped exponential backoff.
        # --------------------------------------------------------------
        def issue_cap(
            now: float,
            priority: Priority,
            clock_mhz: Optional[float],
            generation: int,
            attempts: int,
        ) -> None:
            targets = self._ids_by_priority[priority]
            if clock_mhz is None:
                action = ControlAction.frequency_unlock(targets)
            else:
                action = ControlAction.frequency_lock(targets, clock_mhz)
            record = actuator.issue(now, action)
            report.commands_issued += 1
            extra = injector.actuation_extra_delay()
            if recording:
                obs.counter("commands.issued").inc()
                recorder.emit({
                    "t": now, "kind": "cap_issue",
                    "priority": priority.value, "clock_mhz": clock_mhz,
                    "generation": generation, "attempts": attempts,
                    "silent": record.failed_silently,
                })
            if record.failed_silently:
                report.silent_actuation_failures += 1
            else:
                queue.push(
                    record.effective_at + extra,
                    ("cap", priority, clock_mhz, generation),
                )
            if verify_commands:
                queue.push(
                    now + actuator.latency_for(action.kind)
                    + reliability.verify_margin_s,
                    ("verify_cap", priority, clock_mhz, generation,
                     attempts),
                )

        def issue_brake(
            now: float, want_on: bool, version: int, attempts: int
        ) -> None:
            kind = ActionKind.POWER_BRAKE if want_on \
                else ActionKind.BRAKE_RELEASE
            record = actuator.issue(
                now, ControlAction(kind, self._all_ids)
            )
            report.commands_issued += 1
            extra = injector.actuation_extra_delay()
            if recording:
                obs.counter("commands.issued").inc()
                recorder.emit({
                    "t": now, "kind": "brake_issue",
                    "want_on": want_on, "version": version,
                    "attempts": attempts,
                    "silent": record.failed_silently,
                })
            if record.failed_silently:
                report.silent_actuation_failures += 1
            else:
                queue.push(
                    record.effective_at + extra,
                    ("brake_on" if want_on else "brake_off", version),
                )
            if verify_commands:
                queue.push(
                    now + actuator.latency_for(kind)
                    + reliability.verify_margin_s,
                    ("verify_brake", want_on, version, attempts),
                )

        def engage_brake(now: float, source: str = "policy") -> None:
            nonlocal brake_state, brake_version
            brake_state = "pending_on"
            brake_version += 1
            if recording:
                obs.counter("brake.engagements").inc()
                recorder.emit({
                    "t": now, "kind": "brake_request",
                    "source": source, "version": brake_version,
                })
            issue_brake(now, True, brake_version, 0)

        def command_caps(now: float, desired: GroupCaps) -> None:
            nonlocal commanded, capping_actions
            if desired.low_clock_mhz != commanded.low_clock_mhz:
                cap_generation[Priority.LOW] += 1
                issue_cap(
                    now, Priority.LOW, desired.low_clock_mhz,
                    cap_generation[Priority.LOW], 0,
                )
                capping_actions += 1
                if recording:
                    obs.counter("commands.cap_actions").inc()
            if desired.high_clock_mhz != commanded.high_clock_mhz:
                cap_generation[Priority.HIGH] += 1
                issue_cap(
                    now, Priority.HIGH, desired.high_clock_mhz,
                    cap_generation[Priority.HIGH], 0,
                )
                capping_actions += 1
                if recording:
                    obs.counter("commands.cap_actions").inc()
            commanded = desired

        # ------------------------------------------------------------
        # Emergency response to power-delivery incidents (only reachable
        # when a ProtectionSpec is attached): shed low-priority load and
        # clamp survivors to safe caps while any device is tripped or
        # carrying a trip-risk flag.
        # ------------------------------------------------------------
        def emit_capacity_status(now: float) -> None:
            offline_w, offline_frac = prot.offline_stats(peak_server_w)
            recorder.emit({
                "t": now, "kind": "capacity_status",
                "offline_capacity_w": offline_w,
                "offline_fraction": offline_frac,
            })

        def update_shed(now: float) -> None:
            nonlocal shed_active, shed_since
            if emergency is None or not emergency.enabled:
                return
            want = prot.in_emergency
            if want and not shed_active:
                shed_active = True
                shed_since = now
                pf_report.shed_engagements += 1
                if recording:
                    obs.counter("shed.engagements").inc()
                    recorder.emit({"t": now, "kind": "shed_engage"})
                command_caps(now, emergency.clamp(commanded))
            elif not want and shed_active:
                shed_active = False
                pf_report.time_shedding_s += max(
                    0.0, min(now, duration_s) - min(shed_since, duration_s)
                )
                if recording:
                    recorder.emit({"t": now, "kind": "shed_release"})

        def control_step(now: float, observed_power: float) -> None:
            nonlocal brake_state, brake_version, brake_engaged_at
            nonlocal brake_events
            utilization = observed_power / config.provisioned_power_w
            if recording:
                util_hist.observe(utilization)
                recorder.emit({
                    "t": now, "kind": "control",
                    "utilization": utilization,
                    "observed_power_w": observed_power,
                    "brake_state": brake_state,
                })
            # --- Brake safety logic (all policies carry the brake).
            if brake_state in ("off", "pending_off") \
                    and self.policy.wants_brake(utilization):
                if brake_state == "pending_off":
                    # A spike while the release is in flight: cancel the
                    # pending release (the stamped brake_off event is now
                    # stale) — the brake never disengages, so this is not
                    # a new engagement.
                    brake_version += 1
                    brake_state = "on"
                    if recording:
                        recorder.emit({
                            "t": now, "kind": "brake_cancel_release",
                            "version": brake_version,
                        })
                else:
                    brake_events += 1
                    engage_brake(now)
            elif (
                brake_state == "on"
                and now - brake_engaged_at >= config.brake_hold_s
                and self.policy.brake_release_ok(utilization)
            ):
                brake_state = "pending_off"
                brake_version += 1
                if recording:
                    recorder.emit({
                        "t": now, "kind": "brake_release_request",
                        "version": brake_version,
                    })
                issue_brake(now, False, brake_version, 0)
            # --- Frequency-capping policy.
            desired = self.policy.desired_caps(utilization, now)
            if prot is not None and shed_active:
                # Safe-mode caps outrank the policy while shedding.
                desired = emergency.clamp(desired)
            command_caps(now, desired)

        def deliver_observation(now: float, value: float) -> None:
            nonlocal stale_ticks, identical_run, last_observed, in_fallback
            if reliability.detect_frozen and last_observed is not None \
                    and value == last_observed:
                identical_run += 1
            else:
                identical_run = 0
            last_observed = value
            if reliability.detect_frozen \
                    and identical_run >= reliability.frozen_after_ticks:
                # A sensor repeating itself verbatim is as good as dark.
                stale_ticks += 1
                return
            stale_ticks = 0
            if in_fallback:
                in_fallback = False
                if recording:
                    recorder.emit({"t": now, "kind": "fallback_exit"})
            control_step(now, value)

        clock_denominator = A100_80GB.max_sm_clock_mhz

        def group_cap_applied(
            priority: Priority, clock_mhz: Optional[float]
        ) -> bool:
            ratio = 1.0 if clock_mhz is None \
                else clock_mhz / clock_denominator
            return all(
                math.isclose(self.servers[i].clock_ratio, ratio)
                for i in self._index_by_priority[priority]
            )

        while queue:
            now, event = queue.pop()
            # Energy and breaker exposure integrate over [0, duration_s]
            # only. In-flight requests still drain after duration_s (and
            # their latencies count, per the docstring), but that drain
            # is outside the reported window, so the integral clamps.
            if now <= duration_s:
                dt = now - last_event_time
            elif last_event_time < duration_s:
                dt = duration_s - last_event_time
            else:
                dt = 0.0
            if dt > 0.0:
                total_energy += row_power * dt
                tracker.account(row_power, dt)
            last_event_time = now
            kind = event[0]

            if kind == "arrival":
                request: SampledRequest = event[1]
                if prot is not None and shed_active:
                    prior = defer_counts.get(id(request), 0)
                    action = emergency.shed_action(
                        request.priority.value, request.workload.name,
                        prior,
                    )
                    if action == "defer":
                        defer_counts[id(request)] = prior + 1
                        queue.push(
                            now + emergency.defer_s, ("arrival", request)
                        )
                        pf_report.requests_deferred += 1
                        if recording:
                            obs.counter("requests.deferred").inc()
                            recorder.emit({
                                "t": now, "kind": "shed_defer",
                                "request_id": request_ids[id(request)],
                                "priority": request.priority.value,
                                "workload": request.workload.name,
                                "delay_s": emergency.defer_s,
                                "deferrals": prior + 1,
                            })
                        continue
                    if action == "drop":
                        metrics[request.priority].dropped += 1
                        workload_tier(request.workload.name).dropped += 1
                        pf_report.requests_dropped_shed += 1
                        if recording:
                            obs.counter("requests.dropped").inc()
                            obs.counter("requests.dropped_shed").inc()
                            recorder.emit({
                                "t": now, "kind": "req_arrival",
                                "request_id": request_ids[id(request)],
                                "priority": request.priority.value,
                                "workload": request.workload.name,
                                "input_tokens": request.input_tokens,
                                "output_tokens": request.output_tokens,
                                "server": None, "queued": False,
                            })
                            recorder.emit({
                                "t": now, "kind": "drop",
                                "request_id": request_ids[id(request)],
                                "priority": request.priority.value,
                                "workload": request.workload.name,
                                "reason": "shed",
                            })
                        continue
                server = self.balancer.route(request.priority)
                if server is None:
                    metrics[request.priority].dropped += 1
                    workload_tier(request.workload.name).dropped += 1
                    if recording:
                        obs.counter("requests.dropped").inc()
                        recorder.emit({
                            "t": now, "kind": "req_arrival",
                            "request_id": request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "input_tokens": request.input_tokens,
                            "output_tokens": request.output_tokens,
                            "server": None, "queued": False,
                        })
                        recorder.emit({
                            "t": now, "kind": "drop",
                            "request_id": request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "reason": "saturated",
                        })
                    continue
                index = server_index[server.server_id]
                if recording:
                    recorder.emit({
                        "t": now, "kind": "req_arrival",
                        "request_id": request_ids[id(request)],
                        "priority": request.priority.value,
                        "workload": request.workload.name,
                        "input_tokens": request.input_tokens,
                        "output_tokens": request.output_tokens,
                        "server": server.server_id,
                        "queued": not server.has_free_slot,
                    })
                if server.has_free_slot:
                    start_on(now, index, request)
                else:
                    server.buffered = request

            elif kind == "phase":
                index, slot, version = event[1], event[2], event[3]
                server = self.servers[index]
                active = server.slots.get(slot)
                if active is None or active.version != version:
                    continue  # superseded by a clock change
                finished = active.request
                next_end = server.advance_phase(now, slot)
                if next_end is not None:
                    refresh_power(index)
                    schedule_slot(index, slot)
                    if recording:
                        emit_phase_start(now, index, slot)
                    continue
                # Request complete; the slot is free again.
                tier = metrics[finished.priority]
                tier.served += 1
                tier.latencies.append(now - finished.arrival_time)
                by_workload = workload_tier(finished.workload.name)
                by_workload.served += 1
                by_workload.latencies.append(now - finished.arrival_time)
                if recording:
                    obs.counter("requests.served").inc()
                    latency = now - finished.arrival_time
                    latency_hists[finished.priority].observe(latency)
                    obs.histogram(
                        f"latency.workload.{finished.workload.name}",
                        LATENCY_BUCKETS,
                    ).observe(latency)
                    recorder.emit({
                        "t": now, "kind": "serve",
                        "request_id": request_ids[id(finished)],
                        "priority": finished.priority.value,
                        "workload": finished.workload.name,
                        "latency_s": latency,
                        "server": server.server_id,
                    })
                queued = server.take_buffered()
                if queued is not None:
                    start_on(now, index, queued)
                else:
                    refresh_power(index)

            elif kind == "tick":
                power_samples[sample_cursor] = row_power
                sample_cursor += 1
                sample = interface.read(now, lambda _t: row_power)
                fate = injector.telemetry_fate(now)
                if recording and fate is not TelemetryFate.OK:
                    obs.counter("telemetry.faults").inc()
                    recorder.emit({
                        "t": now, "kind": "telemetry_fault",
                        "fate": fate.value,
                    })
                if fate is TelemetryFate.DROPPED:
                    stale_ticks += 1
                elif fate is TelemetryFate.FROZEN and last_observed is None:
                    stale_ticks += 1  # nothing to repeat yet: a dropout
                else:
                    if fate is TelemetryFate.FROZEN:
                        value = last_observed
                    else:
                        value = injector.perturb_sample(sample.value)
                    if sample.time <= now:
                        deliver_observation(now, value)
                    else:
                        queue.push(sample.time, ("obs", value))
                # --- Graceful degradation on persistent staleness.
                if stale_ticks > report.max_missed_ticks:
                    report.max_missed_ticks = stale_ticks
                if stale_ticks >= reliability.fallback_after_ticks:
                    if not in_fallback:
                        in_fallback = True
                        fallback_entered_at = now
                        report.fallback_entries += 1
                        if recording:
                            obs.counter("fallback.entries").inc()
                            recorder.emit({
                                "t": now, "kind": "fallback_enter",
                                "stale_ticks": stale_ticks,
                            })
                        command_caps(now, GroupCaps(
                            low_clock_mhz=reliability.safe_low_clock_mhz,
                            high_clock_mhz=reliability.safe_high_clock_mhz,
                        ))
                    elif (
                        brake_state == "off"
                        and now - fallback_entered_at
                        >= reliability.brake_after_stale_s
                    ):
                        brake_events += 1
                        report.fallback_brakes += 1
                        engage_brake(now, source="fallback")

            elif kind == "obs":
                deliver_observation(now, event[1])

            elif kind == "cap":
                priority, clock_mhz = event[1], event[2]
                ratio = 1.0
                if clock_mhz is not None:
                    ratio = clock_mhz / clock_denominator
                indices = self._index_by_priority[priority]
                old_ratios: Optional[List[float]] = None
                if recording:
                    recorder.emit({
                        "t": now, "kind": "cap_land",
                        "priority": priority.value, "clock_mhz": clock_mhz,
                        "generation": event[3], "ratio": ratio,
                    })
                    old_ratios = [
                        self.servers[i].effective_ratio for i in indices
                    ]
                group_rescheduled = [
                    self.servers[index].apply_clock(now, ratio)
                    for index in indices
                ]
                refresh_group(indices)
                for pos, (index, rescheduled) in enumerate(
                    zip(indices, group_rescheduled)
                ):
                    for slot in rescheduled:
                        schedule_slot(index, slot)
                    if recording and rescheduled:
                        emit_rescales(
                            now, index, rescheduled, old_ratios[pos],
                            cause="cap", stamp={
                                "priority": priority.value,
                                "generation": event[3],
                            },
                        )

            elif kind == "verify_cap":
                priority, clock_mhz, generation, attempts = event[1:]
                if generation != cap_generation[priority]:
                    continue  # superseded by a newer command
                if group_cap_applied(priority, clock_mhz):
                    report.commands_verified += 1
                    if attempts > 0:
                        report.commands_recovered += 1
                    if recording:
                        recorder.emit({
                            "t": now, "kind": "cap_verify",
                            "priority": priority.value,
                            "generation": generation,
                            "attempts": attempts,
                            "ok": True, "abandoned": False,
                        })
                    continue
                report.failures_detected += 1
                abandoned = attempts >= reliability.max_retries
                if recording:
                    recorder.emit({
                        "t": now, "kind": "cap_verify",
                        "priority": priority.value,
                        "generation": generation, "attempts": attempts,
                        "ok": False, "abandoned": abandoned,
                    })
                if abandoned:
                    report.commands_unrecovered += 1
                    continue
                queue.push(
                    now + reliability.backoff_s(attempts + 1),
                    ("reissue_cap", priority, clock_mhz, generation,
                     attempts + 1),
                )

            elif kind == "reissue_cap":
                priority, clock_mhz, generation, attempts = event[1:]
                if generation != cap_generation[priority]:
                    continue
                report.reissues += 1
                if recording:
                    obs.counter("commands.reissues").inc()
                    recorder.emit({
                        "t": now, "kind": "cap_reissue",
                        "priority": priority.value, "clock_mhz": clock_mhz,
                        "generation": generation, "attempts": attempts,
                    })
                issue_cap(now, priority, clock_mhz, generation, attempts)

            elif kind == "brake_on":
                if brake_state != "pending_on" or event[1] != brake_version:
                    continue
                brake_state = "on"
                brake_engaged_at = now
                all_indices = range(len(self.servers))
                old_ratios = None
                if recording:
                    recorder.emit({
                        "t": now, "kind": "brake_land",
                        "on": True, "version": event[1],
                    })
                    old_ratios = [
                        self.servers[i].effective_ratio for i in all_indices
                    ]
                group_rescheduled = [
                    self.servers[index].apply_brake(now, True)
                    for index in all_indices
                ]
                refresh_group(all_indices)
                for index, rescheduled in zip(all_indices, group_rescheduled):
                    for slot in rescheduled:
                        schedule_slot(index, slot)
                    if recording and rescheduled:
                        emit_rescales(
                            now, index, rescheduled, old_ratios[index],
                            cause="brake", stamp={
                                "version": event[1], "on": True,
                            },
                        )

            elif kind == "brake_off":
                if brake_state != "pending_off" or event[1] != brake_version:
                    continue
                brake_state = "off"
                all_indices = range(len(self.servers))
                old_ratios = None
                if recording:
                    recorder.emit({
                        "t": now, "kind": "brake_land",
                        "on": False, "version": event[1],
                    })
                    old_ratios = [
                        self.servers[i].effective_ratio for i in all_indices
                    ]
                group_rescheduled = [
                    self.servers[index].apply_brake(now, False)
                    for index in all_indices
                ]
                refresh_group(all_indices)
                for index, rescheduled in zip(all_indices, group_rescheduled):
                    for slot in rescheduled:
                        schedule_slot(index, slot)
                    if recording and rescheduled:
                        emit_rescales(
                            now, index, rescheduled, old_ratios[index],
                            cause="brake", stamp={
                                "version": event[1], "on": False,
                            },
                        )

            elif kind == "verify_brake":
                want_on, version, attempts = event[1], event[2], event[3]
                if version != brake_version:
                    continue  # superseded (including cancelled releases)
                if all(s.braked == want_on for s in self.servers):
                    report.commands_verified += 1
                    if attempts > 0:
                        report.commands_recovered += 1
                    if recording:
                        recorder.emit({
                            "t": now, "kind": "brake_verify",
                            "want_on": want_on, "version": version,
                            "attempts": attempts,
                            "ok": True, "abandoned": False,
                        })
                    continue
                report.failures_detected += 1
                abandoned = attempts >= reliability.max_retries
                if recording:
                    recorder.emit({
                        "t": now, "kind": "brake_verify",
                        "want_on": want_on, "version": version,
                        "attempts": attempts,
                        "ok": False, "abandoned": abandoned,
                    })
                if abandoned:
                    report.commands_unrecovered += 1
                    continue
                queue.push(
                    now + reliability.backoff_s(attempts + 1),
                    ("reissue_brake", want_on, version, attempts + 1),
                )

            elif kind == "reissue_brake":
                want_on, version, attempts = event[1], event[2], event[3]
                if version != brake_version:
                    continue
                report.reissues += 1
                if recording:
                    obs.counter("commands.reissues").inc()
                    recorder.emit({
                        "t": now, "kind": "brake_reissue",
                        "want_on": want_on, "version": version,
                        "attempts": attempts,
                    })
                issue_brake(now, want_on, version, attempts)

            elif kind == "server_fail":
                index = event[1]
                server = self.servers[index]
                if server.failed:
                    continue
                dropped_requests = server.fail(now)
                for request in dropped_requests:
                    metrics[request.priority].dropped += 1
                    workload_tier(request.workload.name).dropped += 1
                    report.requests_lost_to_churn += 1
                    if recording:
                        obs.counter("requests.dropped").inc()
                        obs.counter("requests.lost_to_churn").inc()
                        recorder.emit({
                            "t": now, "kind": "drop",
                            "request_id": request_ids[id(request)],
                            "priority": request.priority.value,
                            "workload": request.workload.name,
                            "reason": "churn",
                            "server": server.server_id,
                        })
                report.server_failures += 1
                if recording:
                    obs.counter("churn.failures").inc()
                    recorder.emit({
                        "t": now, "kind": "server_fail",
                        "server": server.server_id, "index": index,
                        "dropped": len(dropped_requests),
                    })
                refresh_power(index)

            elif kind == "server_recover":
                index = event[1]
                server = self.servers[index]
                if not server.failed:
                    continue
                if prot is not None and prot.is_deenergized(index):
                    # The churn recovery raced a breaker trip: the
                    # server has no feed until its protection device
                    # re-energizes, which subsumes this recovery.
                    continue
                server.recover(now)
                report.server_recoveries += 1
                if recording:
                    obs.counter("churn.recoveries").inc()
                    recorder.emit({
                        "t": now, "kind": "server_recover",
                        "server": server.server_id, "index": index,
                    })
                refresh_power(index)

            elif kind == "prot":
                if now > duration_s:
                    # Breaker exposure is modeled over the reported
                    # window only. Dropping late projections also
                    # guarantees termination: a breaker overloaded even
                    # at idle would otherwise trip/restore forever and
                    # the post-horizon drain would never empty the
                    # queue.
                    continue
                device_id, target, epoch = event[1], event[2], event[3]
                outcome = prot.on_projection(now, device_id, target, epoch)
                if outcome is None:
                    continue  # superseded by a later rate change
                fired, info, pushes = outcome
                for push in pushes:
                    queue.push(*push)
                if fired in ("risk", "clear"):
                    if recording:
                        recorder.emit({
                            "t": now, "kind": "trip_risk",
                            "device": device_id,
                            "device_level": info["device_level"],
                            "accumulator": info["accumulator"],
                            "overload": info["overload"],
                            "at_risk": 1.0 if fired == "risk" else 0.0,
                        })
                    update_shed(now)
                    continue
                # The breaker opens: fail the subtree mid-flight. The
                # load balancer redistributes subsequent arrivals onto
                # survivors, which can push a sibling domain over its
                # own limit — the cascade needs no special code.
                covered = prot.begin_trip(device_id, now)
                dropped_count = 0
                for index in covered:
                    server = self.servers[index]
                    if server.failed:
                        refresh_power(index)
                        continue
                    for request in server.fail(now):
                        metrics[request.priority].dropped += 1
                        workload_tier(request.workload.name).dropped += 1
                        pf_report.requests_lost_to_trips += 1
                        dropped_count += 1
                        if recording:
                            obs.counter("requests.dropped").inc()
                            obs.counter("requests.lost_to_trips").inc()
                            recorder.emit({
                                "t": now, "kind": "drop",
                                "request_id": request_ids[id(request)],
                                "priority": request.priority.value,
                                "workload": request.workload.name,
                                "reason": "trip",
                                "server": server.server_id,
                                "device": device_id,
                            })
                    refresh_power(index)
                record, restore_push = prot.commit_trip(
                    device_id, now, dropped_count
                )
                queue.push(*restore_push)
                if recording:
                    obs.counter("prot.trips").inc()
                    offline_w, offline_frac = prot.offline_stats(
                        peak_server_w
                    )
                    payload = dict(record)
                    payload["kind"] = "trip"
                    payload["offline_capacity_w"] = offline_w
                    payload["offline_fraction"] = offline_frac
                    recorder.emit(payload)
                    emit_capacity_status(now)
                update_shed(now)

            elif kind == "prot_restore":
                if now > duration_s:
                    # Servers still dark at the horizon stay dark; the
                    # report clamps their offline time to the window.
                    continue
                device_id, step, version = event[1], event[2], event[3]
                outcome = prot.restore_step(device_id, step, version, now)
                if outcome is None:
                    continue  # superseded by a newer trip
                batch, next_push, done = outcome
                recovered = []
                for index in batch:
                    server = self.servers[index]
                    if server.failed:
                        server.recover(now)
                        refresh_power(index)
                        recovered.append(server.server_id)
                if recording:
                    recorder.emit({
                        "t": now, "kind": "reenergize",
                        "device": device_id, "step": step,
                        "servers": recovered,
                    })
                if next_push is not None:
                    queue.push(*next_push)
                if done:
                    pf_report.reenergizations += 1
                    if recording:
                        obs.counter("prot.reenergizations").inc()
                        recorder.emit({
                            "t": now, "kind": "reenergize_done",
                            "device": device_id,
                        })
                        emit_capacity_status(now)
                    update_shed(now)

            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        # Conservation invariant: every scheduled request is accounted
        # exactly once, per priority AND per workload tier — whether it
        # was served, shed, or lost to churn or a breaker trip taking
        # its server offline mid-request.
        offered_by_priority: Dict[Priority, int] = {p: 0 for p in Priority}
        offered_by_workload: Dict[str, int] = {}
        for request in requests:
            if request.arrival_time < duration_s:
                offered_by_priority[request.priority] += 1
                offered_by_workload[request.workload.name] = \
                    offered_by_workload.get(request.workload.name, 0) + 1
        for priority, tier in metrics.items():
            if tier.served + tier.dropped != offered_by_priority[priority]:
                raise SimulationError(
                    "request accounting violated for priority "
                    f"{priority.value}: served {tier.served} + dropped "
                    f"{tier.dropped} != offered "
                    f"{offered_by_priority[priority]}"
                )
        for name, offered in offered_by_workload.items():
            tier = workload_metrics.get(name)
            accounted = 0 if tier is None else tier.served + tier.dropped
            if accounted != offered:
                raise SimulationError(
                    f"request accounting violated for workload {name}: "
                    f"served+dropped {accounted} != offered {offered}"
                )

        powerfail = None
        if prot is not None:
            if shed_active:
                pf_report.time_shedding_s += max(
                    0.0, duration_s - min(shed_since, duration_s)
                )
            powerfail = prot.finalize(last_event_time)

        report.telemetry_dropped_ticks = injector.dropped_ticks
        report.telemetry_frozen_ticks = injector.frozen_ticks
        report.telemetry_spikes = injector.spikes_injected
        report.delayed_actuations = injector.delayed_actuations
        report.time_at_risk_s = tracker.time_at_risk_s
        report.longest_overbudget_s = tracker.longest_overbudget_s

        series = TimeSeries(
            start=0.0,
            interval=config.telemetry_interval_s,
            values=power_samples[:sample_cursor],
        )
        observability: Optional[Dict[str, Any]] = None
        if recording:
            obs.counter("telemetry.ticks").inc(sample_cursor)
            if sample_cursor:
                obs.gauge("power.peak_row_w").set(
                    float(power_samples[:sample_cursor].max())
                )
            obs.gauge("power.provisioned_w").set(config.provisioned_power_w)
            obs.gauge("energy.total_j").set(total_energy)
            observability = obs.snapshot()
            # Live consumers (alert engines, stream monitors — possibly
            # teed with storage sinks) settle their window state at the
            # end of the recorded stream and contribute their own
            # sections (incidents, stream values) next to the metrics
            # snapshot. Plain sinks return None and nothing changes.
            recorder.finalize(duration_s)
            extra = recorder.observability_snapshot()
            if extra:
                for key, value in extra.items():
                    if key not in observability:
                        observability[key] = value
        return SimulationResult(
            per_priority=metrics,
            power_series=series,
            provisioned_power_w=config.provisioned_power_w,
            power_brake_events=brake_events,
            capping_actions=capping_actions,
            duration_s=duration_s,
            per_workload=workload_metrics,
            total_energy_j=total_energy,
            robustness=report,
            observability=observability,
            powerfail=powerfail,
        )
