"""The discrete-event cluster simulator (Section 6.4's evaluation vehicle).

Simulates a row of BLOOM-176B inference servers under a power-management
policy:

* requests arrive from a (synthetic production) trace, are routed by a
  priority-aware load balancer, and execute as prompt+token phase
  segments whose durations stretch under frequency caps;
* the row power — a running sum over piecewise-constant server powers —
  is observed every 2 s (Table 2) and fed to the policy;
* frequency-cap commands land after the 40 s OOB latency; power brakes
  engage after 5 s and force every GPU to 288 MHz until power recedes.

The simulator is deterministic for a fixed seed and request trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.cluster.events import EventQueue
from repro.cluster.loadbalancer import LoadBalancer, split_servers
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.cluster.policy_base import GroupCaps, PowerPolicy
from repro.cluster.server_sim import ServerPowerModel, ServerSim
from repro.errors import ConfigurationError, SimulationError
from repro.gpu.specs import A100_80GB
from repro.telemetry.smbpbi import SMBPBI_ACTUATION_LATENCY_S
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority
from repro.workloads.tracegen import INFERENCE_PROVISIONED_PER_SERVER_W


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of one simulation run.

    Attributes:
        n_base_servers: Designed server count (Table 2: 40).
        added_fraction: Extra servers deployed via oversubscription
            (0.30 adds 12 servers to the default 40).
        provisioned_per_server_w: Breaker budget per *designed* server
            slot; the budget does not grow with added servers.
        low_priority_fraction: Share of servers in the low-priority pool
            (Figure 15b's sweep knob).
        telemetry_interval_s: Row telemetry period (Table 2: 2 s).
        oob_latency_s: Frequency-cap actuation latency (Table 2: 40 s).
        brake_latency_s: Power-brake latency (Table 2: 5 s).
        brake_hold_s: Minimum time the brake stays engaged once active.
        power_scale: GPU dynamic-power multiplier (1.05 = the "+5%"
            robustness scenario of Section 6.6).
        seed: RNG seed for load-balancer tie-breaking.
    """

    n_base_servers: int = 40
    added_fraction: float = 0.0
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    low_priority_fraction: float = 0.5
    telemetry_interval_s: float = 2.0
    oob_latency_s: float = SMBPBI_ACTUATION_LATENCY_S
    brake_latency_s: float = 5.0
    brake_hold_s: float = 60.0
    power_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_base_servers <= 0:
            raise ConfigurationError("n_base_servers must be positive")
        if self.added_fraction < 0:
            raise ConfigurationError("added_fraction cannot be negative")
        if self.telemetry_interval_s <= 0:
            raise ConfigurationError("telemetry interval must be positive")

    @property
    def n_servers(self) -> int:
        """Deployed server count after oversubscription."""
        return self.n_base_servers + int(round(
            self.n_base_servers * self.added_fraction
        ))

    @property
    def provisioned_power_w(self) -> float:
        """The row breaker budget (fixed at the designed capacity)."""
        return self.n_base_servers * self.provisioned_per_server_w


class ClusterSimulator:
    """Runs one policy against one request trace on one row."""

    def __init__(self, config: ClusterConfig, policy: PowerPolicy) -> None:
        self.config = config
        self.policy = policy
        power_model = ServerPowerModel(
            gpu=A100_80GB, power_scale=config.power_scale
        )
        server_ids = [f"s{i}" for i in range(config.n_servers)]
        assignment = split_servers(server_ids, config.low_priority_fraction)
        self.servers: List[ServerSim] = [
            ServerSim(
                server_id=sid,
                priority=assignment[sid],
                power_model=power_model,
            )
            for sid in server_ids
        ]
        self._index_by_priority: Dict[Priority, List[int]] = {
            p: [i for i, s in enumerate(self.servers) if s.priority is p]
            for p in Priority
        }
        self.balancer = LoadBalancer(self.servers, seed=config.seed)

    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[SampledRequest],
        duration_s: float,
    ) -> SimulationResult:
        """Simulate ``duration_s`` seconds of the request trace.

        Requests arriving after ``duration_s`` are ignored; requests in
        flight at the end are allowed to finish (their latencies count).

        Raises:
            ConfigurationError: If the duration is not positive.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.policy.reset()
        queue = EventQueue()
        metrics = {p: PriorityMetrics() for p in Priority}
        workload_metrics: Dict[str, PriorityMetrics] = {}
        power_samples: List[float] = []

        # Running row power; server powers are piecewise constant, which
        # also makes the energy integral exact: accumulate power x dt at
        # every event boundary.
        server_power = [s.current_power() for s in self.servers]
        row_power = sum(server_power)
        total_energy = 0.0
        last_event_time = 0.0

        def refresh_power(index: int) -> None:
            nonlocal row_power
            new_power = self.servers[index].current_power()
            row_power += new_power - server_power[index]
            server_power[index] = new_power

        def workload_tier(name: str) -> PriorityMetrics:
            if name not in workload_metrics:
                workload_metrics[name] = PriorityMetrics()
            return workload_metrics[name]

        # Actuation bookkeeping.
        commanded = GroupCaps.uncapped()
        capping_actions = 0
        brake_state = "off"  # off | pending_on | on | pending_off
        brake_engaged_at = -float("inf")
        brake_events = 0

        server_index = {s.server_id: i for i, s in enumerate(self.servers)}

        for request in requests:
            if request.arrival_time < duration_s:
                queue.push(request.arrival_time, ("arrival", request))
        for tick in np.arange(0.0, duration_s, self.config.telemetry_interval_s):
            queue.push(float(tick), ("tick",))

        def schedule_slot(index: int, slot: int) -> None:
            server = self.servers[index]
            active = server.slots.get(slot)
            if active is None:
                return
            queue.push(
                active.phase_end, ("phase", index, slot, active.version)
            )

        def start_on(now: float, index: int, request: SampledRequest) -> None:
            slot = self.servers[index].start_request(now, request)
            refresh_power(index)
            schedule_slot(index, slot)

        while queue:
            now, event = queue.pop()
            total_energy += row_power * (now - last_event_time)
            last_event_time = now
            kind = event[0]

            if kind == "arrival":
                request: SampledRequest = event[1]
                server = self.balancer.route(request.priority)
                if server is None:
                    metrics[request.priority].dropped += 1
                    workload_tier(request.workload.name).dropped += 1
                    continue
                index = server_index[server.server_id]
                if server.has_free_slot:
                    start_on(now, index, request)
                else:
                    server.buffered = request

            elif kind == "phase":
                index, slot, version = event[1], event[2], event[3]
                server = self.servers[index]
                active = server.slots.get(slot)
                if active is None or active.version != version:
                    continue  # superseded by a clock change
                finished = active.request
                next_end = server.advance_phase(now, slot)
                if next_end is not None:
                    refresh_power(index)
                    schedule_slot(index, slot)
                    continue
                # Request complete; the slot is free again.
                tier = metrics[finished.priority]
                tier.served += 1
                tier.latencies.append(now - finished.arrival_time)
                by_workload = workload_tier(finished.workload.name)
                by_workload.served += 1
                by_workload.latencies.append(now - finished.arrival_time)
                queued = server.take_buffered()
                if queued is not None:
                    start_on(now, index, queued)
                else:
                    refresh_power(index)

            elif kind == "tick":
                power_samples.append(row_power)
                utilization = row_power / self.config.provisioned_power_w
                # --- Brake safety logic (all policies carry the brake).
                if brake_state == "off" and self.policy.wants_brake(utilization):
                    brake_events += 1
                    brake_state = "pending_on"
                    queue.push(now + self.config.brake_latency_s, ("brake_on",))
                elif (
                    brake_state == "on"
                    and now - brake_engaged_at >= self.config.brake_hold_s
                    and self.policy.brake_release_ok(utilization)
                ):
                    brake_state = "pending_off"
                    queue.push(now + self.config.brake_latency_s, ("brake_off",))
                # --- Frequency-capping policy.
                desired = self.policy.desired_caps(utilization, now)
                if desired.low_clock_mhz != commanded.low_clock_mhz:
                    queue.push(
                        now + self.config.oob_latency_s,
                        ("cap", Priority.LOW, desired.low_clock_mhz),
                    )
                    capping_actions += 1
                if desired.high_clock_mhz != commanded.high_clock_mhz:
                    queue.push(
                        now + self.config.oob_latency_s,
                        ("cap", Priority.HIGH, desired.high_clock_mhz),
                    )
                    capping_actions += 1
                commanded = desired

            elif kind == "cap":
                priority, clock_mhz = event[1], event[2]
                ratio = 1.0
                if clock_mhz is not None:
                    ratio = clock_mhz / A100_80GB.max_sm_clock_mhz
                for index in self._index_by_priority[priority]:
                    server = self.servers[index]
                    rescheduled = server.apply_clock(now, ratio)
                    refresh_power(index)
                    for slot in rescheduled:
                        schedule_slot(index, slot)

            elif kind == "brake_on":
                if brake_state != "pending_on":
                    continue
                brake_state = "on"
                brake_engaged_at = now
                for index in range(len(self.servers)):
                    rescheduled = self.servers[index].apply_brake(now, True)
                    refresh_power(index)
                    for slot in rescheduled:
                        schedule_slot(index, slot)

            elif kind == "brake_off":
                if brake_state != "pending_off":
                    continue
                brake_state = "off"
                for index in range(len(self.servers)):
                    rescheduled = self.servers[index].apply_brake(now, False)
                    refresh_power(index)
                    for slot in rescheduled:
                        schedule_slot(index, slot)

            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        series = TimeSeries(
            start=0.0,
            interval=self.config.telemetry_interval_s,
            values=np.asarray(power_samples),
        )
        return SimulationResult(
            per_priority=metrics,
            power_series=series,
            provisioned_power_w=self.config.provisioned_power_w,
            power_brake_events=brake_events,
            capping_actions=capping_actions,
            duration_s=duration_s,
            per_workload=workload_metrics,
            total_energy_j=total_energy,
        )
