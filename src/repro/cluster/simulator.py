"""The discrete-event cluster simulator (Section 6.4's evaluation vehicle).

Simulates a row of BLOOM-176B inference servers under a power-management
policy:

* requests arrive from a (synthetic production) trace, are routed by a
  priority-aware load balancer, and execute as prompt+token phase
  segments whose durations stretch under frequency caps;
* the row power — a running sum over piecewise-constant server powers —
  is observed every 2 s (Table 2) through a
  :class:`~repro.telemetry.base.SampledInterface` and fed to the policy;
* frequency-cap and brake commands are issued through a
  :class:`~repro.control.actuator.Actuator` (40 s OOB / 5 s brake
  latency, Table 2) rather than landing by fiat.

Because the telemetry and actuation paths are real interfaces, a
:class:`~repro.faults.FaultPlan` can make them lie: dropped or frozen
samples, noise and spikes, silently failed or late commands, and server
churn. The control loop is hardened accordingly (Section 3.3's
"may sometimes fail without signaling completion or errors"):

* every command carries a verify-after deadline; unacknowledged commands
  are re-issued with capped exponential backoff;
* when telemetry goes stale beyond a configurable threshold the
  controller falls back to conservative safe caps, and engages the brake
  if the outage outlasts the UPS deadline;
* a :class:`~repro.faults.RobustnessReport` ledgers every injected fault
  against what was detected and recovered, plus the exact time the true
  row power spent above the breaker budget.

With no fault plan (or an all-zeros one) every fault path is inert and
the simulator is bit-identical to the original POLCA reproduction. The
simulator is deterministic for a fixed seed, plan, and request trace.

The event loop itself lives in :class:`repro.cluster.core.SimulationCore`
— a struct-of-arrays core that batches group power refreshes through
vectorized kernels and exposes checkpoint/restore (for
:mod:`repro.exec.incremental`) and shard hooks (for
:mod:`repro.cluster.sharded`). ``ClusterSimulator`` is the stable
facade: configuration, server/pool construction, and run orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.core import SimulationCore
from repro.cluster.loadbalancer import LoadBalancer, split_servers
from repro.cluster.metrics import SimulationResult
from repro.cluster.policy_base import PowerPolicy
from repro.cluster.server_sim import ServerPowerModel, ServerSim
from repro.control.actions import ActionKind
from repro.control.actuator import Actuator
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.reliability import ReliabilityConfig
from repro.gpu.specs import A100_80GB
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.powerfail.topology import ProtectionSpec
from repro.telemetry.smbpbi import SMBPBI_ACTUATION_LATENCY_S
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority
from repro.workloads.tracegen import INFERENCE_PROVISIONED_PER_SERVER_W


@dataclass(frozen=True)
class ClusterConfig:
    """Static configuration of one simulation run.

    Attributes:
        n_base_servers: Designed server count (Table 2: 40).
        added_fraction: Extra servers deployed via oversubscription
            (0.30 adds 12 servers to the default 40).
        provisioned_per_server_w: Breaker budget per *designed* server
            slot; the budget does not grow with added servers.
        low_priority_fraction: Share of servers in the low-priority pool
            (Figure 15b's sweep knob).
        telemetry_interval_s: Row telemetry period (Table 2: 2 s).
        oob_latency_s: Frequency-cap actuation latency (Table 2: 40 s).
        brake_latency_s: Power-brake latency (Table 2: 5 s).
        brake_hold_s: Minimum time the brake stays engaged once active.
        power_scale: GPU dynamic-power multiplier (1.05 = the "+5%"
            robustness scenario of Section 6.6).
        seed: RNG seed for load-balancer tie-breaking.
        fault_plan: Faults to inject during the run; ``None`` (or an
            all-zeros plan) leaves every interface perfect.
        reliability: Reliable-command and graceful-degradation knobs.
        protection: The power-delivery protection hierarchy (breakers,
            trip curves, emergency shedding — see
            :mod:`repro.powerfail`); ``None`` models infinite breaker
            capacity and is bit-identical to the unprotected simulator.
    """

    n_base_servers: int = 40
    added_fraction: float = 0.0
    provisioned_per_server_w: float = INFERENCE_PROVISIONED_PER_SERVER_W
    low_priority_fraction: float = 0.5
    telemetry_interval_s: float = 2.0
    oob_latency_s: float = SMBPBI_ACTUATION_LATENCY_S
    brake_latency_s: float = 5.0
    brake_hold_s: float = 60.0
    power_scale: float = 1.0
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    protection: Optional[ProtectionSpec] = None

    def __post_init__(self) -> None:
        if self.n_base_servers <= 0:
            raise ConfigurationError("n_base_servers must be positive")
        if self.added_fraction < 0:
            raise ConfigurationError("added_fraction cannot be negative")
        if self.provisioned_per_server_w <= 0:
            raise ConfigurationError(
                "provisioned_per_server_w must be positive"
            )
        if not 0.0 <= self.low_priority_fraction <= 1.0:
            raise ConfigurationError(
                "low_priority_fraction must be within [0, 1], got "
                f"{self.low_priority_fraction}"
            )
        if self.telemetry_interval_s <= 0:
            raise ConfigurationError("telemetry_interval_s must be positive")
        if self.oob_latency_s < 0:
            raise ConfigurationError("oob_latency_s cannot be negative")
        if self.brake_latency_s < 0:
            raise ConfigurationError("brake_latency_s cannot be negative")
        if self.brake_hold_s < 0:
            raise ConfigurationError("brake_hold_s cannot be negative")
        if self.power_scale <= 0:
            raise ConfigurationError("power_scale must be positive")

    @property
    def n_servers(self) -> int:
        """Deployed server count after oversubscription."""
        return self.n_base_servers + int(round(
            self.n_base_servers * self.added_fraction
        ))

    @property
    def provisioned_power_w(self) -> float:
        """The row breaker budget (fixed at the designed capacity)."""
        return self.n_base_servers * self.provisioned_per_server_w


class ClusterSimulator:
    """Runs one policy against one request trace on one row.

    Pass a :class:`~repro.obs.recorder.TraceRecorder` to capture the
    run's event stream (control decisions, cap/brake lifecycles,
    fallback windows, churn, serves and drops) and a metrics snapshot in
    ``SimulationResult.observability``. Live consumers — a
    :class:`~repro.obs.stream.StreamMonitor`, an
    :class:`~repro.obs.alerts.AlertEngine`, or a
    :class:`~repro.obs.stream.TeeRecorder` composing them with storage
    sinks — attach the same way and additionally contribute their
    sections (stream values, incidents) to the snapshot. The default is
    the shared :data:`~repro.obs.recorder.NULL_RECORDER`: every hook
    point is guarded by ``recorder.enabled``, so an unrecorded run
    builds no event payloads and stays bit-identical to an
    uninstrumented one.

    ``kernel_timers=True`` additionally times the event loop per event
    kind and surfaces the counters in
    ``result.observability["sim_core"]`` (see
    :class:`~repro.cluster.core.KernelTimers`); the default runs the
    untimed loop with zero overhead.
    """

    def __init__(
        self,
        config: ClusterConfig,
        policy: PowerPolicy,
        recorder: Optional[TraceRecorder] = None,
        kernel_timers: bool = False,
    ) -> None:
        self.config = config
        self.policy = policy
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.kernel_timers = kernel_timers
        self.power_model = ServerPowerModel(
            gpu=A100_80GB, power_scale=config.power_scale
        )
        power_model = self.power_model
        server_ids = [f"s{i}" for i in range(config.n_servers)]
        assignment = split_servers(server_ids, config.low_priority_fraction)
        self.servers: List[ServerSim] = [
            ServerSim(
                server_id=sid,
                priority=assignment[sid],
                power_model=power_model,
            )
            for sid in server_ids
        ]
        self._index_by_priority: Dict[Priority, List[int]] = {
            p: [i for i, s in enumerate(self.servers) if s.priority is p]
            for p in Priority
        }
        self._ids_by_priority: Dict[Priority, frozenset] = {
            p: frozenset(self.servers[i].server_id for i in indices)
            for p, indices in self._index_by_priority.items()
        }
        self._all_ids = frozenset(s.server_id for s in self.servers)
        self.balancer = LoadBalancer(self.servers, seed=config.seed)

    # ------------------------------------------------------------------
    def _build_actuator(self, plan: FaultPlan) -> Actuator:
        """The row's OOB command pipeline, with the plan's unreliability."""
        return Actuator(
            latencies={
                ActionKind.FREQUENCY_LOCK: self.config.oob_latency_s,
                ActionKind.FREQUENCY_UNLOCK: self.config.oob_latency_s,
                ActionKind.POWER_CAP: self.config.oob_latency_s,
                ActionKind.POWER_UNCAP: self.config.oob_latency_s,
                ActionKind.POWER_BRAKE: self.config.brake_latency_s,
                ActionKind.BRAKE_RELEASE: self.config.brake_latency_s,
            },
            silent_failure_rate=plan.actuation.silent_failure_rate,
            seed=plan.seed + 1,
        )

    # ------------------------------------------------------------------
    def start(
        self,
        requests: Sequence[SampledRequest],
        duration_s: float,
        shard_serving: bool = False,
    ) -> SimulationCore:
        """Reset the policy and build a ready-to-run simulation core.

        Raises:
            ConfigurationError: If the duration is not positive.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.policy.reset()
        return SimulationCore(
            self, requests, duration_s, shard_serving=shard_serving
        )

    def run(
        self,
        requests: Sequence[SampledRequest],
        duration_s: float,
    ) -> SimulationResult:
        """Simulate ``duration_s`` seconds of the request trace.

        Requests arriving after ``duration_s`` are ignored; requests in
        flight at the end are allowed to finish (their latencies count).

        Raises:
            ConfigurationError: If the duration is not positive.
        """
        core = self.start(requests, duration_s)
        core.run_all()
        return core.finalize()
