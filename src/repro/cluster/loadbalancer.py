"""Priority-aware load balancing across the row's servers.

The cloud allocator deployed with POLCA "is aware of workload priorities,
and it can make power-oversubscription aware allocation to ensure a good
mix of high and low-priority jobs in every row" (Section 6.3). We model
that by partitioning servers into low- and high-priority pools sized by
the request mix, and routing each request to an idle server of its pool —
falling back to the emptiest buffer ("typical load balanced setup,
reducing the chance of simultaneous capping", Section 6.6) and dropping
the request when every buffer in the pool is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.server_sim import ServerSim
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority


@dataclass
class LoadBalancer:
    """Routes requests to servers within their priority pool.

    Attributes:
        servers: All servers in the row.
        seed: RNG seed for random choice among equally good servers.
    """

    servers: Sequence[ServerSim]
    seed: int = 0
    _pools: Dict[Priority, List[ServerSim]] = field(init=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError("load balancer needs at least one server")
        self._pools = {priority: [] for priority in Priority}
        for server in self.servers:
            self._pools[server.priority].append(server)
        for priority, pool in self._pools.items():
            if not pool:
                raise ConfigurationError(
                    f"no servers allocated to the {priority.value} pool"
                )
        self._rng = np.random.default_rng(self.seed)

    def pool(self, priority: Priority) -> List[ServerSim]:
        """The servers allocated to one priority tier."""
        return self._pools[priority]

    def route(self, priority: Priority) -> Optional[ServerSim]:
        """Pick a server for a request of the given priority.

        Least-loaded routing: a random server among those with the fewest
        occupied slots; when every slot in the pool is busy, a random
        server with a free one-request buffer; else ``None`` (the request
        is dropped — this is what dents low-priority throughput under
        capping in Figure 14).
        """
        pool = self._pools[priority]
        # Single pass, attribute access inlined: this runs once per
        # arrival and dominated the routing cost as three comprehensions.
        # `best` collects pool-ordered least-loaded candidates, exactly as
        # the equivalent filter-then-min construction would, so the RNG
        # draw sequence (one draw per routed request) is unchanged.
        least = -1
        best: List[ServerSim] = []
        for server in pool:
            if server.failed:
                continue
            n_active = len(server.slots)
            if n_active >= server.concurrency:
                continue
            if least < 0 or n_active < least:
                least = n_active
                best = [server]
            elif n_active == least:
                best.append(server)
        if best:
            return best[int(self._rng.integers(len(best)))]
        # Buffer fallback. Skip failed servers explicitly: a request
        # buffered on a dead server would vanish from the served/dropped
        # accounting entirely. (``can_buffer`` also rejects failed
        # servers, but the invariant belongs to routing — keeping the
        # filter here means a future ``can_buffer`` change cannot
        # silently lose requests, and the candidate list is unchanged,
        # so the RNG draw sequence is identical.)
        free_buffer = [s for s in pool if not s.failed and s.can_buffer]
        if free_buffer:
            return free_buffer[int(self._rng.integers(len(free_buffer)))]
        return None


def split_servers(
    server_ids: Sequence[str],
    low_priority_fraction: float = 0.5,
) -> Dict[str, Priority]:
    """Assign servers to priority pools in an interleaved pattern.

    Interleaving (rather than contiguous blocks) models the allocator
    spreading priorities across racks. ``low_priority_fraction`` is the
    Figure 15b sweep knob.

    Raises:
        ConfigurationError: If the fraction would leave a pool empty.
    """
    n = len(server_ids)
    n_low = int(round(n * low_priority_fraction))
    if n_low <= 0 or n_low >= n:
        raise ConfigurationError(
            f"low_priority_fraction {low_priority_fraction} leaves an empty "
            f"pool for {n} servers"
        )
    assignment: Dict[str, Priority] = {}
    # Distribute LP slots as evenly as possible across the ordered list.
    stride = n / n_low
    low_indices = {int(i * stride) for i in range(n_low)}
    cursor = 0
    for index, server_id in enumerate(server_ids):
        if index in low_indices and cursor < n_low:
            assignment[server_id] = Priority.LOW
            cursor += 1
        else:
            assignment[server_id] = Priority.HIGH
    # Exact count correction (set arithmetic may collide).
    actual_low = sum(1 for p in assignment.values() if p is Priority.LOW)
    if actual_low < n_low:
        for server_id in server_ids:
            if actual_low == n_low:
                break
            if assignment[server_id] is Priority.HIGH:
                assignment[server_id] = Priority.LOW
                actual_low += 1
    return assignment
