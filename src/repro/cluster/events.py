"""A minimal, deterministic event queue for the cluster simulator.

Events are ``(time, sequence, payload)`` triples on a binary heap; the
monotonically increasing sequence number breaks time ties deterministically
(insertion order), which keeps simulations reproducible across runs.

Entries are plain tuples rather than objects: heap sifting compares
``(time, sequence)`` with tuple comparison in C, and because the sequence
number is unique the payload is never compared. This is the hottest data
structure in the simulator (hundreds of thousands of comparisons per run),
and tuples cut its cost by several times over a ``__lt__``-carrying class.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    __slots__ = ("_heap", "_sequence", "_last_popped")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._sequence = 0
        self._last_popped = float("-inf")

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time``.

        Raises:
            SimulationError: If scheduling into the already-processed past.
        """
        if time < self._last_popped:
            raise SimulationError(
                f"scheduling event at {time} before current time "
                f"{self._last_popped}"
            )
        heappush(self._heap, (time, self._sequence, payload))
        self._sequence += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``.

        Raises:
            SimulationError: If the queue is empty.
        """
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _sequence, payload = heappop(self._heap)
        self._last_popped = time
        return time, payload

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
