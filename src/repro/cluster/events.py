"""A minimal, deterministic event queue for the cluster simulator.

Events are ``(time, sequence, payload)`` triples on a binary heap; the
monotonically increasing sequence number breaks time ties deterministically
(insertion order), which keeps simulations reproducible across runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _Entry:
    time: float
    sequence: int
    payload: Any = field(compare=False)


@dataclass
class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    _heap: List[_Entry] = field(default_factory=list)
    _sequence: int = 0
    _last_popped: float = float("-inf")

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time``.

        Raises:
            SimulationError: If scheduling into the already-processed past.
        """
        if time < self._last_popped:
            raise SimulationError(
                f"scheduling event at {time} before current time "
                f"{self._last_popped}"
            )
        heapq.heappush(self._heap, _Entry(time, self._sequence, payload))
        self._sequence += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``.

        Raises:
            SimulationError: If the queue is empty.
        """
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._last_popped = entry.time
        return entry.time, entry.payload

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
