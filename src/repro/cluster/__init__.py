"""Discrete-event simulator for an LLM inference row under power management.

This is the reproduction of the paper's evaluation vehicle (Section 6.4):
"We implement a discrete event simulator to evaluate the degree of
oversubscription that we can support in a production LLM inference
cluster... built for a high-traffic scenario [which] assumes that all the
servers are serving inference with models loaded", with "a one-request
buffer per server to simulate queueing delays".

The simulator advances arrival, phase-transition, telemetry, and actuation
events over a row of simulated BLOOM-176B servers; a pluggable power policy
(POLCA or a baseline) observes the 2-second row telemetry through a
:class:`~repro.telemetry.base.SampledInterface` and issues frequency caps
(40 s OOB latency) or power brakes (5 s) through a
:class:`~repro.control.actuator.Actuator`. A
:class:`~repro.faults.FaultPlan` on the config makes those interfaces
unreliable (dropout, noise, silent/late commands, server churn); the
hardened control loop verifies and re-issues commands and degrades to
safe caps when its telemetry goes dark.
"""

from repro.cluster.events import EventQueue
from repro.cluster.server_sim import ServerSim, ServerPowerModel
from repro.cluster.loadbalancer import LoadBalancer
from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.cluster.sharded import ShardedSimulator
from repro.cluster.simulator import ClusterConfig, ClusterSimulator

__all__ = [
    "ClusterConfig",
    "ClusterSimulator",
    "EventQueue",
    "LoadBalancer",
    "PriorityMetrics",
    "ServerPowerModel",
    "ServerSim",
    "ShardedSimulator",
    "SimulationResult",
]
