"""Result accounting for cluster simulations.

Collects per-priority latency populations, served/dropped counts, the row
power series, and the power-management event log — everything Figures 13
through 18 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.stats import LatencySummary, summarize_latencies
from repro.analysis.timeseries import TimeSeries, max_swing
from repro.errors import ConfigurationError
from repro.workloads.spec import Priority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.report import RobustnessReport
    from repro.powerfail.protection import PowerFailReport


@dataclass
class PriorityMetrics:
    """Mutable accumulator for one priority tier.

    Attributes:
        latencies: End-to-end latencies of completed requests (seconds).
        served: Completed request count.
        dropped: Requests rejected because the pool was saturated.
    """

    latencies: List[float] = field(default_factory=list)
    served: int = 0
    dropped: int = 0

    @property
    def offered(self) -> int:
        """Requests offered to this tier."""
        return self.served + self.dropped

    @property
    def served_fraction(self) -> float:
        """Throughput as the fraction of offered requests served."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    def summary(self) -> LatencySummary:
        """Latency percentile summary.

        Raises:
            ConfigurationError: If no request completed.
        """
        return summarize_latencies(self.latencies)


@dataclass
class SimulationResult:
    """Everything a cluster simulation run produced.

    Attributes:
        per_priority: Metrics per priority tier.
        power_series: Row power sampled at the telemetry interval (W).
        provisioned_power_w: The row's breaker budget.
        power_brake_events: Number of distinct brake engagements
            (Figure 18's metric; the Table 6 SLO demands zero).
        capping_actions: Number of frequency-cap commands issued.
        duration_s: Simulated wall-clock duration.
        per_workload: Metrics per Table 6 workload name (Summarize,
            Search, Chat) for workload-level SLO analysis.
        total_energy_j: Exact row energy over the run (server power is
            piecewise constant between events, so the integral is exact).
        robustness: Fault ledger and breaker-exposure summary of the run
            (populated by the simulator; trivially mostly-zero when no
            fault plan was active).
        observability: Metrics-registry snapshot (counters, gauges,
            histograms) of an instrumented run; ``None`` when the run
            used the default :class:`~repro.obs.recorder.NullRecorder`.
            See :func:`repro.obs.metrics.aggregate_snapshots` for
            merging these across a sweep.
        powerfail: Trip/shed/re-energization ledger of the power-
            delivery protection layer (see :mod:`repro.powerfail`);
            ``None`` when ``ClusterConfig.protection`` was unset.
    """

    per_priority: Dict[Priority, PriorityMetrics]
    power_series: TimeSeries
    provisioned_power_w: float
    power_brake_events: int
    capping_actions: int
    duration_s: float
    per_workload: Dict[str, PriorityMetrics] = field(default_factory=dict)
    total_energy_j: float = 0.0
    robustness: Optional["RobustnessReport"] = None
    observability: Optional[Dict[str, Any]] = None
    powerfail: Optional["PowerFailReport"] = None

    def latency_summary(self, priority: Priority) -> LatencySummary:
        """Latency summary for one tier."""
        return self.per_priority[priority].summary()

    def normalized_latencies(
        self, priority: Priority, baseline: "SimulationResult"
    ) -> Dict[str, float]:
        """p50/p99/max latency ratios against a baseline run.

        This is the y-axis of Figures 13, 15, and 17 ("Normalized pXX
        latency" relative to the default, uncapped cluster).
        """
        mine = self.latency_summary(priority)
        theirs = baseline.latency_summary(priority)
        return mine.normalized_to(theirs)

    def normalized_throughput(
        self, priority: Priority, baseline: "SimulationResult"
    ) -> float:
        """Served-fraction ratio against a baseline run (Figure 14)."""
        base = baseline.per_priority[priority].served_fraction
        if base == 0:
            raise ConfigurationError("baseline served nothing")
        return self.per_priority[priority].served_fraction / base

    @property
    def peak_utilization(self) -> float:
        """Peak row power over provisioned power."""
        return self.power_series.peak() / self.provisioned_power_w

    @property
    def mean_utilization(self) -> float:
        """Mean row power over provisioned power."""
        return self.power_series.mean() / self.provisioned_power_w

    def max_swing_fraction(self, window_seconds: float) -> float:
        """Largest power rise within a window, as a provisioned fraction
        (Table 4's 'Max. power spike in 2s / 40s' rows)."""
        return max_swing(self.power_series, window_seconds) / self.provisioned_power_w

    @property
    def total_served(self) -> int:
        """Requests completed across both priority tiers."""
        return sum(m.served for m in self.per_priority.values())

    @property
    def energy_per_request_j(self) -> float:
        """Row energy divided by served requests (the efficiency metric
        energy-oriented work optimizes; POLCA targets peak power, but the
        two interact).

        Raises:
            ConfigurationError: If no request completed.
        """
        if self.total_served == 0:
            raise ConfigurationError("no requests served")
        return self.total_energy_j / self.total_served

    def workload_summary(self, workload_name: str) -> "LatencySummary":
        """Latency summary for one Table 6 workload.

        Raises:
            ConfigurationError: If the workload saw no completions.
        """
        if workload_name not in self.per_workload:
            raise ConfigurationError(
                f"no metrics recorded for workload {workload_name!r}"
            )
        return self.per_workload[workload_name].summary()
