"""Power-policy interface consumed by the cluster simulator.

A policy sees exactly what POLCA's power manager sees (Figure 12): the
row-level power utilization from the 2-second PDU telemetry, nothing else.
It answers with the frequency caps it *wants* per priority group and
whether the brake should engage; the simulator is responsible for the
realities of actuation (40 s OOB latency, 5 s brake latency).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GroupCaps:
    """Desired frequency caps per priority group.

    Attributes:
        low_clock_mhz: SM clock cap for low-priority servers
            (``None`` = uncapped).
        high_clock_mhz: SM clock cap for high-priority servers.
    """

    low_clock_mhz: Optional[float] = None
    high_clock_mhz: Optional[float] = None

    @classmethod
    def uncapped(cls) -> "GroupCaps":
        """No caps on either group."""
        return cls(low_clock_mhz=None, high_clock_mhz=None)


class PowerPolicy(abc.ABC):
    """Base class for row-level power-management policies.

    Policies may keep internal mode state (all the paper's policies are
    hysteretic); :meth:`reset` returns them to the uncapped state between
    simulation runs.
    """

    #: Display name used in result tables (e.g. ``"POLCA"``).
    name: str = "policy"

    #: Row utilization at which the power brake engages (breaker safety).
    brake_threshold: float = 1.0

    #: Row utilization below which an engaged brake is released.
    brake_release: float = 0.92

    @abc.abstractmethod
    def desired_caps(self, utilization: float, now: float = 0.0) -> GroupCaps:
        """Desired per-group caps given the current row utilization.

        Called at every telemetry tick (2 s). Implementations apply their
        thresholds and hysteresis and return the target state; returning
        the same state as the previous tick is expected and cheap (the
        simulator deduplicates commands). ``now`` is the simulation time,
        for policies whose escalation depends on how long a condition has
        persisted (POLCA waits out the OOB actuation latency before
        touching high-priority workloads).
        """

    def wants_brake(self, utilization: float) -> bool:
        """Whether the brake should engage at this utilization."""
        return utilization >= self.brake_threshold

    def brake_release_ok(self, utilization: float) -> bool:
        """Whether an engaged brake may release at this utilization."""
        return utilization < self.brake_release

    def reset(self) -> None:
        """Clear internal mode state before a fresh simulation run."""
