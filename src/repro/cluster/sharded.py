"""Sharded execution of one large cluster simulation.

One row of servers is partitioned round-robin across ``n_shards``
serve-only shards. Each shard is a *full-configuration*
:class:`~repro.cluster.core.SimulationCore` whose non-owned servers are
marked failed before start — they draw zero power, the load balancer
never routes to them, and cap/brake landings leave them at zero — so
the shard simulates exactly its slice of the row while keeping global
server indexing, priority pools, and RNG seeding identical to a serial
run.

A single control-plane *parent* core (built over an empty request
trace) runs the real policy, brake state machine, and telemetry-health
logic over the **merged** row power. The driver synchronizes at every
telemetry tick:

1. each shard pauses at its tick (:meth:`~repro.cluster.core
   .SimulationCore.run_shard` yields ``(now, row_power, free_slots)``);
2. the parent processes the same tick with its ``row_power`` swapped to
   the shard sum, so the policy observes exactly what a serial
   controller would; command pushes land in the parent's ``outbox``;
3. the driver assigns the next epoch's arrivals greedily to the shard
   with the most free slots in the request's priority pool, then
   resumes every shard with the broadcast (command landings, arrival
   ownership, cancelled brake versions).

Commands land strictly after the tick that issued them (actuation
latencies are positive), so a broadcast at the issuing tick always
reaches every shard before the landing time — the merged trajectory
is *epoch-synchronized*, not approximate.

With ``n_shards=1`` the decomposition is exact: the sole shard owns
every server and every arrival, the merged power is the shard's own
row power (``0.0 + x == x``), and the result is bit-identical to
:meth:`ClusterSimulator.run` — the parity tests assert this on the
fault-free reference configurations. With ``n_shards > 1`` the
partitioned cluster is a *different* (deterministic) system — routing
is per-shard — so parity holds between the parallel and in-process
drivers rather than against the serial simulator.

Sharding requires the fault-free elisions (no telemetry/actuation
faults, no churn, no protection hierarchy): anything that couples the
serve path to a global RNG stream or to breaker state would break the
decomposition, so :class:`ShardedSimulator` rejects such
configurations outright.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.metrics import PriorityMetrics, SimulationResult
from repro.cluster.policy_base import PowerPolicy
from repro.cluster.simulator import ClusterConfig, ClusterSimulator
from repro.core.baselines import NoCapPolicy
from repro.errors import ConfigurationError
from repro.obs.collect import (
    PARENT_SHARD,
    SuppressKindsRecorder,
    merge_segments,
    shard_suppressed_kinds,
)
from repro.obs.metrics import aggregate_snapshots
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)
from repro.workloads.requests import SampledRequest
from repro.workloads.spec import Priority

__all__ = ["ShardedSimulator"]


def _fork_available() -> bool:
    # Duplicated from repro.exec.engine to keep repro.cluster free of
    # repro.exec imports (exec already imports the cluster package).
    return "fork" in multiprocessing.get_all_start_methods()


def _owned_indices(n_servers: int, shard: int, n_shards: int) -> List[int]:
    """Round-robin server ownership: shard ``s`` owns ``i % n == s``.

    Round-robin (rather than contiguous blocks) keeps every shard's
    low/high priority pool split close to the configured fraction, so
    no shard ends up unable to serve one priority class.
    """
    return [i for i in range(n_servers) if i % n_shards == shard]


def _shard_spool(shard: int, segment_path: Optional[str] = None):
    """The spool recorder for one shard's segment.

    In-process shards spool to memory; forked shards spool to a local
    JSONL segment the parent reads back. Either way the spool drops
    the kinds another segment owns (:func:`shard_suppressed_kinds`),
    so the merged stream carries exactly one copy of each event.
    """
    sink: TraceRecorder = MemoryRecorder() if segment_path is None \
        else JsonlRecorder(segment_path)
    return SuppressKindsRecorder(sink, shard_suppressed_kinds(shard))


def _build_shard_core(
    config: ClusterConfig,
    requests: Sequence[SampledRequest],
    duration_s: float,
    shard: int,
    n_shards: int,
    recorder: Optional[TraceRecorder] = None,
) -> Any:
    """One serve-only shard core with non-owned servers pre-failed."""
    simulator = ClusterSimulator(config, NoCapPolicy(), recorder=recorder)
    owned = set(_owned_indices(config.n_servers, shard, n_shards))
    for index, server in enumerate(simulator.servers):
        if index not in owned:
            # Failed before start: initial server_power is 0.0, the
            # balancer skips it, and _free_slots never counts it.
            server.failed = True
    core = simulator.start(requests, duration_s, shard_serving=True)
    # The SoA mirror is built all-False; sync it, or the vectorized
    # group refresh at cap/brake landings would hand non-owned servers
    # their idle power back.
    for index in range(config.n_servers):
        if index not in owned:
            core.arrays.failed[index] = True
    return core


def _shard_worker(conn, config, requests, duration_s, shard, n_shards,
                  segment_path=None):
    """Worker-process loop speaking the shard pipe protocol.

    Sends the initial free-slot report, receives the time-zero arrival
    grant, then alternates tick yields against driver replies until the
    shard's event queue drains; the final message is the shard's
    finalized result. When recording, the shard spools its events to a
    worker-local JSONL segment (line order is the segment's ``seq``)
    that the parent merges after the run.
    """
    recorder = None if segment_path is None \
        else _shard_spool(shard, segment_path)
    core = _build_shard_core(
        config, requests, duration_s, shard, n_shards, recorder=recorder
    )
    conn.send(core._free_slots())
    core.owned_arrivals.update(conn.recv())
    generator = core.run_shard()
    try:
        item = next(generator)
        while True:
            conn.send(item)
            item = generator.send(conn.recv())
    except StopIteration:
        pass
    # finalize() drives the recorder's own finalize hook, so the spool
    # closes only after the result is complete.
    result = core.finalize()
    if recorder is not None:
        recorder.close()
    conn.send(result)
    conn.close()


class _LocalShard:
    """In-process shard backend (also the no-fork fallback)."""

    def __init__(self, config, requests, duration_s, shard, n_shards,
                 recording=False):
        self.spool = _shard_spool(shard) if recording else None
        self.core = _build_shard_core(
            config, requests, duration_s, shard, n_shards,
            recorder=self.spool,
        )
        self.generator = self.core.run_shard()

    def initial_free(self) -> Dict[str, int]:
        return self.core._free_slots()

    def prime(self, initial_owned: Sequence[int]):
        self.core.owned_arrivals.update(initial_owned)
        try:
            return next(self.generator)
        except StopIteration:  # pragma: no cover - duration > 0 ticks
            return None

    def tick_reply(self, reply: Dict[str, Any]):
        try:
            return self.generator.send(reply)
        except StopIteration:
            return None

    def finalize(self) -> SimulationResult:
        return self.core.finalize()

    def trace_events(self) -> List[TraceEvent]:
        assert self.spool is not None
        return self.spool.inner.events


class _PipeShard:
    """Forked worker-process shard backend (bit-identical to local:
    the worker runs the same ``run_shard`` loop on the same inputs)."""

    def __init__(self, config, requests, duration_s, shard, n_shards,
                 segment_path=None):
        self.segment_path = segment_path
        ctx = multiprocessing.get_context("fork")
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_worker,
            args=(child, config, requests, duration_s, shard, n_shards,
                  segment_path),
        )
        self.process.start()
        child.close()
        self._result: Optional[SimulationResult] = None

    def initial_free(self) -> Dict[str, int]:
        return self.conn.recv()

    def prime(self, initial_owned: Sequence[int]):
        self.conn.send(list(initial_owned))
        return self.conn.recv()

    def tick_reply(self, reply: Dict[str, Any]):
        self.conn.send(reply)
        item = self.conn.recv()
        if isinstance(item, SimulationResult):
            self._result = item
            return None
        return item

    def finalize(self) -> SimulationResult:
        if self._result is None:  # pragma: no cover - defensive
            self._result = self.conn.recv()
        self.conn.close()
        self.process.join()
        return self._result

    def trace_events(self) -> List[TraceEvent]:
        # Valid only after finalize(): the worker closes its spool
        # before sending the result, so the segment is complete.
        assert self.segment_path is not None
        return read_jsonl(self.segment_path)


class ShardedSimulator:
    """Epoch-synchronized sharded run of one cluster configuration.

    Args:
        config: The cluster configuration. Must be fault-free: no
            non-trivial ``fault_plan`` and no ``protection`` hierarchy.
        policy: The power-management policy (runs in the parent
            control plane only).
        n_shards: Number of serve-only shards the row is partitioned
            into. ``1`` is bit-identical to ``ClusterSimulator.run``.
        parallel: Fan shards out to forked worker processes. Falls
            back to in-process shards (same results) when ``fork`` is
            unavailable or ``n_shards == 1``.
        recorder: Optional trace sink. Each shard (and the
            control-plane parent) spools events locally — forked
            shards to worker-local JSONL segments — and the parent
            merges the segments deterministically
            (:func:`repro.obs.collect.merge_segments`) into this
            recorder after the run. With ``n_shards == 1`` the merged
            trace is byte-identical to a serial
            ``ClusterSimulator.run`` recording; recording never
            perturbs results. The default stays
            :data:`~repro.obs.recorder.NULL_RECORDER`.
        spool_dir: Directory for forked shards' JSONL segments (a
            temporary directory, removed after the merge, when not
            given). Only used when recording with the pipe backend.

    Raises:
        ConfigurationError: On a faulty/protected configuration or an
            invalid shard count.
    """

    def __init__(
        self,
        config: ClusterConfig,
        policy: PowerPolicy,
        n_shards: int = 1,
        parallel: bool = False,
        recorder: Optional[TraceRecorder] = None,
        spool_dir: Optional[str] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError("n_shards must be at least 1")
        if n_shards > config.n_servers:
            raise ConfigurationError(
                f"n_shards ({n_shards}) exceeds the server count "
                f"({config.n_servers})"
            )
        plan = config.fault_plan
        if plan is not None and not plan.is_trivial:
            raise ConfigurationError(
                "sharded execution requires a fault-free configuration "
                "(fault injection couples shards through global "
                "RNG/telemetry state)"
            )
        if config.protection is not None:
            raise ConfigurationError(
                "sharded execution does not support a protection "
                "hierarchy (breaker state is global)"
            )
        self.config = config
        self.policy = policy
        self.n_shards = n_shards
        self.parallel = parallel
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.spool_dir = spool_dir

    # ------------------------------------------------------------------
    def _use_pipe(self) -> bool:
        return self.parallel and self.n_shards > 1 and _fork_available()

    def _backends(self, requests, duration_s, spool_dir=None) -> List[Any]:
        recording = self.recorder.enabled
        if self._use_pipe():
            return [
                _PipeShard(
                    self.config, requests, duration_s, s, self.n_shards,
                    segment_path=(
                        os.path.join(spool_dir, f"shard-{s}.jsonl")
                        if recording else None
                    ),
                )
                for s in range(self.n_shards)
            ]
        return [
            _LocalShard(self.config, requests, duration_s, s,
                        self.n_shards, recording=recording)
            for s in range(self.n_shards)
        ]

    @staticmethod
    def _pick_shard(frees: List[Dict[str, int]], priority: Priority) -> int:
        """Shard with the most free slots in the priority's pool
        (ties to the lowest index; all-zero still assigns — the shard's
        own balancer buffers or drops exactly as a serial row would)."""
        key = priority.value
        best = 0
        best_free = frees[0].get(key, 0)
        for shard in range(1, len(frees)):
            free = frees[shard].get(key, 0)
            if free > best_free:
                best, best_free = shard, free
        return best

    def run(
        self, requests: Sequence[SampledRequest], duration_s: float
    ) -> SimulationResult:
        """Simulate ``duration_s`` seconds of the trace, sharded.

        Raises:
            ConfigurationError: If the duration is not positive.
        """
        config = self.config
        interval = config.telemetry_interval_s
        recording = self.recorder.enabled
        parent_spool = None
        if recording:
            # The parent's own landings are duplicates of the shards'
            # (and sit at the wrong position relative to the shards'
            # rescales), so its spool drops them at the source.
            parent_spool = _shard_spool(PARENT_SHARD)
        parent_sim = ClusterSimulator(
            config, self.policy, recorder=parent_spool
        )
        parent = parent_sim.start([], duration_s)
        parent.outbox = []
        parent.outbox_cancels = []
        spool_tmp = None
        spool_dir = self.spool_dir
        if recording and self._use_pipe() and spool_dir is None:
            spool_tmp = tempfile.TemporaryDirectory(
                prefix="repro-shard-trace-"
            )
            spool_dir = spool_tmp.name
        try:
            return self._drive(
                parent, requests, duration_s, interval, spool_dir,
                parent_spool,
            )
        finally:
            if spool_tmp is not None:
                spool_tmp.cleanup()

    def _drive(
        self,
        parent: Any,
        requests: Sequence[SampledRequest],
        duration_s: float,
        interval: float,
        spool_dir: Optional[str],
        parent_spool: Optional[SuppressKindsRecorder],
    ) -> SimulationResult:
        backends = self._backends(requests, duration_s, spool_dir)

        # Arrival assignment order: by arrival time, ties by trace
        # index (the event queue's own tie-break for the init pushes).
        order = sorted(
            (i for i, r in enumerate(requests)
             if r.arrival_time < duration_s),
            key=lambda i: (requests[i].arrival_time, i),
        )
        cursor = 0

        # Arrivals at t == 0.0 pop before the first tick (init pushes
        # precede the tick schedule), so their ownership must be
        # granted before the shards start.
        frees = [backend.initial_free() for backend in backends]
        initial_owned: List[List[int]] = [[] for _ in backends]
        while cursor < len(order) \
                and requests[order[cursor]].arrival_time <= 0.0:
            index = order[cursor]
            shard = self._pick_shard(frees, requests[index].priority)
            initial_owned[shard].append(index)
            frees[shard][requests[index].priority.value] -= 1
            cursor += 1
        items = [
            backend.prime(initial_owned[i])
            for i, backend in enumerate(backends)
        ]

        ticks_remaining = len(parent.power_samples)
        queue = parent.queue
        while queue:
            now, event = queue.pop()
            if event[0] != "tick":
                # Command landings on the parent's own state machine;
                # fault-free, these push nothing new.
                parent._process(now, event)
                continue
            ticks_remaining -= 1
            merged = 0.0
            for item in items:
                assert item is not None and item[1] == now, (
                    "shard desynchronized from the parent tick schedule"
                )
                merged += item[2]
            # The parent's own row power (idle servers) is integrated
            # and discarded — its energy and breaker exposure are
            # recomputed from the shards in the merge. The swap makes
            # the tick's sample, telemetry read, and control step see
            # the merged row exactly as a serial controller would; the
            # inner _integrate is a dt == 0 no-op.
            parent._integrate(now)
            saved = parent.row_power
            parent.row_power = merged
            parent._process(now, ("tick",))
            parent.row_power = saved

            # Grant the next epoch's arrivals: everything in
            # (now, now + interval] — an arrival exactly at a tick time
            # pops before that tick, so it must already be owned. The
            # last tick takes the remainder (< duration_s by
            # construction of the tick schedule).
            frees = [dict(item[3]) for item in items]
            horizon = float("inf") if ticks_remaining == 0 \
                else now + interval
            grants: List[List[int]] = [[] for _ in backends]
            while cursor < len(order) \
                    and requests[order[cursor]].arrival_time <= horizon:
                index = order[cursor]
                shard = self._pick_shard(frees, requests[index].priority)
                grants[shard].append(index)
                frees[shard][requests[index].priority.value] -= 1
                cursor += 1

            push = tuple(parent.outbox)
            cancel = tuple(parent.outbox_cancels)
            parent.outbox.clear()
            parent.outbox_cancels.clear()
            for i, backend in enumerate(backends):
                items[i] = backend.tick_reply(
                    {"push": push, "own": grants[i], "cancel": cancel}
                )

        shard_results = [backend.finalize() for backend in backends]
        parent_result = parent.finalize()
        if parent_spool is not None:
            segments: Dict[int, List[TraceEvent]] = {
                PARENT_SHARD: parent_spool.inner.events
            }
            for shard, backend in enumerate(backends):
                segments[shard] = backend.trace_events()
            for event in merge_segments(segments):
                self.recorder.emit(event)
            self.recorder.finalize(duration_s)
        return self._merge(parent_result, shard_results, duration_s)

    # ------------------------------------------------------------------
    def _merge_observability(
        self,
        parent_result: SimulationResult,
        shard_results: List[SimulationResult],
        total_energy_j: float,
        peak_row_w: float,
    ) -> Optional[Dict[str, Any]]:
        """One observability snapshot for the whole sharded run.

        Counters add across planes — request counters live only in the
        shards, control/brake/command counters only in the parent, and
        every recording core pre-registers the full set at zero, so
        the sums are exact. The double-counted tick counter and the
        per-plane energy/peak gauges are overwritten with the merged
        truth, and any snapshot the caller's recorder itself exposes
        (e.g. a sampling census) merges in non-destructively — the
        same contract as ``SimulationCore.finalize``.
        """
        snapshots = [parent_result.observability] \
            + [result.observability for result in shard_results]
        observability = aggregate_snapshots(
            [snap for snap in snapshots if snap]
        )
        counters = observability.setdefault("counters", {})
        parent_counters = (parent_result.observability or {}) \
            .get("counters", {})
        counters["telemetry.ticks"] = \
            parent_counters.get("telemetry.ticks", 0)
        gauges = observability.setdefault("gauges", {})
        gauges["energy.total_j"] = total_energy_j
        gauges["power.peak_row_w"] = peak_row_w
        extra = self.recorder.observability_snapshot()
        if extra:
            for key, value in extra.items():
                if key not in observability:
                    observability[key] = value
        return observability

    # ------------------------------------------------------------------
    def _merge(
        self,
        parent_result: SimulationResult,
        shard_results: List[SimulationResult],
        duration_s: float,
    ) -> SimulationResult:
        config = self.config
        report = parent_result.robustness
        if len(shard_results) == 1:
            # Exact: the sole shard integrated the true row power at
            # full event granularity, and the parent's control-plane
            # counters saw the identical trajectory.
            sole = shard_results[0]
            report.time_at_risk_s = sole.robustness.time_at_risk_s
            report.longest_overbudget_s = \
                sole.robustness.longest_overbudget_s
            per_priority = sole.per_priority
            per_workload = sole.per_workload
            total_energy = sole.total_energy_j
        else:
            per_priority = {}
            for priority in Priority:
                merged_tier = PriorityMetrics()
                for result in shard_results:
                    tier = result.per_priority[priority]
                    merged_tier.latencies.extend(tier.latencies)
                    merged_tier.served += tier.served
                    merged_tier.dropped += tier.dropped
                per_priority[priority] = merged_tier
            per_workload: Dict[str, PriorityMetrics] = {}
            for result in shard_results:
                for name, tier in result.per_workload.items():
                    merged_tier = per_workload.setdefault(
                        name, PriorityMetrics()
                    )
                    merged_tier.latencies.extend(tier.latencies)
                    merged_tier.served += tier.served
                    merged_tier.dropped += tier.dropped
            total_energy = 0.0
            for result in shard_results:
                total_energy += result.total_energy_j
            # Breaker exposure at telemetry-tick granularity (the
            # merged row is only known at the synchronization points).
            budget = config.provisioned_power_w
            interval = config.telemetry_interval_s
            at_risk = 0.0
            longest = 0.0
            run_length = 0.0
            values = parent_result.power_series.values
            for i, value in enumerate(values):
                dt = min(interval, duration_s - i * interval)
                if dt <= 0.0:
                    break
                if value > budget:
                    run_length += dt
                    at_risk += dt
                else:
                    longest = max(longest, run_length)
                    run_length = 0.0
            report.time_at_risk_s = at_risk
            report.longest_overbudget_s = max(longest, run_length)
        observability = None
        if self.recorder.enabled:
            values = parent_result.power_series.values
            observability = self._merge_observability(
                parent_result, shard_results, total_energy,
                max(values) if len(values) else 0.0,
            )
        return SimulationResult(
            per_priority=per_priority,
            power_series=parent_result.power_series,
            provisioned_power_w=config.provisioned_power_w,
            power_brake_events=parent_result.power_brake_events,
            capping_actions=parent_result.capping_actions,
            duration_s=duration_s,
            per_workload=per_workload,
            total_energy_j=total_energy,
            robustness=report,
            observability=observability,
        )
