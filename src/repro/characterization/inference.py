"""Inference power time series (Figures 6 and 9).

Figure 6 runs "three inferences of the same prompt" per model and shows
the two-phase power signature: a brief spike at or above TDP during prompt
processing, then a long, stable, lower plateau during token sampling.
Figure 9 repeats the BLOOM run under a 325 W power cap (reactive — the
spike overshoots) and under a 1.1 GHz frequency lock (proactive — the
whole series scales down and stretches out).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.timeseries import TimeSeries, concatenate, sample_times
from repro.errors import ConfigurationError
from repro.gpu.capping import ReactivePowerCap
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.inference import InferenceRequest, request_timeline
from repro.models.registry import LlmSpec, get_model
from repro.telemetry.dcgm import DCGM_INTERVAL_S

#: Idle gap between the repeated requests of Figure 6, seconds.
INTER_REQUEST_GAP_S = 0.5


def inference_power_series(
    model: LlmSpec,
    request: InferenceRequest,
    gpu: GpuSpec = A100_80GB,
    sample_interval: float = DCGM_INTERVAL_S,
    frequency_lock_mhz: Optional[float] = None,
    power_cap_w: Optional[float] = None,
    noise_std: float = 0.01,
    seed: int = 0,
) -> TimeSeries:
    """Per-GPU power during one inference request.

    At most one knob may be active at a time (the paper's methodology).

    Raises:
        ConfigurationError: If both knobs are requested at once.
    """
    if frequency_lock_mhz is not None and power_cap_w is not None:
        raise ConfigurationError("apply one knob at a time, as the paper does")
    power_model = GpuPowerModel(gpu)
    clock_ratio = 1.0
    if frequency_lock_mhz is not None:
        gpu.validate_clock(frequency_lock_mhz)
        clock_ratio = frequency_lock_mhz / gpu.max_sm_clock_mhz
    cap: Optional[ReactivePowerCap] = None
    if power_cap_w is not None:
        cap = ReactivePowerCap(power_model, cap_w=power_cap_w)
    timeline = request_timeline(model, gpu, request)
    rng = np.random.default_rng(seed)
    total = timeline.total_seconds(clock_ratio)
    times = sample_times(0.0, total, sample_interval)
    values = np.empty(times.size)
    # Absolute phase boundaries at the effective clock.
    boundaries = []
    elapsed = 0.0
    for segment in timeline.segments:
        elapsed += segment.duration_at(clock_ratio)
        boundaries.append((elapsed, segment.activity))
    clock = clock_ratio * gpu.max_sm_clock_mhz

    def activity_at(t: float) -> float:
        for end, segment_activity in boundaries:
            if t < end:
                return segment_activity
        return boundaries[-1][1]

    for i, t in enumerate(times):
        if cap is not None:
            # DCGM reports interval-averaged power, so run the reactive
            # control loop on its own fine-grained schedule and average —
            # the reported spike overshoots the cap only partially
            # (Figure 9b), because throttling begins mid-interval.
            steps = max(1, int(round(sample_interval / cap.sample_interval)))
            fine = [
                cap.observe(float(t) + k * cap.sample_interval,
                            activity_at(float(t) + k * cap.sample_interval))
                for k in range(steps)
            ]
            power = sum(fine) / len(fine)
        else:
            power = power_model.power(activity_at(float(t)), clock)
        values[i] = power * (1.0 + noise_std * rng.standard_normal())
    return TimeSeries(start=0.0, interval=sample_interval, values=values)


def repeated_inference_series(
    model_name: str,
    n_requests: int = 3,
    input_tokens: int = 2048,
    output_tokens: int = 256,
    batch_size: int = 1,
    frequency_lock_mhz: Optional[float] = None,
    power_cap_w: Optional[float] = None,
    seed: int = 0,
) -> TimeSeries:
    """The Figure 6 trace: ``n_requests`` back-to-back identical requests.

    A short idle gap separates requests (the serving framework dequeues
    the next request), during which power falls toward idle.

    Raises:
        ConfigurationError: If ``n_requests`` is not positive.
    """
    if n_requests <= 0:
        raise ConfigurationError("n_requests must be positive")
    model = get_model(model_name)
    request = InferenceRequest(
        model_name=model_name,
        input_tokens=input_tokens,
        output_tokens=output_tokens,
        batch_size=batch_size,
    )
    gpu = A100_80GB
    power_model = GpuPowerModel(gpu)
    gap_samples = int(round(INTER_REQUEST_GAP_S / DCGM_INTERVAL_S))
    idle_power = power_model.power(0.0, gpu.max_sm_clock_mhz)
    parts = []
    for index in range(n_requests):
        part = inference_power_series(
            model,
            request,
            gpu=gpu,
            frequency_lock_mhz=frequency_lock_mhz,
            power_cap_w=power_cap_w,
            seed=seed + index,
        )
        parts.append(part)
        if index != n_requests - 1:
            parts.append(TimeSeries(
                start=0.0,
                interval=DCGM_INTERVAL_S,
                values=np.full(gap_samples, idle_power),
            ))
    return concatenate(parts)
