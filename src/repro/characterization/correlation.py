"""The Figure 7 counter-correlation experiment.

Profiles the synthetic DCGM counters for the prompt and token phases of
BLOOM inference and computes the pairwise Pearson correlation matrices,
reproducing the paper's qualitative structure: prompt-phase power strongly
tracks SM and tensor-core activity and anti-correlates with memory
utilization; token-phase counters are mutually uncorrelated.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.analysis.correlation import correlation_matrix
from repro.gpu.counters import CounterSynthesizer


def phase_correlation_matrices(
    samples: int = 600, seed: int = 0
) -> Dict[str, Tuple[list, np.ndarray]]:
    """Correlation matrices for the prompt and token phases.

    Also exercises the lag-alignment step from Section 3.4: the
    tensor-core counter is synthesized with a reporting lag and re-aligned
    by peak matching before correlating, as the paper describes.

    Returns:
        ``{"prompt": (names, matrix), "token": (names, matrix)}``.
    """
    synthesizer = CounterSynthesizer(seed=seed)
    prompt = synthesizer.prompt_phase(samples)
    # Interval-updated counters lag instantaneous ones; inject the lag and
    # then undo it the way the paper does (peak alignment).
    prompt = prompt.lagged("tensor_core_activity", lag_samples=3)
    prompt = prompt.aligned("tensor_core_activity", reference="power")
    token = synthesizer.token_phase(samples)
    return {
        "prompt": correlation_matrix(prompt.counters),
        "token": correlation_matrix(token.counters),
    }
