"""Drivers for the paper's Section 4 characterization experiments.

Each module packages one family of experiments as library functions that
return plain data (time series, sweep tables, correlation matrices); the
``benchmarks/`` tree calls these to regenerate each figure's rows/series.
"""

from repro.characterization.inference import (
    inference_power_series,
    repeated_inference_series,
)
from repro.characterization.sweeps import ConfigSweepPoint, config_sweep
from repro.characterization.frequency import (
    FrequencyTradeoffPoint,
    frequency_sensitivity,
    frequency_tradeoff,
)
from repro.characterization.correlation import phase_correlation_matrices
from repro.characterization.scale import (
    ClusterPowerPatterns,
    inference_cluster_patterns,
    training_cluster_patterns,
)

__all__ = [
    "ClusterPowerPatterns",
    "ConfigSweepPoint",
    "FrequencyTradeoffPoint",
    "config_sweep",
    "frequency_sensitivity",
    "frequency_tradeoff",
    "inference_cluster_patterns",
    "inference_power_series",
    "phase_correlation_matrices",
    "repeated_inference_series",
    "training_cluster_patterns",
]
