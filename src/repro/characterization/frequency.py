"""Frequency-locking trade-offs for inference (Figure 10).

Figure 10 varies the locked SM clock over 1.1-1.4 GHz and plots the peak
power reduction against the performance (end-to-end latency) reduction:

* 10a — one curve per model at a common configuration; the relationship
  is superlinear (up to ~20% peak power for <=7% performance), and larger
  models are more sensitive (BLOOM ~5% at a 13% reduction where GPT-NeoX
  loses almost nothing);
* 10b — BLOOM only, varying prompt-heaviness (input/batch): bigger
  prompts mean a bigger clock-sensitive latency share;
* 10c — raw performance-vs-frequency, showing <2% loss at ~100 MHz below
  the maximum, motivating 1305 MHz as the high-priority cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.inference import InferenceRequest, request_timeline
from repro.models.registry import get_model

#: Clock points spanning the paper's 1.1-1.4 GHz locking range.
DEFAULT_CLOCKS_MHZ = (1410, 1380, 1350, 1305, 1275, 1230, 1170, 1100)

#: Common evaluation configuration for the Figure 10a curves.
EVAL_INPUT = 4096
EVAL_OUTPUT = 256

#: The (batch, input) variants of Figure 10b.
BLOOM_VARIANTS: Tuple[Tuple[int, int], ...] = (
    (1, 512),
    (1, 2048),
    (1, 8192),
    (16, 512),
)


@dataclass(frozen=True)
class FrequencyTradeoffPoint:
    """One point on a Figure 10 curve.

    Attributes:
        model_name: The model.
        sm_clock_mhz: The locked clock.
        peak_power_reduction: Fractional peak-power drop vs unlocked.
        performance_reduction: Fractional end-to-end latency increase,
            expressed as throughput reduction ``1 - t0/t``.
    """

    model_name: str
    sm_clock_mhz: float
    peak_power_reduction: float
    performance_reduction: float


def frequency_tradeoff(
    model_name: str,
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    input_tokens: int = EVAL_INPUT,
    output_tokens: int = EVAL_OUTPUT,
    batch_size: int = 1,
    gpu: GpuSpec = A100_80GB,
) -> List[FrequencyTradeoffPoint]:
    """One Figure 10a/10b curve.

    Raises:
        ConfigurationError: If no clocks are given.
    """
    if not clocks_mhz:
        raise ConfigurationError("need at least one clock point")
    model = get_model(model_name)
    request = InferenceRequest(model_name, input_tokens, output_tokens, batch_size)
    timeline = request_timeline(model, gpu, request)
    power_model = GpuPowerModel(gpu)
    peak_activity = timeline.peak_activity()
    baseline_peak = power_model.power(peak_activity, gpu.max_sm_clock_mhz)
    baseline_time = timeline.total_seconds(1.0)
    points: List[FrequencyTradeoffPoint] = []
    for clock in clocks_mhz:
        gpu.validate_clock(clock)
        ratio = clock / gpu.max_sm_clock_mhz
        locked_peak = power_model.power(peak_activity, clock)
        locked_time = timeline.total_seconds(ratio)
        points.append(FrequencyTradeoffPoint(
            model_name=model_name,
            sm_clock_mhz=clock,
            peak_power_reduction=(baseline_peak - locked_peak) / baseline_peak,
            performance_reduction=1.0 - baseline_time / locked_time,
        ))
    return points


def frequency_sensitivity(
    model_name: str = "BLOOM-176B",
    clocks_mhz: Sequence[float] = DEFAULT_CLOCKS_MHZ,
    variants: Sequence[Tuple[int, int]] = BLOOM_VARIANTS,
) -> List[List[FrequencyTradeoffPoint]]:
    """Figure 10b/10c: per-configuration BLOOM sensitivity curves.

    Returns one curve per ``(batch, input)`` variant.
    """
    return [
        frequency_tradeoff(
            model_name,
            clocks_mhz=clocks_mhz,
            input_tokens=input_tokens,
            batch_size=batch,
        )
        for batch, input_tokens in variants
    ]
