"""Cluster-scale power patterns (Table 4 and Figure 11).

Table 4 contrasts the production training and inference clusters: peak
utilization 97% vs 79%, coordinated second-scale swings vs diurnal
variation, and maximum power spikes of 37.5% vs 9% within 2 s (11.8%
within 40 s for inference). The training column comes from the correlated
training-cluster model; the inference column from a discrete-event run of
the default (non-oversubscribed, uncapped) row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.metrics import SimulationResult
from repro.core.baselines import NoCapPolicy
from repro.core.sweeps import EvaluationHarness
from repro.training.cluster import TrainingClusterModel
from repro.units import days


@dataclass(frozen=True)
class ClusterPowerPatterns:
    """One column of Table 4.

    Attributes:
        cluster: ``"training"`` or ``"inference"``.
        peak_utilization: Peak power over provisioned power.
        mean_utilization: Mean power over provisioned power.
        max_spike_2s: Largest rise within 2 s (provisioned fraction).
        max_spike_40s: Largest rise within 40 s (provisioned fraction).
    """

    cluster: str
    peak_utilization: float
    mean_utilization: float
    max_spike_2s: float
    max_spike_40s: float

    @property
    def headroom(self) -> float:
        """Oversubscription headroom (Insight 9's ~3% vs ~21%)."""
        return 1.0 - self.peak_utilization


def training_cluster_patterns(
    duration_s: float = 120.0, seed: int = 0
) -> ClusterPowerPatterns:
    """The Table 4 training column from the correlated-swing model."""
    stats = TrainingClusterModel(seed=seed).stats(duration_s=duration_s)
    return ClusterPowerPatterns(
        cluster="training",
        peak_utilization=stats.peak_utilization,
        mean_utilization=stats.mean_utilization,
        max_spike_2s=stats.max_swing_2s,
        max_spike_40s=stats.max_swing_40s,
    )


def inference_cluster_patterns(
    duration_s: float = days(1), seed: int = 0
) -> ClusterPowerPatterns:
    """The Table 4 inference column from an uncapped DES run."""
    harness = EvaluationHarness(duration_s=duration_s, seed=seed)
    result: SimulationResult = harness.run(NoCapPolicy())
    return ClusterPowerPatterns(
        cluster="inference",
        peak_utilization=result.peak_utilization,
        mean_utilization=result.mean_utilization,
        max_spike_2s=result.max_swing_fraction(2.0),
        max_spike_40s=result.max_swing_fraction(40.0),
    )
