"""Configuration sweeps over input, batch, and output sizes (Figure 8).

Figure 8 plots, per model, the peak and mean GPU power (normalized to TDP)
and the request latency while varying one knob at a time:

* input size 256-8192 (8a/8b): peak power rises sharply, mean power and
  latency stay nearly flat (latency bends up only past 4096);
* batch size 1-16 (8c/8d): peak power rises like a larger effective
  prompt; mean power rises gradually; latency rises slightly;
* output size 128-4096 (8e/8f): power is unchanged; latency is linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec import parallel_map
from repro.gpu.power import GpuPowerModel
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.models.inference import InferenceRequest, request_timeline
from repro.models.registry import LlmSpec, get_model

#: Default knob values, matching the Figure 8 axes.
INPUT_SIZES = (256, 512, 1024, 2048, 4096, 8192)
BATCH_SIZES = (1, 2, 4, 8, 16)
OUTPUT_SIZES = (128, 256, 512, 1024, 2048, 4096)

#: Base configuration each sweep perturbs one knob of.
BASE_INPUT = 2048
BASE_OUTPUT = 256
BASE_BATCH = 1


@dataclass(frozen=True)
class ConfigSweepPoint:
    """One bar of a Figure 8 subplot.

    Attributes:
        model_name: The model.
        knob: ``"input"``, ``"batch"``, or ``"output"``.
        value: The knob value.
        peak_power_ratio: Peak GPU power over TDP.
        mean_power_ratio: Duration-weighted mean GPU power over TDP.
        latency_seconds: End-to-end request latency.
    """

    model_name: str
    knob: str
    value: int
    peak_power_ratio: float
    mean_power_ratio: float
    latency_seconds: float


def _sweep_point(
    model: LlmSpec, gpu: GpuSpec, knob: str, request: InferenceRequest
) -> ConfigSweepPoint:
    power_model = GpuPowerModel(gpu)
    timeline = request_timeline(model, gpu, request)
    clock = gpu.max_sm_clock_mhz
    peak = max(
        power_model.power(segment.activity, clock)
        for segment in timeline.segments
    )
    mean = sum(
        power_model.power(segment.activity, clock) * segment.duration_seconds
        for segment in timeline.segments
    ) / timeline.total_seconds()
    value = {
        "input": request.input_tokens,
        "batch": request.batch_size,
        "output": request.output_tokens,
    }[knob]
    return ConfigSweepPoint(
        model_name=model.name,
        knob=knob,
        value=value,
        peak_power_ratio=peak / gpu.tdp_w,
        mean_power_ratio=mean / gpu.tdp_w,
        latency_seconds=timeline.total_seconds(),
    )


def _sweep_point_task(
    task: Tuple[LlmSpec, GpuSpec, str, InferenceRequest]
) -> ConfigSweepPoint:
    """Unpack one sweep task (module-level so it pickles into workers)."""
    return _sweep_point(*task)


def config_sweep(
    model_name: str,
    knob: str,
    values: Sequence[int] = (),
    gpu: GpuSpec = A100_80GB,
    workers: Optional[int] = 1,
) -> List[ConfigSweepPoint]:
    """Sweep one knob for one model (one group of Figure 8 bars).

    Args:
        model_name: Model to sweep.
        knob: ``"input"``, ``"batch"``, or ``"output"``.
        values: Knob values; defaults to the figure's axis values.
        gpu: GPU type (A100-80GB in the paper's inference machine).
        workers: Process fan-out for the points (1 = serial in-process;
            ``None`` = one per core). Point order is preserved.

    Raises:
        ConfigurationError: On an unknown knob.
    """
    model = get_model(model_name)
    if knob == "input":
        values = values or INPUT_SIZES
        requests = [
            InferenceRequest(model_name, v, BASE_OUTPUT, BASE_BATCH)
            for v in values
        ]
    elif knob == "batch":
        values = values or BATCH_SIZES
        requests = [
            InferenceRequest(model_name, BASE_INPUT, BASE_OUTPUT, v)
            for v in values
        ]
    elif knob == "output":
        values = values or OUTPUT_SIZES
        requests = [
            InferenceRequest(model_name, BASE_INPUT, v, BASE_BATCH)
            for v in values
        ]
    else:
        raise ConfigurationError(
            f"unknown knob {knob!r}; expected input/batch/output"
        )
    tasks = [(model, gpu, knob, request) for request in requests]
    return parallel_map(_sweep_point_task, tasks, workers=workers)
