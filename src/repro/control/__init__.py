"""Power control actuation: knobs, latency-aware dispatch, and history.

Section 3.2 describes the control landscape: fast in-band frequency
locking and power capping (milliseconds, but unavailable to the provider
under fixed-passthrough virtualization), slow OOB frequency/power capping
(up to 40 s), and the OOB power brake (5 s, drastic). This package turns
those into :class:`ControlAction` values dispatched through a
latency- and reliability-aware :class:`Actuator`.
"""

from repro.control.actions import ActionKind, ControlAction
from repro.control.actuator import Actuator, AppliedAction, InBandActuator, OobActuator

__all__ = [
    "ActionKind",
    "Actuator",
    "AppliedAction",
    "ControlAction",
    "InBandActuator",
    "OobActuator",
]
