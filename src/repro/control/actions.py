"""Control-action vocabulary for GPU power management.

The knobs the paper characterizes (Section 3.2): frequency locking sets
the SM clock to a fixed value; power capping sets a reactive watt limit;
the power brake drops all GPUs to a near-halt clock. Each action targets a
set of servers (POLCA assumes "a homogeneous distribution of power and
caps", Section 6.3, so per-server rather than per-GPU targeting suffices).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.errors import ConfigurationError


class ActionKind(enum.Enum):
    """The supported control operations."""

    FREQUENCY_LOCK = "frequency_lock"
    FREQUENCY_UNLOCK = "frequency_unlock"
    POWER_CAP = "power_cap"
    POWER_UNCAP = "power_uncap"
    POWER_BRAKE = "power_brake"
    BRAKE_RELEASE = "brake_release"


#: Actions that require a numeric value (MHz or watts).
_VALUED_ACTIONS = {ActionKind.FREQUENCY_LOCK, ActionKind.POWER_CAP}


@dataclass(frozen=True)
class ControlAction:
    """One power-management command.

    Attributes:
        kind: The operation.
        targets: Identifiers of the servers the action applies to.
        value: SM clock in MHz for frequency locks, watts for power caps;
            must be ``None`` for the unlock/uncap/brake operations.
        reason: Free-text explanation recorded in the actuation history
            (e.g. ``"T1 crossed"``), useful for the policy audit trail.
    """

    kind: ActionKind
    targets: FrozenSet[str]
    value: Optional[float] = None
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.targets:
            raise ConfigurationError(f"{self.kind.value}: empty target set")
        if self.kind in _VALUED_ACTIONS:
            if self.value is None or self.value <= 0:
                raise ConfigurationError(
                    f"{self.kind.value} requires a positive value, got {self.value}"
                )
        elif self.value is not None:
            raise ConfigurationError(
                f"{self.kind.value} does not take a value, got {self.value}"
            )

    @classmethod
    def frequency_lock(
        cls, targets: FrozenSet[str], sm_clock_mhz: float, reason: str = ""
    ) -> "ControlAction":
        """Lock the SM clock on the targeted servers."""
        return cls(ActionKind.FREQUENCY_LOCK, targets, sm_clock_mhz, reason)

    @classmethod
    def frequency_unlock(
        cls, targets: FrozenSet[str], reason: str = ""
    ) -> "ControlAction":
        """Release frequency locks on the targeted servers."""
        return cls(ActionKind.FREQUENCY_UNLOCK, targets, None, reason)

    @classmethod
    def power_cap(
        cls, targets: FrozenSet[str], cap_w: float, reason: str = ""
    ) -> "ControlAction":
        """Power-cap each GPU on the targeted servers."""
        return cls(ActionKind.POWER_CAP, targets, cap_w, reason)

    @classmethod
    def power_brake(cls, targets: FrozenSet[str], reason: str = "") -> "ControlAction":
        """Engage the power brake on the targeted servers."""
        return cls(ActionKind.POWER_BRAKE, targets, None, reason)

    @classmethod
    def brake_release(
        cls, targets: FrozenSet[str], reason: str = ""
    ) -> "ControlAction":
        """Release the power brake on the targeted servers."""
        return cls(ActionKind.BRAKE_RELEASE, targets, None, reason)
