"""Emergency load-shedding policy for power-delivery incidents.

When a protection device (rack PDU, row breaker — see
:mod:`repro.powerfail`) accumulates trip risk or actually trips, the
cluster must shed load *now*: capacity is about to disappear (or already
has), and the survivors are one redistribution away from tripping their
own breakers. "Prediction-Based Power Oversubscription in Cloud
Platforms" treats these protective actions as first-class; POLCA's
Section 7 argues the same priority machinery used for routine capping
should drive them.

:class:`EmergencyConfig` describes the response, in priority- and
tier-aware terms:

* arrivals in ``shed_priorities`` are shed while the emergency is
  active — *deferred* (re-queued ``defer_s`` later, up to
  ``max_defers`` times) when their workload is latency-tolerant
  (``deferrable_workloads``, e.g. batch summarization), *dropped*
  otherwise;
* survivors are clamped to safe-mode frequency caps
  (``safe_low_clock_mhz`` / ``safe_high_clock_mhz`` — the same
  conservative points POLCA's fallback uses), min-combined with
  whatever the policy already commanded.

The config is a frozen value object: the simulator owns all state
(engage/release transitions, per-request defer counts), so replaying a
trace reproduces every shed decision bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.policy_base import GroupCaps
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EmergencyConfig:
    """How the cluster sheds load while a power emergency is active.

    Attributes:
        enabled: Master switch; ``False`` leaves arrivals and caps
            untouched even while devices are tripped or at risk.
        shed_priorities: Priority values (e.g. ``"low"``) whose
            arrivals are shed during an emergency.
        deferrable_workloads: Workload names whose shed arrivals are
            deferred instead of dropped (latency-tolerant tiers).
        defer_s: How long a deferred arrival waits before re-entering
            admission.
        max_defers: Defer budget per request; once exhausted the
            request is dropped with reason ``"shed"``.
        safe_low_clock_mhz: Safe-mode cap for the low-priority group
            while shedding (Figure 13's deepest cap point).
        safe_high_clock_mhz: Safe-mode cap for the high-priority group
            while shedding.
    """

    enabled: bool = True
    shed_priorities: Tuple[str, ...] = ("low",)
    deferrable_workloads: Tuple[str, ...] = ("Summarize",)
    defer_s: float = 20.0
    max_defers: int = 3
    safe_low_clock_mhz: float = 1110.0
    safe_high_clock_mhz: float = 1305.0

    def __post_init__(self) -> None:
        if self.defer_s <= 0:
            raise ConfigurationError("defer_s must be positive")
        if self.max_defers < 0:
            raise ConfigurationError("max_defers cannot be negative")
        if self.safe_low_clock_mhz <= 0 or self.safe_high_clock_mhz <= 0:
            raise ConfigurationError("safe-mode clocks must be positive")

    # ------------------------------------------------------------------
    def shed_action(
        self, priority_value: str, workload_name: str, prior_defers: int
    ) -> Optional[str]:
        """The shed decision for one arrival during an active emergency.

        Returns ``None`` (admit), ``"defer"``, or ``"drop"``.
        """
        if not self.enabled or priority_value not in self.shed_priorities:
            return None
        if workload_name in self.deferrable_workloads \
                and prior_defers < self.max_defers:
            return "defer"
        return "drop"

    def clamp(self, caps: GroupCaps) -> GroupCaps:
        """Min-combine ``caps`` with the safe-mode caps.

        ``None`` means uncapped, so any safe-mode clock is stricter;
        otherwise the lower (slower) clock wins.
        """
        low = self.safe_low_clock_mhz if caps.low_clock_mhz is None \
            else min(caps.low_clock_mhz, self.safe_low_clock_mhz)
        high = self.safe_high_clock_mhz if caps.high_clock_mhz is None \
            else min(caps.high_clock_mhz, self.safe_high_clock_mhz)
        return GroupCaps(low_clock_mhz=low, high_clock_mhz=high)
