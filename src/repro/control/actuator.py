"""Latency- and reliability-aware actuation of control actions.

The defining constraint of cloud GPU power management (Section 3.3) is that
the provider must act *out of band*: frequency/power capping takes up to
40 s to land (Table 2) while the UPS requires capping within 10 s
(Section 6.2). Only the power brake beats the deadline (5 s), at a severe
performance cost. The :class:`Actuator` models a command pipeline with
per-kind latency and optional silent failures; POLCA's whole design —
conservative thresholds chosen from the worst 40 s power spike — exists to
live within these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.control.actions import ActionKind, ControlAction
from repro.errors import ConfigurationError
from repro.gpu.brake import DEFAULT_BRAKE_LATENCY_S
from repro.telemetry.smbpbi import SMBPBI_ACTUATION_LATENCY_S

#: UPS-imposed deadline for a capping response (Section 3.3 / 6.2).
UPS_CAPPING_DEADLINE_S = 10.0

#: In-band configuration changes land "within a few milliseconds"
#: (Section 3.2); we use 10 ms.
IN_BAND_LATENCY_S = 0.01


@dataclass(frozen=True)
class AppliedAction:
    """An action that has landed (or silently failed).

    Attributes:
        action: The original command.
        issued_at: When the controller dispatched it.
        effective_at: When it took (or would have taken) effect.
        failed_silently: True if the interface dropped it without error.
    """

    action: ControlAction
    issued_at: float
    effective_at: float
    failed_silently: bool = False


@dataclass
class Actuator:
    """A command pipeline with per-action-kind latency.

    Attributes:
        latencies: Seconds from issue to effect, per action kind.
        silent_failure_rate: Probability any single command is dropped
            without an error (Section 3.3's unreliable OOB interfaces).
        seed: RNG seed for the failure process.
    """

    latencies: Dict[ActionKind, float]
    silent_failure_rate: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _in_flight: List[AppliedAction] = field(init=False, default_factory=list)
    history: List[AppliedAction] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.silent_failure_rate < 1.0:
            raise ConfigurationError("silent_failure_rate must be in [0, 1)")
        for kind, latency in self.latencies.items():
            if latency < 0:
                raise ConfigurationError(f"{kind.value}: negative latency")
        self._rng = np.random.default_rng(self.seed)

    def latency_for(self, kind: ActionKind) -> float:
        """Actuation latency for an action kind.

        Raises:
            ConfigurationError: If the kind has no configured latency.
        """
        try:
            return self.latencies[kind]
        except KeyError:
            raise ConfigurationError(
                f"no latency configured for {kind.value}"
            ) from None

    def issue(self, now: float, action: ControlAction) -> AppliedAction:
        """Dispatch an action; it becomes effective after its latency.

        The returned record notes a silent failure, but — true to the
        paper — the *simulated controller* must not peek at that flag;
        it exists for the experiment harness to count.
        """
        latency = self.latency_for(action.kind)
        failed = bool(self._rng.random() < self.silent_failure_rate)
        record = AppliedAction(
            action=action,
            issued_at=now,
            effective_at=now + latency,
            failed_silently=failed,
        )
        self.history.append(record)
        if not failed:
            self._in_flight.append(record)
        return record

    def effective(self, now: float) -> List[AppliedAction]:
        """Pop the actions that have landed by ``now``, in landing order."""
        landed = sorted(
            (a for a in self._in_flight if a.effective_at <= now),
            key=lambda a: a.effective_at,
        )
        self._in_flight = [a for a in self._in_flight if a.effective_at > now]
        return landed

    def next_effective_time(self) -> Optional[float]:
        """Earliest pending landing time, or ``None`` if idle."""
        if not self._in_flight:
            return None
        return min(a.effective_at for a in self._in_flight)

    @property
    def in_flight_count(self) -> int:
        """Commands issued but not yet landed."""
        return len(self._in_flight)

    def meets_ups_deadline(self, kind: ActionKind) -> bool:
        """Whether this action kind can land within the UPS deadline."""
        return self.latency_for(kind) <= UPS_CAPPING_DEADLINE_S


def OobActuator(
    silent_failure_rate: float = 0.0, seed: int = 0
) -> Actuator:
    """The out-of-band actuator available to a cloud provider.

    Frequency/power capping at the 40 s SMBPBI latency (Table 2); only the
    power brake (5 s) meets the 10 s UPS deadline.
    """
    return Actuator(
        latencies={
            ActionKind.FREQUENCY_LOCK: SMBPBI_ACTUATION_LATENCY_S,
            ActionKind.FREQUENCY_UNLOCK: SMBPBI_ACTUATION_LATENCY_S,
            ActionKind.POWER_CAP: SMBPBI_ACTUATION_LATENCY_S,
            ActionKind.POWER_UNCAP: SMBPBI_ACTUATION_LATENCY_S,
            ActionKind.POWER_BRAKE: DEFAULT_BRAKE_LATENCY_S,
            ActionKind.BRAKE_RELEASE: DEFAULT_BRAKE_LATENCY_S,
        },
        silent_failure_rate=silent_failure_rate,
        seed=seed,
    )


def InBandActuator(seed: int = 0) -> Actuator:
    """The in-band actuator available inside a VM (Section 3.2).

    All knobs land within milliseconds and reliably — but a cloud provider
    cannot use this path under fixed-passthrough virtualization.
    """
    return Actuator(
        latencies={kind: IN_BAND_LATENCY_S for kind in ActionKind},
        silent_failure_rate=0.0,
        seed=seed,
    )
