"""Provisioned power budgets per server component (Figure 3).

Figure 3 of the paper breaks the provisioned power of an 8xA100-80GB DGX
server into components: roughly half goes to the GPUs and about a quarter
to the fans, with CPUs and the remaining platform making up the rest
(Section 5 quotes the 6500 W DGX-A100 rating, "around 50% of the power is
provisioned for GPUs", and "server fans constitute nearly 25% of the
server power").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComponentBudget:
    """Provisioned power per server component, in watts.

    Attributes:
        name: Server model name.
        components: Mapping of component name to provisioned watts. By
            convention uses the keys ``"gpus"``, ``"fans"``, ``"cpus"``
            and ``"other"`` (memory, storage, NICs, conversion losses).
    """

    name: str
    components: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("budget needs at least one component")
        for component, watts in self.components.items():
            if watts <= 0:
                raise ConfigurationError(
                    f"{self.name}: component {component!r} has non-positive "
                    f"budget {watts}"
                )

    @property
    def total_w(self) -> float:
        """Rated (provisioned) server power."""
        return float(sum(self.components.values()))

    def fraction(self, component: str) -> float:
        """Share of the provisioned budget for one component.

        Raises:
            ConfigurationError: If the component is unknown.
        """
        if component not in self.components:
            known = ", ".join(sorted(self.components))
            raise ConfigurationError(
                f"unknown component {component!r}; known: {known}"
            )
        return self.components[component] / self.total_w

    def fractions(self) -> Dict[str, float]:
        """Every component's share of the provisioned budget."""
        total = self.total_w
        return {name: watts / total for name, watts in self.components.items()}


#: DGX-A100 provisioned budget: 6500 W rated (Section 5), with the GPU and
#: fan shares from Figure 3 (~49% GPUs, ~25% fans).
DGX_A100_BUDGET = ComponentBudget(
    name="DGX-A100",
    components={
        "gpus": 3200.0,   # 8 x 400 W TDP
        "fans": 1625.0,   # ~25% of provisioned power
        "cpus": 560.0,    # dual-socket AMD Rome
        "other": 1115.0,  # memory, NVMe, NICs, NVSwitch, conversion losses
    },
)

#: DGX-H100 budget (Section 6.7: 10.2 kW TDP, 8U), same proportional split.
DGX_H100_BUDGET = ComponentBudget(
    name="DGX-H100",
    components={
        "gpus": 5600.0,   # 8 x 700 W TDP
        "fans": 2550.0,
        "cpus": 700.0,
        "other": 1350.0,
    },
)
