"""Fleet-level peak-power sampling for Figure 11.

Figure 11 plots, for servers in a production cluster, the peak server power
against the peak GPU power (both normalized to the respective TDP). Its
observations (Section 4.3):

1. GPU power is ~60% of server power on average;
2. peak GPU power exceeds the total server GPU TDP (by up to ~500 W);
3. peak server power is highly correlated with peak GPU power;
4. peak GPU power has a smaller normalized range than peak server power;
5. peaks are stable over time because servers are heavily utilized.

We reproduce the scatter by sampling a fleet of heavily utilized servers
whose per-server prompt intensity varies with the workload mix it happens
to serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.server.dgx import DgxServer


@dataclass(frozen=True)
class FleetSample:
    """Peak powers of one server in the fleet.

    Attributes:
        peak_gpu_power_w: Peak total GPU power observed on the server.
        peak_server_power_w: Peak server power observed.
        mean_gpu_share: Average fraction of server power drawn by GPUs.
    """

    peak_gpu_power_w: float
    peak_server_power_w: float
    mean_gpu_share: float

    def normalized(self, server: DgxServer) -> "FleetSample":
        """Normalize both peaks by their TDP (the Figure 11 axes)."""
        return FleetSample(
            peak_gpu_power_w=self.peak_gpu_power_w / server.gpu_tdp_total_w,
            peak_server_power_w=self.peak_server_power_w / server.rated_power_w,
            mean_gpu_share=self.mean_gpu_share,
        )


def sample_fleet_peaks(
    n_servers: int = 100,
    seed: int = 0,
    mean_prompt_activity: float = 0.92,
    activity_spread: float = 0.04,
    thermal_gain: float = 1.6,
    host_noise_w: float = 60.0,
) -> List[FleetSample]:
    """Sample per-server peak powers for a heavily utilized fleet.

    Each server's peak activity is drawn around ``mean_prompt_activity``
    (heavily utilized: most servers regularly see near-maximal prompt
    spikes). At peak, the host side *amplifies* GPU differences — hotter
    GPUs push fans and power conversion harder (``thermal_gain``), plus
    per-server noise (cooling position, PSU efficiency). That joint
    structure is exactly Figure 11's: server peak highly correlated with
    GPU peak (observation 3) while spanning a wider normalized range
    (observation 4).

    Raises:
        ConfigurationError: If ``n_servers`` is not positive.
    """
    if n_servers <= 0:
        raise ConfigurationError("n_servers must be positive")
    rng = np.random.default_rng(seed)
    server = DgxServer()
    mean_peak_gpu = server.gpu_power(
        0.0, [mean_prompt_activity] * server.n_gpus
    )
    samples: List[FleetSample] = []
    for _ in range(n_servers):
        peak_activity = float(np.clip(
            rng.normal(mean_prompt_activity, activity_spread), 0.6, 1.0
        ))
        mean_activity = float(np.clip(rng.normal(0.55, 0.05), 0.3, 0.75))
        peak_gpu = server.gpu_power(0.0, [peak_activity] * server.n_gpus)
        host_offset = (
            thermal_gain * (peak_gpu - mean_peak_gpu)
            + float(rng.normal(0.0, host_noise_w))
        )
        peak_server = host_offset + server.server_power(
            0.0, [peak_activity] * server.n_gpus
        )
        mean_gpu = server.gpu_power(0.0, [mean_activity] * server.n_gpus)
        mean_server = 0.5 * host_offset + server.server_power(
            0.0, [mean_activity] * server.n_gpus
        )
        samples.append(FleetSample(
            peak_gpu_power_w=peak_gpu,
            peak_server_power_w=peak_server,
            mean_gpu_share=mean_gpu / mean_server,
        ))
    return samples
