"""Simulated GPU server (DGX-class): component budgets and aggregate power.

Reproduces the server-level facts the paper reports: the provisioned-power
breakdown of an 8xA100-80GB server (Figure 3, ~50% GPUs and ~25% fans), the
observation that drawn GPU power is ~60% of server power and that peak
server power tracks peak GPU power (Figure 11, Insight 8), and the derating
headroom (rated 6.5 kW vs <=5.7 kW observed peak, Section 5).
"""

from repro.server.components import ComponentBudget, DGX_A100_BUDGET, DGX_H100_BUDGET
from repro.server.dgx import DgxServer, HostPowerModel
from repro.server.fleet import FleetSample, sample_fleet_peaks

__all__ = [
    "ComponentBudget",
    "DGX_A100_BUDGET",
    "DGX_H100_BUDGET",
    "DgxServer",
    "FleetSample",
    "HostPowerModel",
    "sample_fleet_peaks",
]
