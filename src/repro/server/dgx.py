"""A simulated DGX-class GPU server.

Aggregates eight :class:`~repro.gpu.device.SimulatedGpu` instances with a
host-side power model (CPUs, fans, platform). Calibrated so that:

* the observed peak server power stays below 5.7 kW against the 6.5 kW
  rating (the >=800 W derating headroom of Section 5);
* GPUs account for ~60% of *drawn* server power under load (Figure 11,
  Insight 8) even though they are ~50% of the *provisioned* budget;
* fan power tracks thermal load, i.e. follows GPU power with a lag, so the
  variable portion of server power is dominated by the GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.gpu.device import SimulatedGpu
from repro.gpu.specs import A100_80GB, GpuSpec
from repro.server.components import ComponentBudget, DGX_A100_BUDGET


@dataclass(frozen=True)
class HostPowerModel:
    """Power of the non-GPU server components as a function of GPU load.

    The host side is deliberately *weakly* load-following: fans have large
    thermal inertia and are provisioned for the worst case, and LLM serving
    keeps host CPUs lightly loaded. This is Insight 8 — "GPUs represent
    the majority of the variable portion of the power draw" — encoded as a
    model property.

    Attributes:
        cpu_idle_w / cpu_busy_w: CPU power range.
        fan_idle_w / fan_max_w: Fan power range; narrow, because fan speed
            tracks slowly varying temperature, not instantaneous load.
        other_w: Constant platform power (memory, NVSwitch, NICs, losses).
    """

    cpu_idle_w: float = 150.0
    cpu_busy_w: float = 250.0
    fan_idle_w: float = 700.0
    fan_max_w: float = 800.0
    other_w: float = 400.0

    def power(self, gpu_load_fraction: float) -> float:
        """Host power in watts given the GPUs' dynamic load fraction.

        Args:
            gpu_load_fraction: GPU dynamic power over its maximum dynamic
                power, in ``[0, 1]``; drives CPU (request handling) and
                fan (thermal) power.
        """
        if not 0.0 <= gpu_load_fraction <= 1.0:
            raise ConfigurationError(
                f"gpu_load_fraction {gpu_load_fraction} outside [0, 1]"
            )
        cpu = self.cpu_idle_w + (self.cpu_busy_w - self.cpu_idle_w) * gpu_load_fraction
        fans = self.fan_idle_w + (self.fan_max_w - self.fan_idle_w) * gpu_load_fraction
        return cpu + fans + self.other_w

    @property
    def peak_w(self) -> float:
        """Maximum host power."""
        return self.cpu_busy_w + self.fan_max_w + self.other_w


@dataclass
class DgxServer:
    """An 8-GPU server with aggregate power accounting.

    Attributes:
        gpu_spec: GPU model installed (8x).
        budget: Provisioned component budget (Figure 3).
        host: Host power model.
        n_gpus: Number of GPUs (8 for DGX).
    """

    gpu_spec: GpuSpec = A100_80GB
    budget: ComponentBudget = DGX_A100_BUDGET
    host: HostPowerModel = field(default_factory=HostPowerModel)
    n_gpus: int = 8
    gpus: List[SimulatedGpu] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_gpus <= 0:
            raise ConfigurationError("a server needs at least one GPU")
        self.gpus = [SimulatedGpu(self.gpu_spec) for _ in range(self.n_gpus)]

    @property
    def rated_power_w(self) -> float:
        """Provisioned (rated) server power — 6500 W for DGX-A100."""
        return self.budget.total_w

    @property
    def gpu_tdp_total_w(self) -> float:
        """Sum of GPU TDPs (the 'overall server GPU TDP' of Figure 11)."""
        return self.n_gpus * self.gpu_spec.tdp_w

    def gpu_power(self, now: float, activities: Sequence[float]) -> float:
        """Total GPU power for per-GPU activities at time ``now``.

        Raises:
            ConfigurationError: If the activity count mismatches the GPUs.
        """
        if len(activities) != self.n_gpus:
            raise ConfigurationError(
                f"expected {self.n_gpus} activities, got {len(activities)}"
            )
        return sum(
            gpu.power(now, activity)
            for gpu, activity in zip(self.gpus, activities)
        )

    def server_power(self, now: float, activities: Sequence[float]) -> float:
        """Total server power: GPUs plus load-following host components."""
        gpu_power = self.gpu_power(now, activities)
        idle_total = self.n_gpus * self.gpu_spec.idle_w
        dynamic_max = self.n_gpus * (
            self.gpu_spec.transient_peak_w - self.gpu_spec.idle_w
        )
        load_fraction = (gpu_power - idle_total) / dynamic_max
        load_fraction = min(1.0, max(0.0, load_fraction))
        return gpu_power + self.host.power(load_fraction)

    def server_power_uniform(self, now: float, activity: float) -> float:
        """Server power when all GPUs run the same activity (tensor
        parallelism drives all GPUs of one model identically)."""
        return self.server_power(now, [activity] * self.n_gpus)

    @property
    def peak_power_w(self) -> float:
        """Worst-case instantaneous server power (all GPUs at transient
        peak plus maximum host power). Stays below the 6.5 kW rating,
        giving the derating headroom of Section 5."""
        return (
            self.n_gpus * self.gpu_spec.transient_peak_w + self.host.peak_w
        )

    def derating_headroom_w(self) -> float:
        """Watts by which the rating exceeds the achievable peak."""
        return self.rated_power_w - self.peak_power_w

    def lock_all_frequencies(self, sm_clock_mhz: float) -> None:
        """Frequency-lock every GPU (homogeneous caps; Section 6.3)."""
        for gpu in self.gpus:
            gpu.lock_frequency(sm_clock_mhz)

    def unlock_all_frequencies(self) -> None:
        """Release frequency locks on every GPU."""
        for gpu in self.gpus:
            gpu.unlock_frequency()

    def set_all_power_caps(self, cap_w: float) -> None:
        """Power-cap every GPU to ``cap_w`` watts."""
        for gpu in self.gpus:
            gpu.set_power_cap(cap_w)

    def clear_all_power_caps(self) -> None:
        """Remove GPU power caps (back to TDP)."""
        for gpu in self.gpus:
            gpu.clear_power_cap()

    def engage_brake(self, now: float) -> None:
        """Engage the power brake on every GPU."""
        for gpu in self.gpus:
            gpu.brake.engage(now)

    def release_brake(self) -> None:
        """Release the power brake on every GPU."""
        for gpu in self.gpus:
            gpu.brake.release()
