"""Unit conventions and light-weight conversion helpers.

The library uses plain ``float``s with a single canonical unit per quantity
(documented here once, relied on everywhere) rather than a heavyweight unit
system:

========== ======================= =========================================
Quantity   Canonical unit          Notes
========== ======================= =========================================
power      watt (W)                GPU, server, rack, row and cluster level
energy     joule (J)
time       second (s)              simulation time is seconds from t=0
frequency  megahertz (MHz)         GPU SM / memory clock domains
bandwidth  bytes per second (B/s)
compute    FLOP/s
memory     byte (B)
tokens     count
========== ======================= =========================================

The helpers below exist so that call sites can spell human-scale quantities
(``gigabytes(80)``, ``minutes(5)``) without embedding magic multipliers.
"""

from __future__ import annotations

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def kilowatts(value: float) -> float:
    """Convert kilowatts to watts."""
    return value * KILO


def watts_to_kilowatts(value: float) -> float:
    """Convert watts to kilowatts."""
    return value / KILO


def gigahertz(value: float) -> float:
    """Convert gigahertz to megahertz (the canonical frequency unit)."""
    return value * 1e3


def megahertz_to_ghz(value: float) -> float:
    """Convert megahertz to gigahertz for display."""
    return value / 1e3


def gigabytes(value: float) -> float:
    """Convert gigabytes to bytes."""
    return value * GIGA


def gigabytes_per_second(value: float) -> float:
    """Convert GB/s to B/s."""
    return value * GIGA


def teraflops(value: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return value * TERA


def billions(value: float) -> float:
    """Convert a count expressed in billions (e.g. parameters) to units."""
    return value * 1e9


def millions(value: float) -> float:
    """Convert a count expressed in millions (e.g. parameters) to units."""
    return value * 1e6


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def weeks(value: float) -> float:
    """Convert weeks to seconds."""
    return value * SECONDS_PER_WEEK


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / KILO
