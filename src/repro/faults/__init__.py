"""Fault injection, reliable commands, and graceful degradation.

The paper's Section 3.3 establishes that cloud power control runs over
slow, *unreliable* interfaces; Section 6.6 probes robustness only under a
+5% power-model error. This package closes the gap: a declarative,
seeded :class:`FaultPlan` injects telemetry dropout/freeze/noise, silent
or delayed actuations, and server churn into the cluster simulator; a
:class:`ReliabilityConfig` hardens the control path (verify-after
deadlines, capped-backoff re-issue, stale-telemetry safe-cap fallback);
and a :class:`RobustnessReport` ledgers injected vs. detected vs.
recovered faults plus the row's exact over-budget exposure.
"""

from repro.faults.injector import (
    FaultInjector,
    TelemetryFate,
    summarize_schedule,
)
from repro.faults.plan import (
    ActuationFaultSpec,
    ChurnSpec,
    FaultPlan,
    ServerChurnEvent,
    TelemetryFaultSpec,
)
from repro.faults.reliability import ReliabilityConfig
from repro.faults.report import OverBudgetTracker, RobustnessReport

__all__ = [
    "ActuationFaultSpec",
    "ChurnSpec",
    "FaultInjector",
    "FaultPlan",
    "OverBudgetTracker",
    "ReliabilityConfig",
    "RobustnessReport",
    "ServerChurnEvent",
    "TelemetryFate",
    "TelemetryFaultSpec",
    "summarize_schedule",
]
