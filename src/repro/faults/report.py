"""Robustness accounting for fault-injected simulation runs.

Extends Section 6.6's single robustness scenario (+5% power-model error)
to the full fault surface: the report tallies every injected fault, what
the controller detected, what the reliable-command layer recovered, and —
the number that actually matters to the breaker — how long the row's
*true* power spent above the provisioned budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.metrics import SimulationResult


@dataclass
class RobustnessReport:
    """Fault ledger and breaker-exposure summary of one simulation run.

    Attributes:
        duration_s: Simulated horizon.
        telemetry_dropout_windows: Distinct dropout windows scheduled.
        telemetry_dropped_ticks: Samples that never reached the controller.
        telemetry_frozen_ticks: Samples replaced by the last good reading.
        telemetry_spikes: Spurious sensor spikes injected.
        silent_actuation_failures: Commands dropped without any signal.
        delayed_actuations: Commands that landed beyond their spec latency.
        server_failures: Server crash events.
        server_recoveries: Servers that rejoined after a crash.
        requests_lost_to_churn: In-flight/buffered requests dropped by
            crashes.
        commands_issued: Commands dispatched (including re-issues).
        commands_verified: Commands whose effect was confirmed through
            telemetry by their verify deadline.
        failures_detected: Verify deadlines that found the commanded state
            missing (silent failure or beyond-spec delay caught).
        reissues: Re-issued commands (capped exponential backoff).
        commands_recovered: Initially-failed commands whose effect was
            eventually confirmed after re-issue.
        commands_unrecovered: Commands abandoned after ``max_retries``.
        fallback_entries: Times the controller entered the stale-telemetry
            safe-cap state.
        fallback_brakes: Brake engagements forced by persistent staleness.
        max_missed_ticks: Longest run of consecutive missed samples.
        time_at_risk_s: Total time the true row power exceeded the
            provisioned budget.
        longest_overbudget_s: Longest contiguous over-budget excursion —
            must stay under the 40 s OOB window for the breaker to hold.
    """

    duration_s: float = 0.0
    # --- injected ----------------------------------------------------
    telemetry_dropout_windows: int = 0
    telemetry_dropped_ticks: int = 0
    telemetry_frozen_ticks: int = 0
    telemetry_spikes: int = 0
    silent_actuation_failures: int = 0
    delayed_actuations: int = 0
    server_failures: int = 0
    server_recoveries: int = 0
    requests_lost_to_churn: int = 0
    # --- detected / response ----------------------------------------
    commands_issued: int = 0
    commands_verified: int = 0
    failures_detected: int = 0
    reissues: int = 0
    commands_recovered: int = 0
    commands_unrecovered: int = 0
    fallback_entries: int = 0
    fallback_brakes: int = 0
    max_missed_ticks: int = 0
    # --- breaker exposure --------------------------------------------
    time_at_risk_s: float = 0.0
    longest_overbudget_s: float = 0.0

    @property
    def faults_injected(self) -> int:
        """Total injected fault occurrences across every channel."""
        return (
            self.telemetry_dropped_ticks
            + self.telemetry_frozen_ticks
            + self.telemetry_spikes
            + self.silent_actuation_failures
            + self.delayed_actuations
            + self.server_failures
        )

    @property
    def actuation_failures_recovered(self) -> bool:
        """True when every silently failed command was eventually landed."""
        return self.commands_unrecovered == 0

    @property
    def all_faults_accounted(self) -> bool:
        """Every injected fault was either detected or tolerated.

        Telemetry faults are tolerated by construction (missed samples
        feed the staleness counter, noise/spikes pass through the
        policy's hysteresis); actuation faults must be detected by the
        verify layer and recovered; churn is detected by the router. The
        report therefore reduces the claim to: no abandoned commands.
        """
        return self.actuation_failures_recovered

    def time_at_risk_fraction(self) -> float:
        """Share of the run the true row power spent over budget.

        Raises:
            ConfigurationError: If the report covers no simulated time.
        """
        if self.duration_s <= 0:
            raise ConfigurationError("report covers no simulated time")
        return self.time_at_risk_s / self.duration_s

    def slo_impact(
        self, result: "SimulationResult", baseline: "SimulationResult"
    ) -> Dict[str, Dict[str, float]]:
        """Per-tier p50/p99 latency ratios against a fault-free baseline.

        The "SLO impact" leg of the robustness story: what the re-issue
        and fallback machinery cost the workloads.
        """
        return {
            priority.value: result.normalized_latencies(priority, baseline)
            for priority in result.per_priority
        }

    def summary_lines(self) -> list:
        """Human-readable ledger for example scripts and benchmarks."""
        return [
            f"injected: {self.telemetry_dropped_ticks} dropped + "
            f"{self.telemetry_frozen_ticks} frozen ticks "
            f"({self.telemetry_dropout_windows} dropout windows), "
            f"{self.telemetry_spikes} spikes, "
            f"{self.silent_actuation_failures} silent actuation failures, "
            f"{self.delayed_actuations} late actuations, "
            f"{self.server_failures} server crashes",
            f"response: {self.commands_issued} commands issued, "
            f"{self.commands_verified} verified, "
            f"{self.failures_detected} failures detected, "
            f"{self.reissues} re-issues, "
            f"{self.commands_recovered} recovered, "
            f"{self.commands_unrecovered} abandoned",
            f"degradation: {self.fallback_entries} fallback entries, "
            f"{self.fallback_brakes} staleness brakes, "
            f"max {self.max_missed_ticks} consecutive missed ticks, "
            f"{self.requests_lost_to_churn} requests lost to churn",
            f"breaker exposure: {self.time_at_risk_s:.1f} s over budget "
            f"(longest excursion {self.longest_overbudget_s:.1f} s)",
        ]


@dataclass
class OverBudgetTracker:
    """Exact over-budget exposure from piecewise-constant row power.

    The simulator calls :meth:`account` for every inter-event interval
    (power is constant between events), so both totals are exact — no
    sampling error, unlike the 2 s telemetry view.

    Attributes:
        budget_w: The provisioned row budget.
    """

    budget_w: float
    time_at_risk_s: float = 0.0
    longest_overbudget_s: float = 0.0
    _current_run_s: float = field(default=0.0, repr=False)

    def account(self, power_w: float, dt: float) -> None:
        """Accumulate one interval of constant ``power_w`` lasting ``dt``."""
        if dt <= 0:
            return
        if power_w > self.budget_w:
            self.time_at_risk_s += dt
            self._current_run_s += dt
            if self._current_run_s > self.longest_overbudget_s:
                self.longest_overbudget_s = self._current_run_s
        else:
            self._current_run_s = 0.0
