"""The reliable-command layer and graceful-degradation knobs.

POLCA's answer to Section 3.3's silent OOB failures is procedural, not
architectural: every command carries a verify-after deadline (re-read the
commanded state through telemetry once the spec latency has elapsed), and
unacknowledged commands are re-issued with capped exponential backoff.
Likewise, a controller whose sensor goes dark cannot keep flying the last
reading: after ``fallback_after_ticks`` consecutive missed samples it
drops into a conservative safe-cap state, and if the outage outlasts the
UPS deadline it engages the power brake — the only actuator fast enough
to protect the breaker blind (Section 6.2).

:class:`ReliabilityConfig` packages those knobs; the defaults are a no-op
on a fault-free run (verification always succeeds, staleness never
accumulates), which keeps the hardened simulator bit-identical to the
original POLCA reproduction under an all-zeros fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.actuator import UPS_CAPPING_DEADLINE_S
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the reliable-command layer and stale-telemetry fallback.

    Attributes:
        verify_margin_s: Extra wait after a command's spec latency before
            its effect is verified through telemetry (one telemetry tick
            by default, so the post-landing reading exists).
        retry_base_s: Backoff before the first re-issue of an
            unacknowledged command.
        retry_cap_s: Upper bound on the exponential backoff.
        max_retries: Re-issues attempted before a command is abandoned
            (recorded as unrecovered in the robustness report).
        fallback_after_ticks: Consecutive missed telemetry ticks before
            the controller enters the conservative safe-cap state.
        brake_after_stale_s: Continuous staleness (beyond fallback entry)
            after which the brake is engaged; defaults to the 10 s UPS
            deadline of Section 6.2.
        safe_low_clock_mhz: Low-priority cap commanded in the fallback
            state (POLCA's deepest LP cap).
        safe_high_clock_mhz: High-priority cap commanded in the fallback
            state (POLCA's near-free HP cap).
        detect_frozen: Treat runs of identical readings as staleness.
            Off by default — an idle row legitimately reports a constant
            power, so freeze detection is only sound when the deployment
            expects frozen-sensor faults.
        frozen_after_ticks: Identical consecutive readings counted as
            frozen when ``detect_frozen`` is on.
    """

    verify_margin_s: float = 2.0
    retry_base_s: float = 2.0
    retry_cap_s: float = 32.0
    max_retries: int = 8
    fallback_after_ticks: int = 5
    brake_after_stale_s: float = UPS_CAPPING_DEADLINE_S
    safe_low_clock_mhz: float = 1110.0
    safe_high_clock_mhz: float = 1305.0
    detect_frozen: bool = False
    frozen_after_ticks: int = 10

    def __post_init__(self) -> None:
        if self.verify_margin_s < 0:
            raise ConfigurationError("verify_margin_s cannot be negative")
        if self.retry_base_s <= 0:
            raise ConfigurationError("retry_base_s must be positive")
        if self.retry_cap_s < self.retry_base_s:
            raise ConfigurationError("retry_cap_s must be >= retry_base_s")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.fallback_after_ticks < 1:
            raise ConfigurationError("fallback_after_ticks must be >= 1")
        if self.brake_after_stale_s < 0:
            raise ConfigurationError("brake_after_stale_s cannot be negative")
        if self.safe_low_clock_mhz <= 0 or self.safe_high_clock_mhz <= 0:
            raise ConfigurationError("safe fallback clocks must be positive")
        if self.frozen_after_ticks < 2:
            raise ConfigurationError("frozen_after_ticks must be >= 2")

    def backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff before re-issue ``attempt`` (1-based).

        Raises:
            ConfigurationError: If ``attempt`` is not positive.
        """
        if attempt < 1:
            raise ConfigurationError("backoff attempt must be >= 1")
        return min(self.retry_cap_s, self.retry_base_s * 2.0 ** (attempt - 1))
