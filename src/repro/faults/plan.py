"""Declarative fault plans for the cluster simulator.

The paper's central constraint (Section 3.3, Tables 1-2) is that cloud GPU
power control runs over interfaces that are slow *and unreliable*: OOB
commands "may sometimes fail without signaling completion or errors", and
row telemetry is a sampled, delayed view of a fast-moving signal. A
:class:`FaultPlan` describes every fault the simulator can inject —
telemetry dropout/freeze windows, Gaussian and spike noise, silent or
delayed actuations, and server fail/recover churn — as a deterministic,
seeded schedule, so a robustness experiment is exactly reproducible.

An all-zeros plan (``FaultPlan.none()``) injects nothing and leaves the
simulator bit-identical to the fault-free POLCA reproduction; the
:meth:`FaultPlan.adversarial` preset is the documented worst-case scenario
used by ``benchmarks/test_ext_fault_tolerance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError

Window = Tuple[float, float]


def _validate_windows(name: str, windows: Tuple[Window, ...]) -> None:
    for window in windows:
        if len(window) != 2 or window[1] <= window[0] or window[0] < 0:
            raise ConfigurationError(
                f"{name}: window {window} must be (start, end) with "
                f"0 <= start < end"
            )


@dataclass(frozen=True)
class TelemetryFaultSpec:
    """Faults on the row power telemetry path.

    Attributes:
        noise_std: Gaussian measurement noise as a fraction of the reading
            (Section 6.6's power-model error, applied to the sensor).
        spike_prob: Per-delivered-sample probability of a spurious spike.
        spike_magnitude: Spike size as a fraction of the reading (signed
            direction is drawn from the plan seed).
        delay_s: Reporting delay between observation and availability.
        dropout_windows: Explicit ``(start, end)`` windows during which no
            sample reaches the controller.
        dropouts_per_hour: Rate of additional randomly placed dropout
            windows (Poisson process on the plan seed).
        dropout_duration_s: Mean duration of a random dropout window.
        freeze_windows: Explicit windows during which the sensor repeats
            its last good reading instead of a fresh one.
        freezes_per_hour: Rate of additional random freeze windows.
        freeze_duration_s: Mean duration of a random freeze window.
    """

    noise_std: float = 0.0
    spike_prob: float = 0.0
    spike_magnitude: float = 0.5
    delay_s: float = 0.0
    dropout_windows: Tuple[Window, ...] = ()
    dropouts_per_hour: float = 0.0
    dropout_duration_s: float = 30.0
    freeze_windows: Tuple[Window, ...] = ()
    freezes_per_hour: float = 0.0
    freeze_duration_s: float = 20.0

    def __post_init__(self) -> None:
        for name in (
            "noise_std", "spike_prob", "spike_magnitude", "delay_s",
            "dropouts_per_hour", "dropout_duration_s",
            "freezes_per_hour", "freeze_duration_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"telemetry.{name} cannot be negative")
        if self.spike_prob > 1.0:
            raise ConfigurationError("telemetry.spike_prob must be in [0, 1]")
        _validate_windows("telemetry.dropout_windows", self.dropout_windows)
        _validate_windows("telemetry.freeze_windows", self.freeze_windows)

    @property
    def is_trivial(self) -> bool:
        """True when this spec injects nothing."""
        return (
            self.noise_std == 0.0
            and self.spike_prob == 0.0
            and self.delay_s == 0.0
            and not self.dropout_windows
            and self.dropouts_per_hour == 0.0
            and not self.freeze_windows
            and self.freezes_per_hour == 0.0
        )


@dataclass(frozen=True)
class ActuationFaultSpec:
    """Faults on the OOB command path (Section 3.3's unreliability).

    Attributes:
        silent_failure_rate: Probability any single command vanishes
            without signaling completion or error.
        delay_prob: Probability a command is delayed beyond its spec
            latency (it still lands, late).
        extra_delay_s: Mean beyond-spec delay for delayed commands
            (exponential, on the plan seed).
    """

    silent_failure_rate: float = 0.0
    delay_prob: float = 0.0
    extra_delay_s: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.silent_failure_rate < 1.0:
            raise ConfigurationError(
                "actuation.silent_failure_rate must be in [0, 1)"
            )
        if not 0.0 <= self.delay_prob <= 1.0:
            raise ConfigurationError("actuation.delay_prob must be in [0, 1]")
        if self.extra_delay_s < 0:
            raise ConfigurationError(
                "actuation.extra_delay_s cannot be negative"
            )

    @property
    def is_trivial(self) -> bool:
        """True when this spec injects nothing."""
        return self.silent_failure_rate == 0.0 and self.delay_prob == 0.0


@dataclass(frozen=True)
class ServerChurnEvent:
    """One scheduled server failure (and optional recovery).

    Attributes:
        server_index: Index of the server within the row.
        fail_at_s: Simulation time the server crashes; its in-flight and
            buffered requests are dropped and its power contribution
            disappears.
        recover_at_s: Time the server rejoins idle, or ``None`` for a
            permanent loss.
    """

    server_index: int
    fail_at_s: float
    recover_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.server_index < 0:
            raise ConfigurationError("churn.server_index cannot be negative")
        if self.fail_at_s < 0:
            raise ConfigurationError("churn.fail_at_s cannot be negative")
        if self.recover_at_s is not None and self.recover_at_s <= self.fail_at_s:
            raise ConfigurationError(
                "churn.recover_at_s must be after fail_at_s"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Server fail/recover churn.

    Attributes:
        events: Explicit scheduled failures.
        failures_per_hour: Rate of additional random failures (Poisson on
            the plan seed, uniformly spread over the servers).
        mean_downtime_s: Mean downtime of a random failure (exponential).
    """

    events: Tuple[ServerChurnEvent, ...] = ()
    failures_per_hour: float = 0.0
    mean_downtime_s: float = 300.0

    def __post_init__(self) -> None:
        if self.failures_per_hour < 0:
            raise ConfigurationError(
                "churn.failures_per_hour cannot be negative"
            )
        if self.mean_downtime_s <= 0:
            raise ConfigurationError("churn.mean_downtime_s must be positive")

    @property
    def is_trivial(self) -> bool:
        """True when this spec injects nothing."""
        return not self.events and self.failures_per_hour == 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Everything the simulator may inject during one run.

    Attributes:
        telemetry: Sensor-path faults.
        actuation: Command-path faults.
        churn: Server fail/recover events.
        seed: Seed for every stochastic schedule in the plan; the same
            plan + seed always injects the identical fault sequence.
    """

    telemetry: TelemetryFaultSpec = field(default_factory=TelemetryFaultSpec)
    actuation: ActuationFaultSpec = field(default_factory=ActuationFaultSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    seed: int = 0

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.telemetry.is_trivial
            and self.actuation.is_trivial
            and self.churn.is_trivial
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The all-zeros plan: the simulator behaves exactly fault-free."""
        return cls()

    @classmethod
    def adversarial(cls, seed: int = 0) -> "FaultPlan":
        """The documented worst-case plan of the fault-tolerance study.

        Combines 30 s telemetry dropout windows with measurement noise, a
        10% silent actuation failure rate, occasionally late commands, and
        one server crash mid-run (see EXPERIMENTS.md, "Fault tolerance").
        """
        return cls(
            telemetry=TelemetryFaultSpec(
                noise_std=0.02,
                spike_prob=0.002,
                spike_magnitude=0.3,
                dropouts_per_hour=2.0,
                dropout_duration_s=30.0,
                freezes_per_hour=1.0,
                freeze_duration_s=20.0,
            ),
            actuation=ActuationFaultSpec(
                silent_failure_rate=0.10,
                delay_prob=0.05,
                extra_delay_s=20.0,
            ),
            churn=ChurnSpec(
                events=(
                    ServerChurnEvent(
                        server_index=0,
                        fail_at_s=3600.0,
                        recover_at_s=3600.0 + 1800.0,
                    ),
                ),
            ),
            seed=seed,
        )
